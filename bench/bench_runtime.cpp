// E8: execution-time measurements (paper SSVII: "execution times ...
// are negligible; most examples take less than 1 s"). Times the full
// synthesis pipeline per benchmark design, plus a random-graph scaling
// sweep of the core analyses (the algorithms are polynomial:
// O((|Eb|+1) * |A| * |E|) for scheduling).
#include <benchmark/benchmark.h>

#include <random>

#include "anchors/anchor_analysis.hpp"
#include "designs/designs.hpp"
#include "driver/synthesis.hpp"
#include "sched/scheduler.hpp"
#include "wellposed/wellposed.hpp"

using namespace relsched;

namespace {

void BM_SynthesizeDesign(benchmark::State& state, const char* name) {
  for (auto _ : state) {
    state.PauseTiming();
    seq::Design design = designs::build(name);
    state.ResumeTiming();
    auto result = driver::synthesize(design);
    benchmark::DoNotOptimize(result);
    if (!result.ok()) state.SkipWithError("synthesis failed");
  }
}

BENCHMARK_CAPTURE(BM_SynthesizeDesign, traffic, "traffic");
BENCHMARK_CAPTURE(BM_SynthesizeDesign, length, "length");
BENCHMARK_CAPTURE(BM_SynthesizeDesign, gcd, "gcd");
BENCHMARK_CAPTURE(BM_SynthesizeDesign, frisc, "frisc");
BENCHMARK_CAPTURE(BM_SynthesizeDesign, daio_phase, "daio_phase");
BENCHMARK_CAPTURE(BM_SynthesizeDesign, daio_rx, "daio_rx");
BENCHMARK_CAPTURE(BM_SynthesizeDesign, dct_a, "dct_a");
BENCHMARK_CAPTURE(BM_SynthesizeDesign, dct_b, "dct_b");

/// Layered random constraint graph: `n` vertices, ~20% unbounded,
/// a handful of slack max constraints.
cg::ConstraintGraph scaling_graph(int n, unsigned seed) {
  std::mt19937 rng(seed);
  cg::ConstraintGraph g("scaling");
  std::uniform_int_distribution<int> delay(0, 4);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::vector<VertexId> vs;
  vs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    cg::Delay d = cg::Delay::bounded(delay(rng));
    if (i > 0 && i + 1 < n && unit(rng) < 0.2) d = cg::Delay::unbounded();
    vs.push_back(g.add_vertex("v" + std::to_string(i), d));
  }
  for (int i = 1; i < n; ++i) {
    std::uniform_int_distribution<int> pred(std::max(0, i - 8), i - 1);
    g.add_sequencing_edge(vs[static_cast<std::size_t>(pred(rng))],
                          vs[static_cast<std::size_t>(i)]);
  }
  for (int i = 0; i + 1 < n; ++i) {
    bool has_out = false;
    for (EdgeId e : g.out_edges(vs[static_cast<std::size_t>(i)])) {
      if (cg::is_forward(g.edge(e).kind)) has_out = true;
    }
    if (!has_out) {
      g.add_sequencing_edge(vs[static_cast<std::size_t>(i)],
                            vs[static_cast<std::size_t>(n - 1)]);
    }
  }
  return g;
}

void BM_AnchorAnalysisScaling(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto g = scaling_graph(n, 42);
  for (auto _ : state) {
    auto analysis = anchors::AnchorAnalysis::compute(g);
    benchmark::DoNotOptimize(analysis);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_AnchorAnalysisScaling)->Range(64, 4096)->Complexity();

void BM_ScheduleScaling(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto g = scaling_graph(n, 42);
  const auto analysis = anchors::AnchorAnalysis::compute(g);
  sched::ScheduleOptions opts;
  opts.prechecks = false;  // isolate the scheduling loop itself
  for (auto _ : state) {
    auto result = sched::schedule(g, analysis, opts);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_ScheduleScaling)->Range(64, 4096)->Complexity();

void BM_MakeWellposed(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto g = scaling_graph(n, 7);
    state.ResumeTiming();
    auto result = wellposed::make_wellposed(g);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_MakeWellposed)->Range(64, 1024);

}  // namespace

BENCHMARK_MAIN();

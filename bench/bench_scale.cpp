// E14: scaling the core structures -- the data-oriented engine at
// 10^3 / 10^4 / 10^5-vertex synthetic designs.
//
// The paper's suite tops out at a few hundred operations; this harness
// drives the generated mega-designs (designs::generate) through the
// certified incremental engine and reports, per size:
//
//   cold  - a fresh certified SynthesisSession::resolve();
//   warm  - a >= 100-edit sequence (alternately loosening and
//           restoring max-constraint bounds spread across the design),
//           every resolve certified and required to take the warm path;
//   phase - the warm-path breakdown (topo patch / SPFA repair / anchor
//           patch / reschedule), averaged per warm resolve.
//
// Gates:
//   hard     - warm products after the edit sequence are bit-identical
//              to a cold recompute of the edited graph (anchor sets,
//              irredundant sets, path rows, offsets), no certificate
//              failures, every edit served warm;
//   advisory - the anchor patch is not the dominant warm-phase cost at
//              the largest size (printed, reported in the JSON, but
//              never the exit code: timings are machine-dependent).
//
// Emits BENCH_scale.json (committed CI artifact).
//
// Flags:
//   --vertices N   run one size instead of the 10^3/10^4/10^5 ladder
//   --edits N      warm-sequence length (default 120)
//   --seed N       generator seed (default 90)
//   --check-only   sanitizer-CI mode: one size (default 10^4), a short
//                  edit sequence, the bit-identity gate, plus an
//                  explorer batch over the same design; no timing
//                  repeats, no JSON
//   --out FILE     JSON path (default BENCH_scale.json)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "base/table.hpp"
#include "bench_json.hpp"
#include "designs/generator.hpp"
#include "engine/session.hpp"
#include "explore/explorer.hpp"

using namespace relsched;

namespace {

using Clock = std::chrono::steady_clock;

double median_us(std::vector<double>& samples) {
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  return n == 0 ? 0.0
               : (n % 2 == 1 ? samples[n / 2]
                             : 0.5 * (samples[n / 2 - 1] + samples[n / 2]));
}

template <typename Fn>
double timed_us(Fn&& fn) {
  const auto t0 = Clock::now();
  fn();
  const auto t1 = Clock::now();
  return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

/// Bit-identical comparison of warm products against a cold recompute.
/// Returns false (after printing the first divergence) on any mismatch.
bool products_match(const engine::Products& warm, const engine::Products& cold,
                    const cg::ConstraintGraph& g) {
  if (warm.schedule.status != cold.schedule.status) {
    std::cerr << "bit-identity: status diverged\n";
    return false;
  }
  if (!(warm.analysis.anchors() == cold.analysis.anchors())) {
    std::cerr << "bit-identity: anchor lists diverged\n";
    return false;
  }
  for (int vi = 0; vi < g.vertex_count(); ++vi) {
    const VertexId v(vi);
    if (!(warm.analysis.anchor_set(v) == cold.analysis.anchor_set(v))) {
      std::cerr << "bit-identity: A(v" << vi << ") diverged\n";
      return false;
    }
    if (!(warm.analysis.irredundant_set(v) ==
          cold.analysis.irredundant_set(v))) {
      std::cerr << "bit-identity: IR(v" << vi << ") diverged\n";
      return false;
    }
    for (VertexId anchor : warm.analysis.anchors()) {
      if (warm.analysis.length(anchor, v) != cold.analysis.length(anchor, v)) {
        std::cerr << "bit-identity: length(v" << anchor.value() << ", v" << vi
                  << ") diverged\n";
        return false;
      }
    }
    if (!(warm.schedule.schedule.offsets(v) ==
          cold.schedule.schedule.offsets(v))) {
      std::cerr << "bit-identity: offsets(v" << vi << ") diverged\n";
      return false;
    }
  }
  return true;
}

/// Max-constraint edges spread evenly through the design: the edit
/// sequence toggles their bounds round-robin so consecutive warm
/// resolves exercise different dirty cones.
std::vector<EdgeId> edit_targets(const cg::ConstraintGraph& g, int want) {
  std::vector<EdgeId> all;
  for (const cg::Edge& e : g.edges()) {
    if (e.kind == cg::EdgeKind::kMaxConstraint) all.push_back(e.id);
  }
  if (static_cast<int>(all.size()) <= want) return all;
  std::vector<EdgeId> picked;
  const std::size_t stride = all.size() / static_cast<std::size_t>(want);
  for (int i = 0; i < want; ++i) picked.push_back(all[i * stride]);
  return picked;
}

designs::GeneratorParams params_for(int vertices, std::uint64_t seed) {
  designs::GeneratorParams p;
  p.seed = seed;
  p.vertices = vertices;
  // Hold the anchor count near ~32 across the ladder (real designs
  // carry a handful of data-dependent loops regardless of size); the
  // per-anchor structures then scale in |V|, which is the axis under
  // test, instead of |A|*|V|.
  p.anchor_density = std::max(1, 320000 / std::max(vertices, 1));
  p.name = "scale";
  return p;
}

struct Row {
  int vertices = 0;
  int edges = 0;
  int anchors = 0;
  int edits = 0;
  double cold_us = 0;
  double warm_us = 0;
  int dirty_cone = 0;
  double topo_us = 0;
  double spfa_us = 0;
  double anchor_us = 0;
  double resched_us = 0;
  bool anchor_dominant = false;

  [[nodiscard]] double speedup() const {
    return warm_us > 0 ? cold_us / warm_us : 0.0;
  }
};

std::string fmt(double v, int precision = 1) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

/// One size of the ladder: cold timing, the warm edit sequence, the
/// bit-identity gate. Returns false on a hard-gate failure.
bool run_size(int vertices, int edits, std::uint64_t seed, bool timing,
              Row* out) {
  cg::ConstraintGraph graph = designs::generate(params_for(vertices, seed));
  Row row;
  row.vertices = graph.vertex_count();
  row.edges = graph.edge_count();
  row.anchors = static_cast<int>(graph.anchors().size());
  row.edits = edits;

  const std::vector<EdgeId> targets = edit_targets(graph, 16);
  if (targets.empty()) {
    std::cerr << vertices << ": generated design has no max constraints\n";
    return false;
  }
  std::vector<int> bounds;
  for (EdgeId e : targets) {
    bounds.push_back(std::abs(graph.edge(e).fixed_weight));
  }

  engine::SessionOptions opts;
  opts.certify = true;

  // Cold baseline: fresh certified sessions over the pristine graph.
  const int cold_repeats = !timing ? 1 : (vertices >= 100000 ? 3 : 7);
  std::vector<double> cold_samples;
  for (int i = 0; i < cold_repeats; ++i) {
    engine::SynthesisSession fresh(graph, opts);
    cold_samples.push_back(timed_us([&] { fresh.resolve(); }));
    if (!fresh.products().ok()) {
      std::cerr << vertices << ": cold resolve failed: "
                << fresh.products().schedule.message << "\n";
      return false;
    }
  }
  row.cold_us = median_us(cold_samples);

  // Warm sequence: round-robin over the targets, alternately loosening
  // and restoring each bound. Constraint-only edits, so every resolve
  // must take the warm path.
  engine::SynthesisSession session(std::move(graph), opts);
  if (!session.resolve().ok()) {
    std::cerr << vertices << ": initial resolve failed\n";
    return false;
  }
  std::vector<double> warm_samples;
  for (int i = 0; i < edits; ++i) {
    const std::size_t t = static_cast<std::size_t>(i) % targets.size();
    const bool loosen = (i / targets.size()) % 2 == 0;
    session.set_constraint_bound(targets[t],
                                 loosen ? bounds[t] + 1 : bounds[t]);
    warm_samples.push_back(timed_us([&] { session.resolve(); }));
    if (!session.products().ok()) {
      std::cerr << vertices << ": warm resolve " << i << " failed: "
                << session.products().schedule.message << "\n";
      return false;
    }
  }
  row.warm_us = median_us(warm_samples);

  const engine::SessionStats stats = session.stats();
  if (stats.warm_resolves < edits) {
    std::cerr << vertices << ": only " << stats.warm_resolves << "/" << edits
              << " resolves took the warm path\n";
    return false;
  }
  if (stats.certificate_failures != 0) {
    std::cerr << vertices << ": certifier tripped on a clean run\n";
    return false;
  }
  row.dirty_cone = stats.last_affected_vertices;
  const double resolves = std::max(1, stats.warm_resolves);
  row.topo_us = stats.warm_topo_us / resolves;
  row.spfa_us = stats.warm_spfa_us / resolves;
  row.anchor_us = stats.warm_anchor_us / resolves;
  row.resched_us = stats.warm_resched_us / resolves;
  row.anchor_dominant =
      row.anchor_us > row.topo_us && row.anchor_us > row.spfa_us &&
      row.anchor_us > row.resched_us;

  // Hard gate: the warm-path end state is bit-identical to a cold
  // recompute of the edited graph.
  engine::SynthesisSession reference(session.graph(), opts);
  reference.resolve();
  if (!reference.products().ok()) {
    std::cerr << vertices << ": reference cold resolve failed\n";
    return false;
  }
  if (!products_match(session.products(), reference.products(),
                      session.graph())) {
    std::cerr << vertices << ": warm products diverged from cold recompute\n";
    return false;
  }

  *out = row;
  return true;
}

/// Sanitizer-CI extra: a small explorer batch over the generated
/// design (fork-per-candidate, transactional edits, parallel resolve),
/// run twice to confirm the winner and scores are thread-invariant.
bool run_explorer_check(int vertices, std::uint64_t seed) {
  cg::ConstraintGraph graph = designs::generate(params_for(vertices, seed));
  const std::vector<EdgeId> targets = edit_targets(graph, 8);
  if (targets.empty()) return false;

  std::vector<explore::Candidate> candidates;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    explore::Candidate c;
    c.label = cat("loosen_", i);
    const int bound = std::abs(graph.edge(targets[i]).fixed_weight);
    c.edits.push_back(explore::EditOp::set_bound(
        targets[i], bound + 1 + static_cast<int>(i % 3)));
    candidates.push_back(std::move(c));
  }

  engine::SessionOptions sopts;
  sopts.certify = true;
  explore::ExplorerOptions xopts;
  explore::Explorer explorer(engine::SynthesisSession(graph, sopts), xopts);
  const explore::ExplorationResult first =
      explorer.explore(candidates, explore::min_latency());
  const explore::ExplorationResult second =
      explorer.explore(candidates, explore::min_latency());
  if (first.winner < 0) {
    std::cerr << "explorer: every candidate infeasible\n";
    return false;
  }
  if (first.winner != second.winner) {
    std::cerr << "explorer: winner not deterministic\n";
    return false;
  }
  for (std::size_t i = 0; i < first.candidates.size(); ++i) {
    if (first.candidates[i].feasible != second.candidates[i].feasible ||
        first.candidates[i].score != second.candidates[i].score) {
      std::cerr << "explorer: candidate " << i << " not deterministic\n";
      return false;
    }
  }
  std::cout << "explorer check: " << candidates.size()
            << " candidates, winner " << first.best().label << " (score "
            << first.best().score << "), deterministic\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int single_vertices = 0;
  int edits = 120;
  std::uint64_t seed = 90;
  bool check_only = false;
  std::string out_path = "BENCH_scale.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--check-only") {
      check_only = true;
    } else if (arg == "--vertices" && value != nullptr) {
      single_vertices = std::atoi(value);
      ++i;
    } else if (arg == "--edits" && value != nullptr) {
      edits = std::atoi(value);
      ++i;
    } else if (arg == "--seed" && value != nullptr) {
      seed = std::strtoull(value, nullptr, 10);
      ++i;
    } else if (arg == "--out" && value != nullptr) {
      out_path = value;
      ++i;
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return EXIT_FAILURE;
    }
  }

  if (check_only) {
    // Sanitizer mode: correctness gates only, sized so ASan/TSan
    // finish in minutes. One generated design through the certified
    // session (bit-identity included) plus the explorer batch.
    const int vertices = single_vertices > 0 ? single_vertices : 10000;
    const int check_edits = std::min(edits, 24);
    Row row;
    if (!run_size(vertices, check_edits, seed, /*timing=*/false, &row)) {
      return EXIT_FAILURE;
    }
    std::cout << "session check: " << row.vertices << " vertices, "
              << row.anchors << " anchors, " << check_edits
              << " certified warm edits, bit-identical to cold\n";
    if (!run_explorer_check(vertices, seed)) return EXIT_FAILURE;
    std::cout << "check-only: PASS\n";
    return EXIT_SUCCESS;
  }

  std::vector<int> sizes;
  if (single_vertices > 0) {
    sizes.push_back(single_vertices);
  } else {
    sizes = {1000, 10000, 100000};
  }

  std::vector<Row> rows;
  for (int size : sizes) {
    Row row;
    if (!run_size(size, edits, seed, /*timing=*/true, &row)) {
      return EXIT_FAILURE;
    }
    rows.push_back(row);
  }

  std::cout << "E14: certified cold vs warm resolve on generated designs\n\n";
  TextTable table;
  table.set_header({"|V|", "|E|", "|A|", "cold (us)", "warm (us)", "speedup",
                    "dirty cone"});
  for (const Row& row : rows) {
    table.add_row({cat(row.vertices), cat(row.edges), cat(row.anchors),
                   fmt(row.cold_us), fmt(row.warm_us),
                   cat(fmt(row.speedup()), "x"),
                   cat(row.dirty_cone, "/", row.vertices)});
  }
  table.print(std::cout);

  std::cout << "\nwarm-path phase breakdown (us per warm resolve)\n\n";
  TextTable phases;
  phases.set_header(
      {"|V|", "topo patch", "SPFA repair", "anchor patch", "reschedule"});
  for (const Row& row : rows) {
    phases.add_row({cat(row.vertices), fmt(row.topo_us, 2),
                    fmt(row.spfa_us, 2), fmt(row.anchor_us, 2),
                    fmt(row.resched_us, 2)});
  }
  phases.print(std::cout);

  const Row& largest = rows.back();
  benchio::Json sizes_json = benchio::Json::array();
  for (const Row& row : rows) {
    sizes_json.element(benchio::Json::object()
                           .field("vertices", row.vertices)
                           .field("edges", row.edges)
                           .field("anchors", row.anchors)
                           .field("edits", row.edits)
                           .field("cold_us", row.cold_us)
                           .field("warm_us", row.warm_us)
                           .field("speedup", row.speedup())
                           .field("dirty_cone_vertices", row.dirty_cone)
                           .field("warm_topo_us", row.topo_us)
                           .field("warm_spfa_us", row.spfa_us)
                           .field("warm_anchor_us", row.anchor_us)
                           .field("warm_resched_us", row.resched_us)
                           .field("anchor_patch_dominant",
                                  row.anchor_dominant));
  }
  benchio::Json::object()
      .field("bench", "scale")
      .field("seed", static_cast<long long>(seed))
      .field("bit_identity", true)
      .field("largest_vertices", largest.vertices)
      .field("largest_speedup", largest.speedup())
      .field("largest_anchor_patch_dominant", largest.anchor_dominant)
      .field("sizes", sizes_json)
      .write(out_path);
  std::cout << "\nwrote " << out_path << "\n";

  // Hard gates (bit-identity, certification, warm-path coverage) all
  // passed inside run_size. Timing shape is advisory: flag it, but
  // do not fail a CI runner over scheduler noise.
  std::cout << "\nbit-identity (warm vs cold, all sizes): HOLDS\n";
  std::cout << "anchor patch dominant at " << largest.vertices
            << " vertices: " << (largest.anchor_dominant ? "YES" : "no")
            << " (advisory; bitset rows should keep this off the top)\n";
  return EXIT_SUCCESS;
}

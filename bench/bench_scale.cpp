// E14: scaling the core structures -- the data-oriented engine at
// 10^3 / 10^4 / 10^5 / 10^6-vertex synthetic designs.
//
// The paper's suite tops out at a few hundred operations; this harness
// drives the generated mega-designs (designs::generate) through the
// certified incremental engine and reports, per size:
//
//   cold     - a fresh certified SynthesisSession::resolve();
//   warm     - a >= 100-edit sequence (alternately loosening and
//              restoring max-constraint bounds spread across the
//              design), every resolve certified and required to take
//              the warm path;
//   phase    - the warm-path breakdown (topo patch / SPFA repair /
//              anchor patch / reschedule), averaged per warm resolve;
//   parallel - the anchor-analysis phase timed sequentially vs sharded
//              across a work-stealing pool (cold per-anchor rows, and
//              the whole warm edit sequence re-run on a pooled
//              session).
//
// Gates:
//   hard     - warm products after the edit sequence are bit-identical
//              to a cold recompute of the edited graph (anchor sets,
//              irredundant sets, path rows, offsets), no certificate
//              failures, every edit served warm; AND every parallel
//              run (cold anchor analysis, pooled warm sequence) is
//              bit-identical to its sequential twin -- determinism is
//              a correctness property, enforced at every tier and
//              thread count;
//   timing   - the parallel anchor phase is >= 2x faster than
//              sequential at 4 threads on the 10^5 tier. Enforced only
//              where it is meaningful: >= 4 hardware threads, not
//              --check-only, not --advisory-speedup (else reported as
//              SKIPPED / FAILS (advisory) and the exit stays 0);
//   advisory - the anchor patch is not the dominant warm-phase cost at
//              the largest size (printed, reported in the JSON, never
//              the exit code).
//
// The 10^6 tier additionally round-trips the design through the
// streamed binary graph format (cg::write_binary_file /
// read_binary_file) and requires the loaded graph to be identical --
// the scale path `relsched_cli gen --binary` feeds the driver.
//
// Emits BENCH_scale.json (committed CI artifact).
//
// Flags:
//   --vertices N         run one size instead of the built-in ladder
//   --edits N            warm-sequence length (default 120; the 10^6
//                        tier clamps it to 40)
//   --seed N             generator seed (default 90)
//   --threads N          pool width for the parallel runs (default 4)
//   --advisory-speedup   report the anchor-phase speedup gate but
//                        never fail on it (noisy shared CI runners)
//   --check-only         sanitizer-CI mode: one size (default 10^4), a
//                        short edit sequence, every bit-identity gate
//                        (parallel runs included) plus the binary
//                        round-trip and an explorer batch; no timing
//                        repeats, no JSON
//   --out FILE           JSON path (default BENCH_scale.json)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/table.hpp"
#include "base/thread_pool.hpp"
#include "bench_json.hpp"
#include "cg/graph_io.hpp"
#include "designs/generator.hpp"
#include "engine/session.hpp"
#include "explore/explorer.hpp"

using namespace relsched;

namespace {

using Clock = std::chrono::steady_clock;

constexpr double kRequiredAnchorSpeedup = 2.0;

double median_us(std::vector<double>& samples) {
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  return n == 0 ? 0.0
               : (n % 2 == 1 ? samples[n / 2]
                             : 0.5 * (samples[n / 2 - 1] + samples[n / 2]));
}

template <typename Fn>
double timed_us(Fn&& fn) {
  const auto t0 = Clock::now();
  fn();
  const auto t1 = Clock::now();
  return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

/// Bit-identical comparison of warm products against a cold recompute.
/// Returns false (after printing the first divergence) on any mismatch.
bool products_match(const engine::Products& warm, const engine::Products& cold,
                    const cg::ConstraintGraph& g, const char* what) {
  if (warm.schedule.status != cold.schedule.status) {
    std::cerr << what << ": status diverged\n";
    return false;
  }
  if (!(warm.analysis.anchors() == cold.analysis.anchors())) {
    std::cerr << what << ": anchor lists diverged\n";
    return false;
  }
  for (int vi = 0; vi < g.vertex_count(); ++vi) {
    const VertexId v(vi);
    if (!(warm.analysis.anchor_set(v) == cold.analysis.anchor_set(v))) {
      std::cerr << what << ": A(v" << vi << ") diverged\n";
      return false;
    }
    if (!(warm.analysis.irredundant_set(v) ==
          cold.analysis.irredundant_set(v))) {
      std::cerr << what << ": IR(v" << vi << ") diverged\n";
      return false;
    }
    for (VertexId anchor : warm.analysis.anchors()) {
      if (warm.analysis.length(anchor, v) != cold.analysis.length(anchor, v)) {
        std::cerr << what << ": length(v" << anchor.value() << ", v" << vi
                  << ") diverged\n";
        return false;
      }
    }
    if (!(warm.schedule.schedule.offsets(v) ==
          cold.schedule.schedule.offsets(v))) {
      std::cerr << what << ": offsets(v" << vi << ") diverged\n";
      return false;
    }
  }
  return true;
}

/// Bit-identical comparison of two standalone anchor analyses (the
/// sequential and pool-sharded cold computes).
bool analyses_match(const anchors::AnchorAnalysis& a,
                    const anchors::AnchorAnalysis& b,
                    const cg::ConstraintGraph& g) {
  if (!(a.anchors() == b.anchors())) {
    std::cerr << "anchor analysis: anchor lists diverged\n";
    return false;
  }
  for (int vi = 0; vi < g.vertex_count(); ++vi) {
    const VertexId v(vi);
    if (!(a.anchor_set(v) == b.anchor_set(v)) ||
        !(a.irredundant_set(v) == b.irredundant_set(v))) {
      std::cerr << "anchor analysis: sets for v" << vi << " diverged\n";
      return false;
    }
    for (VertexId anchor : a.anchors()) {
      if (a.length(anchor, v) != b.length(anchor, v)) {
        std::cerr << "anchor analysis: length(v" << anchor.value() << ", v"
                  << vi << ") diverged\n";
        return false;
      }
    }
  }
  return true;
}

/// Structural equality of two graphs (vertex names/delays, edge
/// kinds/endpoints/bounds) without materializing either as text --
/// the binary round-trip check at 10^6 vertices must not allocate the
/// strings the binary format exists to avoid.
bool graphs_equal(const cg::ConstraintGraph& a, const cg::ConstraintGraph& b) {
  if (a.name() != b.name() || a.vertex_count() != b.vertex_count() ||
      a.edge_count() != b.edge_count()) {
    std::cerr << "binary round-trip: shape diverged\n";
    return false;
  }
  for (int vi = 0; vi < a.vertex_count(); ++vi) {
    const cg::Vertex& va = a.vertex(VertexId(vi));
    const cg::Vertex& vb = b.vertex(VertexId(vi));
    if (va.name != vb.name ||
        va.delay.is_unbounded() != vb.delay.is_unbounded() ||
        (!va.delay.is_unbounded() && va.delay.cycles() != vb.delay.cycles())) {
      std::cerr << "binary round-trip: vertex " << vi << " diverged\n";
      return false;
    }
  }
  for (int ei = 0; ei < a.edge_count(); ++ei) {
    const cg::Edge& ea = a.edge(EdgeId(ei));
    const cg::Edge& eb = b.edge(EdgeId(ei));
    if (ea.kind != eb.kind || ea.from != eb.from || ea.to != eb.to ||
        ea.fixed_weight != eb.fixed_weight) {
      std::cerr << "binary round-trip: edge " << ei << " diverged\n";
      return false;
    }
  }
  return true;
}

/// Max-constraint edges spread evenly through the design: the edit
/// sequence toggles their bounds round-robin so consecutive warm
/// resolves exercise different dirty cones.
std::vector<EdgeId> edit_targets(const cg::ConstraintGraph& g, int want) {
  std::vector<EdgeId> all;
  for (const cg::Edge& e : g.edges()) {
    if (e.kind == cg::EdgeKind::kMaxConstraint) all.push_back(e.id);
  }
  if (static_cast<int>(all.size()) <= want) return all;
  std::vector<EdgeId> picked;
  const std::size_t stride = all.size() / static_cast<std::size_t>(want);
  for (int i = 0; i < want; ++i) picked.push_back(all[i * stride]);
  return picked;
}

designs::GeneratorParams params_for(int vertices, std::uint64_t seed) {
  designs::GeneratorParams p;
  p.seed = seed;
  p.vertices = vertices;
  // Hold the anchor count near ~32 across the ladder (real designs
  // carry a handful of data-dependent loops regardless of size); the
  // per-anchor structures then scale in |V|, which is the axis under
  // test, instead of |A|*|V|.
  p.anchor_density = std::max(1, 320000 / std::max(vertices, 1));
  // The density floor of 1/10000 over-delivers at 10^6 vertices
  // (~100 anchors); the cap keeps the row footprint (two 8-byte Weight
  // rows per anchor per vertex) near half a gigabyte per analysis.
  if (vertices >= 1000000) p.max_anchors = 32;
  p.name = "scale";
  return p;
}

struct Row {
  int vertices = 0;
  int edges = 0;
  int anchors = 0;
  int edits = 0;
  double cold_us = 0;
  double warm_us = 0;
  int dirty_cone = 0;
  double topo_us = 0;
  double spfa_us = 0;
  double anchor_us = 0;
  double resched_us = 0;
  bool anchor_dominant = false;
  // Parallel twins (pool of `threads` workers) of the cold
  // anchor-analysis phase and the warm edit sequence.
  double anchor_seq_us = 0;
  double anchor_par_us = 0;
  double warm_par_us = 0;
  // Streamed binary format round-trip (10^6 tier and --check-only).
  bool binary_checked = false;
  double binary_write_us = 0;
  double binary_read_us = 0;

  [[nodiscard]] double speedup() const {
    return warm_us > 0 ? cold_us / warm_us : 0.0;
  }
  [[nodiscard]] double anchor_speedup() const {
    return anchor_par_us > 0 ? anchor_seq_us / anchor_par_us : 0.0;
  }
  [[nodiscard]] double warm_parallel_speedup() const {
    return warm_par_us > 0 ? warm_us / warm_par_us : 0.0;
  }
};

std::string fmt(double v, int precision = 1) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

/// Runs the warm edit sequence on `session` (already resolved once);
/// returns false on any hard-gate failure. Fills `median_out` with the
/// median per-resolve time and enforces the warm-path/certifier gates.
bool run_edit_sequence(engine::SynthesisSession& session,
                       const std::vector<EdgeId>& targets,
                       const std::vector<int>& bounds, int edits,
                       const char* what, double* median_out) {
  std::vector<double> samples;
  for (int i = 0; i < edits; ++i) {
    const std::size_t t = static_cast<std::size_t>(i) % targets.size();
    const bool loosen = (i / targets.size()) % 2 == 0;
    session.set_constraint_bound(targets[t],
                                 loosen ? bounds[t] + 1 : bounds[t]);
    samples.push_back(timed_us([&] { session.resolve(); }));
    if (!session.products().ok()) {
      std::cerr << what << ": warm resolve " << i << " failed: "
                << session.products().schedule.message << "\n";
      return false;
    }
  }
  const engine::SessionStats stats = session.stats();
  if (stats.warm_resolves < edits) {
    std::cerr << what << ": only " << stats.warm_resolves << "/" << edits
              << " resolves took the warm path\n";
    return false;
  }
  if (stats.certificate_failures != 0) {
    std::cerr << what << ": certifier tripped on a clean run\n";
    return false;
  }
  *median_out = median_us(samples);
  return true;
}

/// One size of the ladder: cold timing, the sequential and pooled warm
/// edit sequences, the anchor-phase parallel comparison, and every
/// bit-identity gate. Returns false on a hard-gate failure.
bool run_size(int vertices, int edits, std::uint64_t seed, bool timing,
              const std::shared_ptr<base::WorkStealingPool>& pool, Row* out) {
  cg::ConstraintGraph graph = designs::generate(params_for(vertices, seed));
  Row row;
  row.vertices = graph.vertex_count();
  row.edges = graph.edge_count();
  row.anchors = static_cast<int>(graph.anchors().size());
  row.edits = edits;

  const std::vector<EdgeId> targets = edit_targets(graph, 16);
  if (targets.empty()) {
    std::cerr << vertices << ": generated design has no max constraints\n";
    return false;
  }
  std::vector<int> bounds;
  for (EdgeId e : targets) {
    bounds.push_back(std::abs(graph.edge(e).fixed_weight));
  }

  // Cold anchor-analysis phase, sequential vs sharded across the pool.
  // Identity is a hard gate; the timings feed the speedup columns.
  {
    const int repeats = !timing ? 1 : (vertices >= 1000000 ? 1 : 3);
    std::vector<double> seq_samples, par_samples;
    anchors::AnchorAnalysis seq_analysis, par_analysis;
    for (int i = 0; i < repeats; ++i) {
      seq_samples.push_back(timed_us([&] {
        seq_analysis = anchors::AnchorAnalysis::compute(graph, nullptr);
      }));
      par_samples.push_back(timed_us([&] {
        par_analysis = anchors::AnchorAnalysis::compute(graph, pool.get());
      }));
    }
    if (!analyses_match(seq_analysis, par_analysis, graph)) {
      std::cerr << vertices
                << ": pooled anchor analysis diverged from sequential\n";
      return false;
    }
    row.anchor_seq_us = median_us(seq_samples);
    row.anchor_par_us = median_us(par_samples);
  }

  // Streamed binary round-trip: the scale path the 10^6 tier rides
  // (gen --binary -> driver). Checked on the largest tier always, and
  // in --check-only so the sanitizer legs cover the chunked I/O.
  if (vertices >= 1000000 || !timing) {
    namespace fs = std::filesystem;
    const std::string path =
        (fs::temp_directory_path() / cat("relsched_scale_", vertices, ".cgb"))
            .string();
    std::string io_error;
    row.binary_write_us =
        timed_us([&] { io_error = cg::write_binary_file(graph, path); });
    if (!io_error.empty()) {
      std::cerr << vertices << ": binary write failed: " << io_error << "\n";
      return false;
    }
    cg::ParseResult loaded;
    row.binary_read_us =
        timed_us([&] { loaded = cg::read_binary_file(path); });
    std::error_code ec;
    fs::remove(path, ec);
    if (!loaded.ok()) {
      std::cerr << vertices << ": binary read failed: " << loaded.error
                << "\n";
      return false;
    }
    if (!graphs_equal(graph, *loaded.graph)) {
      std::cerr << vertices << ": binary round-trip diverged\n";
      return false;
    }
    row.binary_checked = true;
  }

  engine::SessionOptions seq_opts;
  seq_opts.certify = true;
  seq_opts.threads = 1;  // resolve strictly sequentially

  // Cold baseline: fresh certified sequential sessions over the
  // pristine graph.
  const int cold_repeats =
      !timing ? 1 : (vertices >= 1000000 ? 1 : (vertices >= 100000 ? 3 : 7));
  std::vector<double> cold_samples;
  for (int i = 0; i < cold_repeats; ++i) {
    engine::SynthesisSession fresh(graph, seq_opts);
    cold_samples.push_back(timed_us([&] { fresh.resolve(); }));
    if (!fresh.products().ok()) {
      std::cerr << vertices << ": cold resolve failed: "
                << fresh.products().schedule.message << "\n";
      return false;
    }
  }
  row.cold_us = median_us(cold_samples);

  // Warm sequence, sequential: round-robin over the targets,
  // alternately loosening and restoring each bound. Constraint-only
  // edits, so every resolve must take the warm path.
  engine::SynthesisSession session(graph, seq_opts);
  if (!session.resolve().ok()) {
    std::cerr << vertices << ": initial resolve failed\n";
    return false;
  }
  if (!run_edit_sequence(session, targets, bounds, edits, "sequential",
                         &row.warm_us)) {
    return false;
  }

  const engine::SessionStats stats = session.stats();
  row.dirty_cone = stats.last_affected_vertices;
  const double resolves = std::max(1, stats.warm_resolves);
  row.topo_us = stats.warm_topo_us / resolves;
  row.spfa_us = stats.warm_spfa_us / resolves;
  row.anchor_us = stats.warm_anchor_us / resolves;
  row.resched_us = stats.warm_resched_us / resolves;
  row.anchor_dominant =
      row.anchor_us > row.topo_us && row.anchor_us > row.spfa_us &&
      row.anchor_us > row.resched_us;

  // Warm sequence, pooled: the same edits on a session whose anchor
  // patching shards across the pool. End products must be
  // bit-identical to the sequential session's -- the determinism gate.
  {
    engine::SessionOptions par_opts;
    par_opts.certify = true;
    par_opts.pool = pool;
    engine::SynthesisSession par_session(std::move(graph), par_opts);
    if (!par_session.resolve().ok()) {
      std::cerr << vertices << ": parallel initial resolve failed\n";
      return false;
    }
    if (!run_edit_sequence(par_session, targets, bounds, edits, "parallel",
                           &row.warm_par_us)) {
      return false;
    }
    if (!products_match(par_session.products(), session.products(),
                        par_session.graph(),
                        "parallel bit-identity (warm pooled vs warm seq)")) {
      std::cerr << vertices
                << ": pooled warm products diverged from sequential\n";
      return false;
    }
  }

  // Hard gate: the warm-path end state is bit-identical to a cold
  // recompute of the edited graph.
  engine::SynthesisSession reference(session.graph(), seq_opts);
  reference.resolve();
  if (!reference.products().ok()) {
    std::cerr << vertices << ": reference cold resolve failed\n";
    return false;
  }
  if (!products_match(session.products(), reference.products(),
                      session.graph(), "bit-identity (warm vs cold)")) {
    std::cerr << vertices << ": warm products diverged from cold recompute\n";
    return false;
  }

  *out = row;
  return true;
}

/// Sanitizer-CI extra: a small explorer batch over the generated
/// design (fork-per-candidate, transactional edits, parallel resolve),
/// run twice to confirm the winner and scores are thread-invariant.
bool run_explorer_check(int vertices, std::uint64_t seed) {
  cg::ConstraintGraph graph = designs::generate(params_for(vertices, seed));
  const std::vector<EdgeId> targets = edit_targets(graph, 8);
  if (targets.empty()) return false;

  std::vector<explore::Candidate> candidates;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    explore::Candidate c;
    c.label = cat("loosen_", i);
    const int bound = std::abs(graph.edge(targets[i]).fixed_weight);
    c.edits.push_back(explore::EditOp::set_bound(
        targets[i], bound + 1 + static_cast<int>(i % 3)));
    candidates.push_back(std::move(c));
  }

  engine::SessionOptions sopts;
  sopts.certify = true;
  explore::ExplorerOptions xopts;
  explore::Explorer explorer(engine::SynthesisSession(graph, sopts), xopts);
  const explore::ExplorationResult first =
      explorer.explore(candidates, explore::min_latency());
  const explore::ExplorationResult second =
      explorer.explore(candidates, explore::min_latency());
  if (first.winner < 0) {
    std::cerr << "explorer: every candidate infeasible\n";
    return false;
  }
  if (first.winner != second.winner) {
    std::cerr << "explorer: winner not deterministic\n";
    return false;
  }
  for (std::size_t i = 0; i < first.candidates.size(); ++i) {
    if (first.candidates[i].feasible != second.candidates[i].feasible ||
        first.candidates[i].score != second.candidates[i].score) {
      std::cerr << "explorer: candidate " << i << " not deterministic\n";
      return false;
    }
  }
  std::cout << "explorer check: " << candidates.size()
            << " candidates, winner " << first.best().label << " (score "
            << first.best().score << "), deterministic\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int single_vertices = 0;
  int edits = 120;
  int threads = 4;
  std::uint64_t seed = 90;
  bool check_only = false;
  bool advisory = false;
  std::string out_path = "BENCH_scale.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--check-only") {
      check_only = true;
    } else if (arg == "--advisory-speedup") {
      advisory = true;
    } else if (arg == "--vertices" && value != nullptr) {
      single_vertices = std::atoi(value);
      ++i;
    } else if (arg == "--edits" && value != nullptr) {
      edits = std::atoi(value);
      ++i;
    } else if (arg == "--threads" && value != nullptr) {
      threads = std::atoi(value);
      if (threads < 1 || threads > 512) {
        std::cerr << "--threads expects an integer in [1, 512]\n";
        return EXIT_FAILURE;
      }
      ++i;
    } else if (arg == "--seed" && value != nullptr) {
      seed = std::strtoull(value, nullptr, 10);
      ++i;
    } else if (arg == "--out" && value != nullptr) {
      out_path = value;
      ++i;
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return EXIT_FAILURE;
    }
  }

  // One dedicated pool for every parallel run in this process: exactly
  // `threads` workers regardless of the machine, so the reported
  // speedups are against a known width.
  const auto pool = std::make_shared<base::WorkStealingPool>(threads);
  const unsigned hardware = std::thread::hardware_concurrency();

  if (check_only) {
    // Sanitizer mode: correctness gates only, sized so ASan/TSan
    // finish in minutes. One generated design through the certified
    // session (sequential, pooled, and binary-round-trip bit-identity
    // included) plus the explorer batch.
    const int vertices = single_vertices > 0 ? single_vertices : 10000;
    const int check_edits = std::min(edits, 24);
    Row row;
    if (!run_size(vertices, check_edits, seed, /*timing=*/false, pool, &row)) {
      return EXIT_FAILURE;
    }
    std::cout << "session check: " << row.vertices << " vertices, "
              << row.anchors << " anchors, " << check_edits
              << " certified warm edits, bit-identical to cold and across "
              << threads << "-thread pool, binary round-trip OK\n";
    if (!run_explorer_check(vertices, seed)) return EXIT_FAILURE;
    std::cout << "check-only: PASS\n";
    return EXIT_SUCCESS;
  }

  std::vector<int> sizes;
  if (single_vertices > 0) {
    sizes.push_back(single_vertices);
  } else {
    sizes = {1000, 10000, 100000, 1000000};
  }

  std::vector<Row> rows;
  for (int size : sizes) {
    // The 10^6 tier is cold-dominated; a short edit sequence keeps the
    // wall clock sane without weakening any gate.
    const int size_edits = size >= 1000000 ? std::min(edits, 40) : edits;
    Row row;
    if (!run_size(size, size_edits, seed, /*timing=*/true, pool, &row)) {
      return EXIT_FAILURE;
    }
    rows.push_back(row);
  }

  std::cout << "E14: certified cold vs warm resolve on generated designs\n\n";
  TextTable table;
  table.set_header({"|V|", "|E|", "|A|", "cold (us)", "warm (us)", "speedup",
                    "dirty cone"});
  for (const Row& row : rows) {
    table.add_row({cat(row.vertices), cat(row.edges), cat(row.anchors),
                   fmt(row.cold_us), fmt(row.warm_us),
                   cat(fmt(row.speedup()), "x"),
                   cat(row.dirty_cone, "/", row.vertices)});
  }
  table.print(std::cout);

  std::cout << "\nwarm-path phase breakdown (us per warm resolve)\n\n";
  TextTable phases;
  phases.set_header(
      {"|V|", "topo patch", "SPFA repair", "anchor patch", "reschedule"});
  for (const Row& row : rows) {
    phases.add_row({cat(row.vertices), fmt(row.topo_us, 2),
                    fmt(row.spfa_us, 2), fmt(row.anchor_us, 2),
                    fmt(row.resched_us, 2)});
  }
  phases.print(std::cout);

  std::cout << "\nparallel speedups, sequential vs " << threads
            << "-thread pool (bit-identity enforced)\n\n";
  TextTable par;
  par.set_header({"|V|", "anchor seq (us)", "anchor par (us)", "speedup",
                  "warm seq (us)", "warm par (us)", "speedup"});
  for (const Row& row : rows) {
    par.add_row({cat(row.vertices), fmt(row.anchor_seq_us),
                 fmt(row.anchor_par_us), cat(fmt(row.anchor_speedup(), 2), "x"),
                 fmt(row.warm_us), fmt(row.warm_par_us),
                 cat(fmt(row.warm_parallel_speedup(), 2), "x")});
  }
  par.print(std::cout);

  // The anchor-phase speedup gate reads the 10^5 tier: large enough
  // for per-anchor sharding to dominate the fork/join overhead, small
  // enough that every run of the ladder reaches it.
  const Row* gate_row = nullptr;
  for (const Row& row : rows) {
    if (row.vertices == 100000) gate_row = &row;
  }
  const bool gate_applies = gate_row != nullptr &&
                            hardware >= static_cast<unsigned>(threads) &&
                            threads >= 4;
  const double gate_speedup = gate_row != nullptr ? gate_row->anchor_speedup()
                                                  : 0.0;
  const std::string gate = !gate_applies ? "SKIPPED"
                           : gate_speedup >= kRequiredAnchorSpeedup
                               ? "HOLDS"
                               : (advisory ? "FAILS (advisory)" : "FAILS");

  const Row& largest = rows.back();
  benchio::Json sizes_json = benchio::Json::array();
  for (const Row& row : rows) {
    benchio::Json entry = benchio::Json::object()
                              .field("vertices", row.vertices)
                              .field("edges", row.edges)
                              .field("anchors", row.anchors)
                              .field("edits", row.edits)
                              .field("cold_us", row.cold_us)
                              .field("warm_us", row.warm_us)
                              .field("speedup", row.speedup())
                              .field("dirty_cone_vertices", row.dirty_cone)
                              .field("warm_topo_us", row.topo_us)
                              .field("warm_spfa_us", row.spfa_us)
                              .field("warm_anchor_us", row.anchor_us)
                              .field("warm_resched_us", row.resched_us)
                              .field("anchor_patch_dominant",
                                     row.anchor_dominant)
                              .field("anchor_seq_us", row.anchor_seq_us)
                              .field("anchor_par_us", row.anchor_par_us)
                              .field("anchor_parallel_speedup",
                                     row.anchor_speedup())
                              .field("warm_par_us", row.warm_par_us)
                              .field("warm_parallel_speedup",
                                     row.warm_parallel_speedup())
                              .field("binary_round_trip", row.binary_checked);
    if (row.binary_checked) {
      entry.field("binary_write_us", row.binary_write_us)
          .field("binary_read_us", row.binary_read_us);
    }
    sizes_json.element(std::move(entry));
  }
  benchio::Json::object()
      .field("bench", "scale")
      .field("seed", static_cast<long long>(seed))
      .field("threads", threads)
      .field("hardware_concurrency", static_cast<int>(hardware))
      .field("bit_identity", true)
      .field("parallel_bit_identity", true)
      .field("largest_vertices", largest.vertices)
      .field("largest_speedup", largest.speedup())
      .field("largest_anchor_patch_dominant", largest.anchor_dominant)
      .field("required_anchor_speedup", kRequiredAnchorSpeedup)
      .field("anchor_speedup_gate", gate)
      .field("anchor_speedup_gate_mode", !gate_applies
                                             ? std::string("skipped")
                                         : advisory ? std::string("advisory")
                                                    : std::string("enforced"))
      .field("sizes", sizes_json)
      .write(out_path);
  std::cout << "\nwrote " << out_path << "\n";

  // Hard gates (bit-identity -- warm vs cold AND pooled vs sequential
  // -- certification, warm-path coverage, binary round-trip) all
  // passed inside run_size. The anchor-phase speedup gate is timing:
  // enforced only with real cores underneath and no advisory flag.
  std::cout << "\nbit-identity (warm vs cold, pooled vs sequential, all "
               "sizes): HOLDS\n";
  std::cout << "anchor patch dominant at " << largest.vertices
            << " vertices: " << (largest.anchor_dominant ? "YES" : "no")
            << " (advisory; bitset rows should keep this off the top)\n";
  std::cout << "anchor-phase speedup at 10^5 vertices, " << threads
            << " threads: " << fmt(gate_speedup, 2) << "x (required: >= "
            << fmt(kRequiredAnchorSpeedup) << "x, hardware threads: "
            << hardware << "): " << gate << "\n";
  if (!gate_applies) {
    std::cout << (gate_row == nullptr
                      ? "no 10^5 tier in this run: speedup gate skipped\n"
                      : "fewer hardware threads than the pool: speedup gate "
                        "skipped\n");
    return EXIT_SUCCESS;
  }
  if (gate_speedup < kRequiredAnchorSpeedup && advisory) {
    std::cout << "--advisory-speedup: gate miss reported, not enforced\n";
    return EXIT_SUCCESS;
  }
  return gate_speedup >= kRequiredAnchorSpeedup ? EXIT_SUCCESS : EXIT_FAILURE;
}

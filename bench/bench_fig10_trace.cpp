// E4: regenerates the paper's Fig 10 -- the per-iteration trace of
// offsets in the iterative incremental scheduling algorithm -- and
// checks the pinned cells of the published table.
#include <cstdlib>
#include <iostream>

#include "designs/designs.hpp"
#include "driver/report.hpp"
#include "sched/scheduler.hpp"

using namespace relsched;

int main() {
  const auto g = designs::fig10_graph();
  sched::ScheduleOptions opts;
  opts.record_trace = true;
  const auto result = sched::schedule(g, opts);
  if (!result.ok()) {
    std::cerr << "schedule failed: " << result.message << "\n";
    return EXIT_FAILURE;
  }

  std::cout << "E4 / Fig 10: trace of offsets in the scheduling algorithm\n\n";
  driver::print_iteration_trace(std::cout, g, result);

  std::cout <<
      "\npaper's published table (sigma_v0, sigma_a):\n"
      "  vertex | iter1 compute | iter1 readjust | iter2 compute |"
      " iter2 readjust | final\n"
      "  a      | 1,-           | 2,-            | 2,-           |"
      "                | 2,-\n"
      "  v1     | 1,0           |                | 2,0           |"
      "                | 2,0\n"
      "  v2     | 2,1           | 4,3            | 4,3           |"
      " 5,3            | 5,3\n"
      "  v3     | 5,4           |                | 6,4           |"
      "                | 6,4\n"
      "  v4     | 4,2           |                | 4,2           |"
      "                | 4,2\n"
      "  v5     | 5,3           | 6,3            | 6,3           |"
      "                | 6,3\n"
      "  v6     | 8,-           |                | 8,-           |"
      "                | 8,-\n"
      "  v7     | 12,5          |                | 12,6          |"
      "                | 12,6\n";

  // Structural checks against the published narrative.
  bool ok = result.iterations == 3 && result.trace.size() == 3 &&
            result.trace[0].violated_backward_edges == 3 &&
            result.trace[1].violated_backward_edges == 1;
  // Spot-check the cells the paper's text calls out.
  const VertexId v0(0), a(1), v2(3), v5(6), v7(8);
  ok = ok && result.trace[0].after_compute.offset(v2, v0) == 2;
  ok = ok && result.trace[0].after_readjust.offset(v2, v0) == 4;
  ok = ok && result.trace[0].after_readjust.offset(v2, a) == 3;
  ok = ok && result.trace[0].after_readjust.offset(v5, v0) == 6;
  ok = ok && result.schedule.offset(v7, v0) == 12;
  ok = ok && result.schedule.offset(v7, a) == 6;
  std::cout << "\niterations: " << result.iterations
            << " (paper: terminates in the third iteration)\n"
            << "paper comparison: " << (ok ? "MATCHES" : "MISMATCH") << "\n";
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}

// E3: the paper's Figs 4, 7 and 8 -- anchor redundancy. Demonstrates
// the cascading effect (Fig 4), a redundant relevant anchor (Fig 7 /
// Fig 8(b)) and an irredundant one (Fig 8(a)), and verifies that start
// times computed from IR(v) alone match the full anchor sets for a
// sweep of delay profiles (Theorem 6).
#include <cstdlib>
#include <iostream>

#include "anchors/anchor_analysis.hpp"
#include "base/strings.hpp"
#include "cg/constraint_graph.hpp"
#include "sched/scheduler.hpp"

using namespace relsched;

namespace {

std::string set_names(const cg::ConstraintGraph& g,
                      const anchors::AnchorSetView& set) {
  std::vector<std::string> names;
  for (VertexId a : set) names.emplace_back(g.vertex(a).name);
  return cat("{", join(names, ","), "}");
}

bool demo(const char* title, const cg::ConstraintGraph& g, VertexId target,
          bool expect_a_irredundant) {
  const auto analysis = anchors::AnchorAnalysis::compute(g);
  std::cout << title << "\n  A(" << g.vertex(target).name
            << ") = " << set_names(g, analysis.anchor_set(target)) << ", R = "
            << set_names(g, analysis.relevant_set(target)) << ", IR = "
            << set_names(g, analysis.irredundant_set(target)) << "\n";

  const bool a_in_ir = analysis.irredundant_set(target).contains(VertexId(1));
  bool ok = a_in_ir == expect_a_irredundant;

  // Theorem 6: IR-only start times equal full start times.
  const auto result = sched::schedule(g, analysis);
  if (!result.ok()) return false;
  const auto restricted = sched::restrict_schedule(
      result.schedule, analysis, anchors::AnchorMode::kIrredundant);
  for (int d1 = 0; d1 <= 6; d1 += 3) {
    for (int d2 = 0; d2 <= 6; d2 += 3) {
      sched::DelayProfile profile;
      const auto as = g.anchors();
      if (as.size() > 1) profile.set(as[1], d1);
      if (as.size() > 2) profile.set(as[2], d2);
      if (result.schedule.start_times(g, profile) !=
          restricted.start_times(g, profile)) {
        ok = false;
      }
    }
  }
  std::cout << "  IR-only start times match full start times: "
            << (ok ? "yes" : "NO") << "\n\n";
  return ok;
}

}  // namespace

int main() {
  std::cout << "E3 / Figs 4, 7, 8: anchor redundancy\n\n";
  bool ok = true;

  {
    // Fig 4: cascade v0 -> a -> b -> vi; only b remains for vi.
    cg::ConstraintGraph g("fig4");
    const VertexId v0 = g.add_vertex("v0", cg::Delay::bounded(0));
    const VertexId a = g.add_vertex("a", cg::Delay::unbounded());
    const VertexId b = g.add_vertex("b", cg::Delay::unbounded());
    const VertexId vi = g.add_vertex("vi", cg::Delay::bounded(1));
    g.add_sequencing_edge(v0, a);
    g.add_sequencing_edge(a, b);
    g.add_sequencing_edge(b, vi);
    ok = demo("Fig 4 (cascading anchors; expect IR = {b})", g, vi,
              /*expect_a_irredundant=*/false) &&
         ok;
  }
  {
    // Fig 8(a): side path longer than the path through b: a stays.
    cg::ConstraintGraph g("fig8a");
    const VertexId v0 = g.add_vertex("v0", cg::Delay::bounded(0));
    const VertexId a = g.add_vertex("a", cg::Delay::unbounded());
    const VertexId v1 = g.add_vertex("v1", cg::Delay::bounded(2));
    const VertexId b = g.add_vertex("b", cg::Delay::unbounded());
    const VertexId v3 = g.add_vertex("v3", cg::Delay::bounded(1));
    g.add_sequencing_edge(v0, a);
    g.add_sequencing_edge(a, v1);
    g.add_sequencing_edge(v1, v3);
    g.add_sequencing_edge(a, b);
    g.add_sequencing_edge(b, v3);
    ok = demo("Fig 8(a) (maximal defining path dominates; expect a in IR)", g,
              v3, /*expect_a_irredundant=*/true) &&
         ok;
  }
  {
    // Fig 8(b): path through b dominates: a is redundant.
    cg::ConstraintGraph g("fig8b");
    const VertexId v0 = g.add_vertex("v0", cg::Delay::bounded(0));
    const VertexId a = g.add_vertex("a", cg::Delay::unbounded());
    const VertexId v1 = g.add_vertex("v1", cg::Delay::bounded(1));
    const VertexId b = g.add_vertex("b", cg::Delay::unbounded());
    const VertexId v2 = g.add_vertex("v2", cg::Delay::bounded(3));
    const VertexId v3 = g.add_vertex("v3", cg::Delay::bounded(1));
    g.add_sequencing_edge(v0, a);
    g.add_sequencing_edge(a, v1);
    g.add_sequencing_edge(v1, v3);
    g.add_sequencing_edge(a, b);
    g.add_sequencing_edge(b, v2);
    g.add_sequencing_edge(v2, v3);
    ok = demo("Fig 8(b) (path through b dominates; expect a redundant)", g, v3,
              /*expect_a_irredundant=*/false) &&
         ok;
  }
  std::cout << "paper comparison: " << (ok ? "MATCHES" : "MISMATCH") << "\n";
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}

// Minimal machine-readable output for bench binaries: a JSON value
// builder just rich enough for flat records ({"k": v} objects, arrays
// of them, numbers/strings/bools). CI jobs archive the emitted
// BENCH_*.json files so runs can be diffed across commits without
// scraping the human-readable tables.
#pragma once

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace relsched::benchio {

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// Streaming builder for one JSON value. Nested containers are built
/// separately and spliced in with `raw()`.
class Json {
 public:
  static Json object() { return Json('{', '}'); }
  static Json array() { return Json('[', ']'); }

  Json& field(const std::string& key, const std::string& value) {
    return raw_field(key, '"' + json_escape(value) + '"');
  }
  Json& field(const std::string& key, const char* value) {
    return field(key, std::string(value));
  }
  Json& field(const std::string& key, double value) {
    return raw_field(key, number(value));
  }
  Json& field(const std::string& key, long long value) {
    return raw_field(key, std::to_string(value));
  }
  Json& field(const std::string& key, int value) {
    return raw_field(key, std::to_string(value));
  }
  Json& field(const std::string& key, bool value) {
    return raw_field(key, value ? "true" : "false");
  }
  Json& field(const std::string& key, const Json& value) {
    return raw_field(key, value.str());
  }

  /// Array element (object fields use field()).
  Json& element(const Json& value) {
    separator();
    body_ += value.str();
    return *this;
  }
  Json& element(double value) {
    separator();
    body_ += number(value);
    return *this;
  }
  Json& element(int value) {
    separator();
    body_ += std::to_string(value);
    return *this;
  }
  Json& element(long long value) {
    separator();
    body_ += std::to_string(value);
    return *this;
  }
  Json& element(const std::string& value) {
    separator();
    body_ += '"' + json_escape(value) + '"';
    return *this;
  }

  [[nodiscard]] std::string str() const {
    return open_ + body_ + close_;
  }

  /// Crash-safe emit: the bytes land in `path + ".tmp"` and rename into
  /// place, so an interrupted bench leaves either the previous
  /// BENCH_*.json or the new one -- never a torn hybrid. Returns false
  /// when the file could not be written.
  bool write(const std::string& path) const {
    const std::string tmp = path + ".tmp";
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      out << str() << "\n";
      out.flush();
      if (!out) {
        std::remove(tmp.c_str());
        return false;
      }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::remove(tmp.c_str());
      return false;
    }
    return true;
  }

 private:
  Json(char open, char close) : open_(1, open), close_(1, close) {}

  static std::string number(double v) {
    std::ostringstream os;
    os << v;
    return os.str();
  }

  void separator() {
    if (!body_.empty()) body_ += ", ";
  }

  Json& raw_field(const std::string& key, const std::string& value) {
    separator();
    body_ += '"' + json_escape(key) + "\": " + value;
    return *this;
  }

  std::string open_, close_, body_;
};

}  // namespace relsched::benchio

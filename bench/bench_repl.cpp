// Replication chaos gate for relsched_serve: failover must lose
// nothing the client was told is safe.
//
// Phase 1 (failover):
//   standby B <-- primary A <-- client pool
//   The harness re-execs itself as both daemons (--serve-child). A
//   runs with RELSCHED_CHECKPOINT_SYNC=always, FaultFs injection, and
//   --replicate-to B, so every committed edit is streamed to B and a
//   client ack doubles as a semi-sync replication ack. A chaos thread
//   SIGKILLs the primary at randomized points mid-stream, promotes the
//   standby ({"op":"promote","replicate_to":<fresh standby>}), and
//   repoints the clients; each promoted primary streams onward to a
//   freshly spawned standby, so every kill cycle exercises bootstrap,
//   steady-state streaming, and promotion.
//
//   Hard gates (exit nonzero):
//     - no acknowledged edit is ever lost: a non-degraded "ok" reply
//       means the edit was acked by the standby, so after a kill +
//       promote the session's revision must cover it;
//     - every post-failover reply digest is bit-identical to a serial
//       single-process oracle running the same deterministic script;
//     - every session finishes its full script despite the kills;
//     - a final resolve on the last promoted primary reproduces the
//       oracle's final digest for every session (the whole chain
//       converged, not just the acked prefix);
//     - zero divergences (clean streams must never trip the digest
//       oracle), zero quarantined sessions, zero leaked temp files.
//
// Phase 2 (divergence injection):
//   A fresh primary/standby pair runs with --repl-corrupt-at N: the
//   primary corrupts the Nth streamed edit record in the outgoing
//   frame only (its own WAL stays correct). The digest oracle must
//   catch the divergence (counted on both sides), quarantine the
//   stream, and heal it by re-shipping a snapshot; the gate promotes
//   the standby afterwards and requires its state to be bit-identical
//   to the oracle -- wrong state must be healed, never served.
//
// Counters from both phases -- including the FaultFs fault counters
// and WAL retry totals now exposed by the "stats" op -- are recorded
// in BENCH_repl.json. --check-only shrinks the run for CI/sanitizers.
#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "cg/graph_io.hpp"
#include "designs/generator.hpp"
#include "engine/session.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

extern char** environ;

namespace {

using relsched::serve::Json;

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct Config {
  int sessions = 16;
  int edits_per_session = 24;
  int clients = 8;
  int kills = 2;
  bool check_only = false;
  std::string faults = "11,120,60,90,30";  // seed,write,fsync,rename,enospc
  std::string out_json = "BENCH_repl.json";
};

/// One scripted edit, drawn deterministically from (session, step) --
/// the same function the serial oracle evaluates.
struct ScriptEdit {
  enum class Kind { kAddMin, kAddMax, kSetDelay };
  Kind kind = Kind::kAddMin;
  int a = 0;
  int b = 0;
  long long cycles = 0;
};

ScriptEdit script_edit(int session, int step, int vertices) {
  ScriptEdit e;
  const std::uint64_t r =
      mix64((static_cast<std::uint64_t>(session) << 20) ^
            static_cast<std::uint64_t>(step) ^ 0x5e971ULL);
  const int span = vertices - 2;
  int from = 1 + static_cast<int>((r >> 8) % static_cast<std::uint64_t>(span));
  int to = 1 + static_cast<int>((r >> 24) % static_cast<std::uint64_t>(span));
  if (from == to) to = from == span ? 1 : from + 1;
  if (from > to) std::swap(from, to);
  switch (r % 5) {
    case 0:
    case 1:
    case 2:
      e.kind = ScriptEdit::Kind::kAddMin;
      e.a = from;
      e.b = to;
      e.cycles = 1 + static_cast<long long>((r >> 40) % 6);
      break;
    case 3:
      e.kind = ScriptEdit::Kind::kAddMax;
      e.a = from;
      e.b = to;
      e.cycles = 4000 + static_cast<long long>((r >> 40) % 512);
      break;
    default:
      e.kind = ScriptEdit::Kind::kSetDelay;
      e.a = from;
      e.cycles = static_cast<long long>((r >> 40) % 7);
      break;
  }
  return e;
}

relsched::cg::ConstraintGraph make_design(int session, bool small) {
  relsched::designs::GeneratorParams params;
  params.seed = 4200 + static_cast<std::uint64_t>(session);
  params.vertices = small ? 64 : 80 + (session % 4) * 12;
  params.width = 3 + session % 3;
  params.anchor_density = 250;
  params.max_anchors = 5;
  params.min_density = 1800;
  params.max_density = 900;
  params.max_delay = 6;
  params.name = "repl";
  return relsched::designs::generate(params);
}

/// Serial oracle: digest after each script step, no server, no faults.
std::vector<std::string> oracle_digests(const relsched::cg::ConstraintGraph& g,
                                        int session, int steps) {
  relsched::engine::SessionOptions options;
  options.certify = false;
  options.threads = 1;
  relsched::engine::SynthesisSession s(g, options);
  const int vertices = g.vertex_count();
  std::vector<std::string> digests;
  digests.reserve(static_cast<std::size_t>(steps));
  for (int j = 0; j < steps; ++j) {
    const ScriptEdit e = script_edit(session, j, vertices);
    switch (e.kind) {
      case ScriptEdit::Kind::kAddMin:
        s.add_min_constraint(relsched::VertexId(e.a), relsched::VertexId(e.b),
                             static_cast<int>(e.cycles));
        break;
      case ScriptEdit::Kind::kAddMax:
        s.add_max_constraint(relsched::VertexId(e.a), relsched::VertexId(e.b),
                             static_cast<int>(e.cycles));
        break;
      case ScriptEdit::Kind::kSetDelay:
        s.set_delay(relsched::VertexId(e.a),
                    relsched::cg::Delay::bounded(static_cast<int>(e.cycles)));
        break;
    }
    const relsched::engine::Products& products = s.resolve();
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(
                      relsched::serve::products_digest(products)));
    digests.emplace_back(buf);
  }
  return digests;
}

Json edit_request(const std::string& sid, const ScriptEdit& e) {
  Json edit = Json::object();
  switch (e.kind) {
    case ScriptEdit::Kind::kAddMin:
    case ScriptEdit::Kind::kAddMax:
      edit.set("kind", Json::string(e.kind == ScriptEdit::Kind::kAddMin
                                        ? "add_min"
                                        : "add_max"));
      edit.set("from", Json::number(static_cast<long long>(e.a)));
      edit.set("to", Json::number(static_cast<long long>(e.b)));
      edit.set("cycles", Json::number(e.cycles));
      break;
    case ScriptEdit::Kind::kSetDelay:
      edit.set("kind", Json::string("set_delay"));
      edit.set("vertex", Json::number(static_cast<long long>(e.a)));
      edit.set("cycles", Json::number(e.cycles));
      break;
  }
  Json request = Json::object();
  request.set("op", Json::string("edit"));
  request.set("session", Json::string(sid));
  Json edits = Json::array();
  edits.push(std::move(edit));
  request.set("edits", std::move(edits));
  return request;
}

// ---- Daemon child management -----------------------------------------------

struct ChildSpec {
  std::string socket_path;
  std::string state_dir;
  std::string replicate_to;     // primary role when non-empty
  bool standby = false;         // standby role
  long long corrupt_at = 0;     // phase-2 chaos knob
  std::string faults;           // RELSCHED_FAULTFS, "" = clean
};

pid_t spawn_daemon(const std::string& self_exe, const ChildSpec& spec) {
  std::vector<std::string> args = {
      self_exe,      "--serve-child",
      "--socket",    spec.socket_path,
      "--state-dir", spec.state_dir,
      "--max-live",  "8",  // below the session count: eviction churn
      "--deadline-ms", "30000",
  };
  if (spec.standby) args.push_back("--standby");
  if (!spec.replicate_to.empty()) {
    args.push_back("--replicate-to");
    args.push_back(spec.replicate_to);
  }
  if (spec.corrupt_at > 0) {
    args.push_back("--repl-corrupt-at");
    args.push_back(std::to_string(spec.corrupt_at));
  }
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  std::vector<std::string> env_store;
  std::vector<char*> envp;
  for (char** e = environ; *e != nullptr; ++e) {
    if (std::strncmp(*e, "RELSCHED_CHECKPOINT_SYNC=", 25) == 0) continue;
    if (std::strncmp(*e, "RELSCHED_FAULTFS=", 17) == 0) continue;
    envp.push_back(*e);
  }
  env_store.push_back("RELSCHED_CHECKPOINT_SYNC=always");
  if (!spec.faults.empty() && spec.faults != "off") {
    env_store.push_back("RELSCHED_FAULTFS=" + spec.faults);
  }
  for (std::string& e : env_store) envp.push_back(e.data());
  envp.push_back(nullptr);

  pid_t pid = -1;
  if (::posix_spawn(&pid, self_exe.c_str(), nullptr, nullptr, argv.data(),
                    envp.data()) != 0) {
    return -1;
  }
  return pid;
}

struct Harness {
  Config config;
  std::string self_exe;
  std::string root;

  /// Current topology, updated by the chaos thread at each promote.
  /// Clients read a snapshot; stale reads just cost one retry.
  std::mutex topo_mutex;
  std::string primary_socket;
  std::string standby_socket;
  pid_t primary_pid = -1;
  pid_t standby_pid = -1;

  std::atomic<bool> done{false};
  std::atomic<long long> failures{0};
  std::atomic<long long> requests_ok{0};
  std::atomic<long long> reconnects{0};
  std::atomic<long long> failovers_survived{0};
  std::atomic<long long> degraded_acks_seen{0};
  std::atomic<long long> digest_mismatches{0};

  void fail(const std::string& why) {
    failures.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(stderr, "bench_repl: FAIL: %s\n", why.c_str());
  }

  std::vector<std::string> client_sockets() {
    std::lock_guard<std::mutex> lock(topo_mutex);
    // Primary first; a sweep that lands on the standby gets a
    // structured "standby" refusal and retries -- that IS the failover
    // dance serve::Client users run.
    return {primary_socket, standby_socket};
  }
};

/// Drives one session's script against whichever daemon is currently
/// primary, surviving kills and promotions. `acked_floor` is the
/// tentpole gate: the highest applied count a non-degraded "ok" reply
/// acknowledged -- after any failover the session must still cover it.
void drive_session(Harness& h, int session, const std::string& design_text,
                   const std::vector<std::string>& oracle) {
  const int steps = h.config.edits_per_session;
  const int vertices = [&] {
    relsched::cg::ParseResult p = relsched::cg::from_text(design_text);
    return p.ok() ? p.graph->vertex_count() : 0;
  }();

  relsched::serve::Client client;
  client.set_io_timeout(std::chrono::milliseconds(20000));
  std::string sid;
  long long base_revision = 0;
  long long applied = 0;
  long long acked_floor = 0;

  auto reopen = [&]() -> bool {
    client.close();
    std::string error;
    if (!client.connect_any(h.client_sockets(), std::chrono::seconds(20),
                            &error)) {
      return false;
    }
    Json request = Json::object();
    request.set("op", Json::string("open"));
    request.set("design_text", Json::string(design_text));
    Json reply;
    if (!client.call_with_backoff(request, &reply, std::chrono::seconds(30),
                                  &error)) {
      client.close();
      return false;
    }
    const Json* ok = reply.get("ok");
    if (ok == nullptr || !ok->as_bool()) {
      const Json* code = reply.get("code");
      const std::string code_s = code != nullptr ? code->as_string() : "";
      if (code_s == relsched::serve::kCodeIo ||
          code_s == relsched::serve::kCodeShuttingDown ||
          code_s == relsched::serve::kCodeStandby) {
        client.close();
        return false;  // transient: mid-fault, mid-restart, mid-promote
      }
      h.fail("session " + std::to_string(session) +
             ": open rejected: " + reply.render());
      return false;
    }
    sid = reply.get("session")->as_string();
    base_revision = reply.get("base_revision") != nullptr
                        ? reply.get("base_revision")->as_int()
                        : 0;
    applied = reply.get("revision")->as_int() - base_revision;
    if (applied < 0 || applied > steps) {
      h.fail("session " + std::to_string(session) +
             ": impossible applied count " + std::to_string(applied));
      return false;
    }
    if (applied < acked_floor) {
      // THE replication gate: this edit was acked as replicated, then
      // lost across a kill + promote.
      h.fail("session " + std::to_string(session) + ": acked edit lost -- " +
             std::to_string(acked_floor) + " acked, only " +
             std::to_string(applied) + " survive failover");
      return false;
    }
    if (applied > 0) h.failovers_survived.fetch_add(1, std::memory_order_relaxed);
    return true;
  };

  int consecutive_failures = 0;
  while (!h.done.load(std::memory_order_relaxed)) {
    if (h.failures.load(std::memory_order_relaxed) > 0) return;
    if (consecutive_failures > 300) {
      h.fail("session " + std::to_string(session) +
             ": no progress after 300 attempts");
      return;
    }
    if (sid.empty() || !client.connected()) {
      if (!reopen()) {
        ++consecutive_failures;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        continue;
      }
    }
    if (applied >= steps) break;

    const ScriptEdit e =
        script_edit(session, static_cast<int>(applied), vertices);
    Json reply;
    std::string error;
    if (!client.call_with_backoff(edit_request(sid, e), &reply,
                                  std::chrono::seconds(30), &error)) {
      h.reconnects.fetch_add(1, std::memory_order_relaxed);
      client.close();
      sid.clear();
      ++consecutive_failures;
      continue;
    }
    const Json* ok = reply.get("ok");
    if (ok == nullptr || !ok->as_bool()) {
      const Json* code = reply.get("code");
      const std::string code_s =
          code != nullptr ? code->as_string() : "<none>";
      if (code_s == relsched::serve::kCodeRetryAfter) {
        // back off and retry below
      } else if (code_s == relsched::serve::kCodeShuttingDown ||
                 code_s == relsched::serve::kCodeUnknownSession ||
                 code_s == relsched::serve::kCodeStandby) {
        sid.clear();  // raced a kill or a promote; re-open resyncs
      } else {
        h.fail("session " + std::to_string(session) + " step " +
               std::to_string(applied) + ": " + reply.render());
        return;
      }
      ++consecutive_failures;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      continue;
    }
    consecutive_failures = 0;
    h.requests_ok.fetch_add(1, std::memory_order_relaxed);

    const long long revision = reply.get("revision")->as_int();
    const long long now_applied = revision - base_revision;
    if (now_applied != applied + 1) {
      h.fail("session " + std::to_string(session) + ": revision " +
             std::to_string(revision) + " implies " +
             std::to_string(now_applied) + " applied, expected " +
             std::to_string(applied + 1));
      return;
    }
    applied = now_applied;
    const std::string& digest = reply.get("digest")->as_string();
    const std::string& expected =
        oracle[static_cast<std::size_t>(applied - 1)];
    if (digest != expected) {
      h.digest_mismatches.fetch_add(1, std::memory_order_relaxed);
      h.fail("session " + std::to_string(session) + " step " +
             std::to_string(applied - 1) + ": digest " + digest +
             " != oracle " + expected);
      return;
    }
    if (reply.get("repl_degraded") != nullptr) {
      // Acked to the client but NOT known replicated: not covered by
      // the acked_floor guarantee (counted; kills make a few expected).
      h.degraded_acks_seen.fetch_add(1, std::memory_order_relaxed);
    } else {
      acked_floor = applied;
    }
  }
}

// ---- Phase orchestration ---------------------------------------------------

bool call_until_ok(const std::string& socket_path, const Json& request,
                   Json* reply, std::chrono::seconds budget,
                   std::string* error) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    relsched::serve::Client client;
    if (!client.connect(socket_path, std::chrono::seconds(5), error)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      continue;
    }
    if (client.call_with_backoff(request, reply, std::chrono::seconds(10),
                                 error)) {
      const Json* ok = reply->get("ok");
      if (ok != nullptr && ok->as_bool()) return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return false;
}

long long stat_of(const Json& stats, const char* key) {
  const Json* v = stats.get(key);
  return v != nullptr ? v->as_int(-1) : -1;
}

/// Graceful shutdown + exit-0 check; SIGKILL fallback so a wedged
/// daemon cannot hang the bench.
void stop_daemon(Harness& h, pid_t pid, const std::string& socket_path,
                 const char* what) {
  if (pid <= 0) return;
  Json bye = Json::object();
  bye.set("op", Json::string("shutdown"));
  Json ignored;
  std::string error;
  relsched::serve::Client client;
  if (client.connect(socket_path, std::chrono::seconds(5), &error)) {
    (void)client.call(bye, &ignored, &error);
  }
  for (int spins = 0; spins < 200; ++spins) {
    int status = 0;
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == pid) {
      if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        h.fail(std::string(what) + " did not exit 0 on graceful shutdown");
      }
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  h.fail(std::string(what) + " ignored shutdown; SIGKILLed");
  ::kill(pid, SIGKILL);
  int status = 0;
  ::waitpid(pid, &status, 0);
}

int run_phase1(Harness& h, const std::vector<std::string>& designs,
               const std::vector<std::vector<std::string>>& oracles,
               relsched::benchio::Json& out) {
  const Config& config = h.config;
  int standby_serial = 0;
  auto standby_spec = [&](int serial) {
    ChildSpec spec;
    spec.socket_path = h.root + "/standby" + std::to_string(serial) + ".sock";
    spec.state_dir = h.root + "/standby" + std::to_string(serial);
    spec.standby = true;
    return spec;
  };

  {
    const ChildSpec sspec = standby_spec(standby_serial++);
    ChildSpec pspec;
    pspec.socket_path = h.root + "/primary.sock";
    pspec.state_dir = h.root + "/primary";
    pspec.replicate_to = sspec.socket_path;
    pspec.faults = config.faults;

    std::lock_guard<std::mutex> lock(h.topo_mutex);
    h.standby_pid = spawn_daemon(h.self_exe, sspec);
    h.primary_pid = spawn_daemon(h.self_exe, pspec);
    h.standby_socket = sspec.socket_path;
    h.primary_socket = pspec.socket_path;
    if (h.standby_pid <= 0 || h.primary_pid <= 0) {
      std::fprintf(stderr, "bench_repl: failed to spawn daemons\n");
      return 1;
    }
  }

  const auto wall_start = std::chrono::steady_clock::now();

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(config.clients));
  for (int w = 0; w < config.clients; ++w) {
    workers.emplace_back([&h, &designs, &oracles, w] {
      for (int s = w; s < h.config.sessions; s += h.config.clients) {
        if (h.failures.load(std::memory_order_relaxed) > 0) return;
        drive_session(h, s, designs[static_cast<std::size_t>(s)],
                      oracles[static_cast<std::size_t>(s)]);
      }
    });
  }

  // Chaos: SIGKILL the primary mid-stream, promote the standby into a
  // primary that replicates onward to a fresh standby, repoint clients.
  std::thread chaos([&h, &standby_spec, &standby_serial] {
    // Progress-based trigger, not wall clock: each kill lands while a
    // known fraction of the workload is still in flight, so the gate
    // always exercises failover regardless of machine speed.
    const long long total = static_cast<long long>(h.config.sessions) *
                            h.config.edits_per_session;
    for (int k = 0; k < h.config.kills; ++k) {
      const long long threshold = total * (k + 1) / (h.config.kills + 2);
      while (!h.done.load(std::memory_order_relaxed) &&
             h.requests_ok.load(std::memory_order_relaxed) < threshold) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
      if (h.done.load(std::memory_order_relaxed)) return;

      pid_t old_primary = -1;
      std::string promote_target;
      {
        std::lock_guard<std::mutex> lock(h.topo_mutex);
        old_primary = h.primary_pid;
        promote_target = h.standby_socket;
      }
      std::fprintf(stderr, "bench_repl: chaos kill #%d (SIGKILL primary)\n",
                   k + 1);
      ::kill(old_primary, SIGKILL);
      int status = 0;
      ::waitpid(old_primary, &status, 0);

      const ChildSpec next = standby_spec(standby_serial++);
      const pid_t next_pid = spawn_daemon(h.self_exe, next);
      if (next_pid <= 0) {
        h.fail("chaos: failed to spawn replacement standby");
        return;
      }
      Json promote = Json::object();
      promote.set("op", Json::string("promote"));
      promote.set("replicate_to", Json::string(next.socket_path));
      Json reply;
      std::string error;
      if (!call_until_ok(promote_target, promote, &reply,
                         std::chrono::seconds(20), &error)) {
        h.fail("chaos: promote failed: " + error);
        return;
      }
      if (reply.get("was_standby") == nullptr ||
          !reply.get("was_standby")->as_bool()) {
        h.fail("chaos: promoted a daemon that was not a standby");
        return;
      }
      {
        std::lock_guard<std::mutex> lock(h.topo_mutex);
        h.primary_pid = h.standby_pid;
        h.primary_socket = promote_target;
        h.standby_pid = next_pid;
        h.standby_socket = next.socket_path;
      }
      std::fprintf(stderr, "bench_repl: promoted %s, new standby %s\n",
                   promote_target.c_str(), next.socket_path.c_str());
    }
  });

  for (std::thread& t : workers) t.join();
  h.done.store(true, std::memory_order_relaxed);
  chaos.join();
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();

  if (config.kills > 0 &&
      h.failovers_survived.load(std::memory_order_relaxed) == 0 &&
      h.failures.load(std::memory_order_relaxed) == 0) {
    h.fail("chaos kills never interrupted the stream: the failover path "
           "was not exercised");
  }

  std::string primary_socket;
  std::string standby_socket;
  pid_t primary_pid = -1;
  pid_t standby_pid = -1;
  {
    std::lock_guard<std::mutex> lock(h.topo_mutex);
    primary_socket = h.primary_socket;
    standby_socket = h.standby_socket;
    primary_pid = h.primary_pid;
    standby_pid = h.standby_pid;
  }

  // Convergence sweep: the surviving primary must reproduce the
  // oracle's FINAL digest for every session, not just the acked
  // prefixes the clients tracked.
  if (h.failures.load(std::memory_order_relaxed) == 0) {
    relsched::serve::Client client;
    std::string error;
    if (!client.connect(primary_socket, std::chrono::seconds(10), &error)) {
      h.fail("convergence sweep connect: " + error);
    } else {
      for (int s = 0; s < config.sessions; ++s) {
        Json open = Json::object();
        open.set("op", Json::string("open"));
        open.set("design_text",
                 Json::string(designs[static_cast<std::size_t>(s)]));
        Json reply;
        if (!client.call_with_backoff(open, &reply, std::chrono::seconds(30),
                                      &error) ||
            reply.get("ok") == nullptr || !reply.get("ok")->as_bool()) {
          h.fail("convergence sweep: open session " + std::to_string(s));
          break;
        }
        Json resolve = Json::object();
        resolve.set("op", Json::string("resolve"));
        resolve.set("session", Json::string(
                                   reply.get("session")->as_string()));
        Json rreply;
        if (!client.call_with_backoff(resolve, &rreply,
                                      std::chrono::seconds(30), &error) ||
            rreply.get("ok") == nullptr || !rreply.get("ok")->as_bool()) {
          h.fail("convergence sweep: resolve session " + std::to_string(s));
          break;
        }
        const std::string& digest = rreply.get("digest")->as_string();
        const std::string& expected =
            oracles[static_cast<std::size_t>(s)].back();
        if (digest != expected) {
          h.digest_mismatches.fetch_add(1, std::memory_order_relaxed);
          h.fail("convergence sweep: session " + std::to_string(s) +
                 " digest " + digest + " != oracle " + expected);
        }
      }
    }
  }

  // Stats gates on the surviving primary: clean streams never diverge,
  // injected I/O faults never poison sessions. Also the satellite
  // check: the stats op must surface the FaultFs and WAL-retry
  // counters (>= 0 proves the fields exist; the primary ran clean
  // after promote, so totals may legitimately be zero).
  Json stats;
  {
    Json request = Json::object();
    request.set("op", Json::string("stats"));
    std::string error;
    if (!call_until_ok(primary_socket, request, &stats,
                       std::chrono::seconds(10), &error)) {
      h.fail("final stats: " + error);
    } else {
      if (stat_of(stats, "repl_stream_divergences") != 0) {
        h.fail("clean run reported stream divergences");
      }
      if (stat_of(stats, "quarantined_sessions") != 0) {
        h.fail("quarantined sessions after chaos run");
      }
      if (stat_of(stats, "faultfs_total") < 0 ||
          stat_of(stats, "wal_retries_live") < 0) {
        h.fail("stats op is missing fault/WAL-retry counters");
      }
    }
  }

  stop_daemon(h, primary_pid, primary_socket, "primary");
  stop_daemon(h, standby_pid, standby_socket, "standby");

  long long leaked_temps = 0;
  {
    const std::string cmd = "find " + h.root + " -name '*.tmp.*' | wc -l";
    if (FILE* p = ::popen(cmd.c_str(), "r")) {
      if (std::fscanf(p, "%lld", &leaked_temps) != 1) leaked_temps = -1;
      ::pclose(p);
    }
  }
  if (leaked_temps != 0) {
    h.fail("leaked temp files: " + std::to_string(leaked_temps));
  }

  out.field("sessions", config.sessions);
  out.field("edits_per_session", config.edits_per_session);
  out.field("clients", config.clients);
  out.field("kills", config.kills);
  out.field("faults", config.faults);
  out.field("wall_seconds", wall_s);
  out.field("requests_ok", h.requests_ok.load());
  out.field("reconnects", h.reconnects.load());
  out.field("failovers_survived", h.failovers_survived.load());
  out.field("degraded_acks_seen", h.degraded_acks_seen.load());
  out.field("digest_mismatches", h.digest_mismatches.load());
  out.field("leaked_temp_files", leaked_temps);
  out.field("final_repl_records_shipped",
            stat_of(stats, "repl_records_shipped"));
  out.field("final_repl_snapshots_shipped",
            stat_of(stats, "repl_snapshots_shipped"));
  out.field("final_repl_degraded_acks", stat_of(stats, "repl_degraded_acks"));
  out.field("final_faultfs_total", stat_of(stats, "faultfs_total"));
  out.field("final_wal_retries_live", stat_of(stats, "wal_retries_live"));
  return h.failures.load() == 0 ? 0 : 1;
}

/// Phase 2: the primary corrupts one streamed record; the digest
/// oracle must detect, count, and heal it -- the standby's final state
/// must still be bit-identical to the serial oracle.
int run_phase2(Harness& h, relsched::benchio::Json& out) {
  const int steps = std::max(10, h.config.edits_per_session / 2);
  const relsched::cg::ConstraintGraph g = make_design(97, true);
  const std::string design_text = relsched::cg::to_text(g);
  const std::vector<std::string> oracle = oracle_digests(g, 97, steps);

  ChildSpec sspec;
  sspec.socket_path = h.root + "/p2_standby.sock";
  sspec.state_dir = h.root + "/p2_standby";
  sspec.standby = true;
  ChildSpec pspec;
  pspec.socket_path = h.root + "/p2_primary.sock";
  pspec.state_dir = h.root + "/p2_primary";
  pspec.replicate_to = sspec.socket_path;
  pspec.corrupt_at = 4;  // corrupt the 4th streamed edit record

  const pid_t standby_pid = spawn_daemon(h.self_exe, sspec);
  const pid_t primary_pid = spawn_daemon(h.self_exe, pspec);
  if (standby_pid <= 0 || primary_pid <= 0) {
    h.fail("phase2: failed to spawn daemons");
    return 1;
  }

  // Drive the whole script; the corruption and its healing happen on
  // the replication stream underneath these acked edits.
  std::string sid;
  {
    Json open = Json::object();
    open.set("op", Json::string("open"));
    open.set("design_text", Json::string(design_text));
    Json reply;
    std::string error;
    if (!call_until_ok(pspec.socket_path, open, &reply,
                       std::chrono::seconds(20), &error)) {
      h.fail("phase2: open: " + error);
      return 1;
    }
    sid = reply.get("session")->as_string();
  }
  {
    relsched::serve::Client client;
    client.set_io_timeout(std::chrono::milliseconds(20000));
    std::string error;
    if (!client.connect(pspec.socket_path, std::chrono::seconds(10),
                        &error)) {
      h.fail("phase2: connect: " + error);
      return 1;
    }
    for (int j = 0; j < steps; ++j) {
      const ScriptEdit e = script_edit(97, j, g.vertex_count());
      Json reply;
      if (!client.call_with_backoff(edit_request(sid, e), &reply,
                                    std::chrono::seconds(30), &error) ||
          reply.get("ok") == nullptr || !reply.get("ok")->as_bool()) {
        h.fail("phase2: edit " + std::to_string(j) + " failed");
        return 1;
      }
      if (reply.get("digest")->as_string() !=
          oracle[static_cast<std::size_t>(j)]) {
        h.fail("phase2: primary digest diverged from oracle (step " +
               std::to_string(j) + ")");
        return 1;
      }
    }
  }

  // The divergence must have been detected AND healed: wait until the
  // primary's stream counters say so.
  long long divergences = 0;
  long long snapshots = 0;
  {
    Json request = Json::object();
    request.set("op", Json::string("stats"));
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (std::chrono::steady_clock::now() < deadline) {
      Json stats;
      std::string error;
      if (call_until_ok(pspec.socket_path, request, &stats,
                        std::chrono::seconds(5), &error)) {
        divergences = stat_of(stats, "repl_stream_divergences");
        snapshots = stat_of(stats, "repl_snapshots_shipped");
        // >= 2 snapshots: the initial bootstrap plus the healing
        // re-ship after the divergence was caught.
        if (divergences >= 1 && snapshots >= 2) break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
  if (divergences < 1) {
    h.fail("phase2: injected corruption was never detected as divergence");
  }
  if (snapshots < 2) {
    h.fail("phase2: divergence was not healed by a snapshot re-ship");
  }

  // Healing proof: promote the standby and its state must be
  // bit-identical to the oracle -- wrong state detected is only half
  // the contract; wrong state must also never be served.
  if (h.failures.load(std::memory_order_relaxed) == 0) {
    // Let the re-shipped snapshot + tail drain before fencing off the
    // primary (its ack wait already bounds this, but be explicit).
    Json promote = Json::object();
    promote.set("op", Json::string("promote"));
    Json reply;
    std::string error;
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    if (!call_until_ok(sspec.socket_path, promote, &reply,
                       std::chrono::seconds(10), &error)) {
      h.fail("phase2: promote: " + error);
    } else {
      Json open = Json::object();
      open.set("op", Json::string("open"));
      open.set("design_text", Json::string(design_text));
      Json oreply;
      if (!call_until_ok(sspec.socket_path, open, &oreply,
                         std::chrono::seconds(10), &error)) {
        h.fail("phase2: open on promoted standby: " + error);
      } else {
        Json resolve = Json::object();
        resolve.set("op", Json::string("resolve"));
        resolve.set("session",
                    Json::string(oreply.get("session")->as_string()));
        Json rreply;
        if (!call_until_ok(sspec.socket_path, resolve, &rreply,
                           std::chrono::seconds(10), &error)) {
          h.fail("phase2: resolve on promoted standby: " + error);
        } else if (rreply.get("digest")->as_string() != oracle.back()) {
          h.fail("phase2: promoted standby serves diverged state: " +
                 rreply.get("digest")->as_string() + " != " + oracle.back());
        }
      }
    }
  }

  stop_daemon(h, primary_pid, pspec.socket_path, "phase2 primary");
  stop_daemon(h, standby_pid, sspec.socket_path, "phase2 standby");

  out.field("phase2_divergences_detected", divergences);
  out.field("phase2_snapshots_shipped", snapshots);
  out.field("phase2_healed", h.failures.load() == 0);
  return h.failures.load() == 0 ? 0 : 1;
}

int run_serve_child(int argc, char** argv);

int run_harness(const Config& config, const std::string& self_exe) {
  char dir_template[] = "/tmp/relsched_repl_bench_XXXXXX";
  if (::mkdtemp(dir_template) == nullptr) {
    std::fprintf(stderr, "bench_repl: mkdtemp failed\n");
    return 1;
  }

  std::fprintf(stderr,
               "bench_repl: %d sessions x %d edits, %d clients, %d kills, "
               "faults=%s\n",
               config.sessions, config.edits_per_session, config.clients,
               config.kills, config.faults.c_str());

  std::vector<std::string> designs;
  std::vector<std::vector<std::string>> oracles;
  designs.reserve(static_cast<std::size_t>(config.sessions));
  for (int i = 0; i < config.sessions; ++i) {
    const relsched::cg::ConstraintGraph g = make_design(i, config.check_only);
    designs.push_back(relsched::cg::to_text(g));
    oracles.push_back(oracle_digests(g, i, config.edits_per_session));
  }
  std::fprintf(stderr, "bench_repl: oracle digests computed\n");

  Harness h;
  h.config = config;
  h.self_exe = self_exe;
  h.root = dir_template;

  relsched::benchio::Json out = relsched::benchio::Json::object();
  out.field("bench", "repl");
  out.field("mode", config.check_only ? "check-only" : "full");

  const int rc1 = run_phase1(h, designs, oracles, out);
  const int rc2 = run_phase2(h, out);
  const bool pass = rc1 == 0 && rc2 == 0;

  out.field("pass", pass);
  out.write(config.out_json);
  std::fprintf(stderr,
               "bench_repl: %lld ok requests, %lld failovers survived, "
               "%lld degraded acks, phase2 healed=%d -> %s\n",
               h.requests_ok.load(), h.failovers_survived.load(),
               h.degraded_acks_seen.load(), rc2 == 0 ? 1 : 0,
               pass ? "PASS" : "FAIL");

  if (pass) {
    const std::string cleanup = "rm -rf " + h.root;
    (void)!::system(cleanup.c_str());
    return 0;
  }
  std::fprintf(stderr, "bench_repl: state kept at %s\n", h.root.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Both roles write to sockets whose peer may be SIGKILLed at any
  // moment; that must be an EPIPE, not a death sentence.
  ::signal(SIGPIPE, SIG_IGN);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--serve-child") == 0) {
      return run_serve_child(argc, argv);
    }
  }

  Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check-only") {
      config.check_only = true;
      config.sessions = 8;
      config.edits_per_session = 12;
      config.clients = 4;
      config.kills = 1;
    } else if (arg == "--sessions" && i + 1 < argc) {
      config.sessions = std::max(1, std::atoi(argv[++i]));
    } else if (arg == "--edits" && i + 1 < argc) {
      config.edits_per_session = std::max(2, std::atoi(argv[++i]));
    } else if (arg == "--clients" && i + 1 < argc) {
      config.clients = std::max(1, std::atoi(argv[++i]));
    } else if (arg == "--kills" && i + 1 < argc) {
      config.kills = std::max(0, std::atoi(argv[++i]));
    } else if (arg == "--faults" && i + 1 < argc) {
      config.faults = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      config.out_json = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--check-only] [--sessions N] [--edits N] "
                   "[--clients N] [--kills N] [--faults SPEC|off] "
                   "[--out PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  config.clients = std::min(config.clients, config.sessions);

  char self[4096];
  const ssize_t n = ::readlink("/proc/self/exe", self, sizeof self - 1);
  if (n <= 0) {
    std::fprintf(stderr, "bench_repl: cannot resolve /proc/self/exe\n");
    return 1;
  }
  self[n] = '\0';
  return run_harness(config, self);
}

namespace {

int run_serve_child(int argc, char** argv) {
  relsched::serve::ServerOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      options.socket_path = argv[++i];
    } else if (arg == "--state-dir" && i + 1 < argc) {
      options.state_dir = argv[++i];
    } else if (arg == "--max-live" && i + 1 < argc) {
      options.max_live_sessions = std::atoi(argv[++i]);
    } else if (arg == "--deadline-ms" && i + 1 < argc) {
      options.default_deadline =
          std::chrono::milliseconds(std::atoll(argv[++i]));
    } else if (arg == "--standby") {
      options.standby = true;
    } else if (arg == "--replicate-to" && i + 1 < argc) {
      options.replicate_to = argv[++i];
    } else if (arg == "--repl-corrupt-at" && i + 1 < argc) {
      options.repl_corrupt_record_at = std::atoll(argv[++i]);
    }
  }
  relsched::serve::Server server(std::move(options));
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "bench_repl child: %s\n", error.c_str());
    return 1;
  }
  server.serve_forever();
  return 0;
}

}  // namespace

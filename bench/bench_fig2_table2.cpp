// E1: regenerates the paper's Table II (anchor sets and minimum offsets
// of the Fig 2 constraint graph) and checks every cell against the
// published values.
#include <cstdlib>
#include <iostream>

#include "anchors/anchor_analysis.hpp"
#include "designs/designs.hpp"
#include "driver/report.hpp"
#include "sched/scheduler.hpp"

using namespace relsched;

int main() {
  const auto g = designs::fig2_graph();
  const auto analysis = anchors::AnchorAnalysis::compute(g);
  const auto result = sched::schedule(g, analysis);
  if (!result.ok()) {
    std::cerr << "schedule failed: " << result.message << "\n";
    return EXIT_FAILURE;
  }

  std::cout << "E1 / Table II: anchor sets and minimum offsets (Fig 2)\n\n";
  driver::print_schedule_table(std::cout, g, analysis, result.schedule);

  // Published values: vertex -> (sigma_v0, sigma_a); -1 encodes "-".
  struct Row {
    int vertex;
    long long sigma_v0;
    long long sigma_a;
  };
  const Row paper[] = {
      {1, 0, -1}, {2, 0, -1}, {3, 2, -1}, {4, 3, 0}, {5, 8, 5},
  };
  bool all_match = true;
  for (const Row& row : paper) {
    const auto sv0 = result.schedule.offset(VertexId(row.vertex), VertexId(0));
    const auto sa = result.schedule.offset(VertexId(row.vertex), VertexId(1));
    const long long got_v0 = sv0.value_or(-1);
    const long long got_a = sa.value_or(-1);
    if (got_v0 != row.sigma_v0 || got_a != row.sigma_a) {
      all_match = false;
      std::cout << "MISMATCH at vertex " << row.vertex << ": got (" << got_v0
                << "," << got_a << "), paper (" << row.sigma_v0 << ","
                << row.sigma_a << ")\n";
    }
  }
  std::cout << "\npaper comparison: "
            << (all_match ? "ALL CELLS MATCH" : "MISMATCHES FOUND") << "\n";
  return all_match ? EXIT_SUCCESS : EXIT_FAILURE;
}

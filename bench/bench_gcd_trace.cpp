// E7: regenerates the paper's Fig 14 -- simulation trace of the gcd
// design. Checks the published behaviour: after restart falls, yin is
// sampled first and xin exactly one cycle later (the min=max=1
// constraint pair), and Euclid's algorithm produces the right result.
#include <cstdlib>
#include <iostream>

#include "designs/designs.hpp"
#include "driver/synthesis.hpp"
#include "sim/simulator.hpp"

using namespace relsched;

int main() {
  seq::Design design = designs::build("gcd");
  const auto synthesis = driver::synthesize(design);
  if (!synthesis.ok()) {
    std::cerr << "synthesis failed: " << synthesis.message << "\n";
    return EXIT_FAILURE;
  }

  std::cout << "E7 / Fig 14: gcd simulation trace\n\n";
  bool ok = true;
  struct Case {
    int x, y, expected;
  };
  for (const Case c : {Case{12, 8, 4}, Case{252, 105, 21}, Case{17, 5, 1}}) {
    sim::Stimulus stim;
    stim.set(design, "restart", 0, 1);
    stim.set(design, "restart", 4, 0);
    stim.set(design, "xin", 0, c.x);
    stim.set(design, "yin", 0, c.y);
    sim::Simulator simulator(design, synthesis, stim);
    const auto run = simulator.run();

    graph::Weight y_cycle = -1, x_cycle = -1;
    for (const auto& e : run.events) {
      if (e.kind != sim::TraceEvent::Kind::kReadSample) continue;
      if (e.label == "yin") y_cycle = e.cycle;
      if (e.label == "xin") x_cycle = e.cycle;
    }
    const auto result_value =
        run.output_at(*design.find_port("result"), run.end_cycle);
    std::cout << "gcd(" << c.x << ", " << c.y << ") = " << result_value
              << " in " << run.end_cycle << " cycles; yin@" << y_cycle
              << ", xin@" << x_cycle << " (separation "
              << x_cycle - y_cycle << ")\n";
    ok = ok && !run.timed_out && result_value == c.expected &&
         x_cycle - y_cycle == 1 && y_cycle >= 4 &&
         run.all_constraints_satisfied();
  }

  // Full waveform for the paper's scenario.
  sim::Stimulus stim;
  stim.set(design, "restart", 0, 1);
  stim.set(design, "restart", 4, 0);
  stim.set(design, "xin", 0, 12);
  stim.set(design, "yin", 0, 8);
  sim::Simulator simulator(design, synthesis, stim);
  const auto run = simulator.run();
  std::cout << "\n"
            << sim::render_waveform(design, stim, run,
                                    {"restart", "xin", "yin", "result"}, 0,
                                    run.end_cycle + 2);
  std::cout << "\npaper comparison (y first, x one cycle later, correct gcd): "
            << (ok ? "MATCHES" : "MISMATCH") << "\n";
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}

// E6: regenerates the paper's Table IV -- maximum offset and sum of
// maximum offsets over all anchors, under full vs minimum anchor sets.
// The sum of maximum offsets is directly proportional to the register
// cost of shift-register control (paper SSVI).
#include <cstdlib>
#include <iostream>

#include "base/table.hpp"
#include "designs/designs.hpp"
#include "driver/stats.hpp"
#include "driver/synthesis.hpp"

using namespace relsched;

namespace {

struct PaperRow {
  const char* name;
  long long full_max, full_sum, min_max, min_sum;
};

// Table IV as published.
constexpr PaperRow kPaper[] = {
    {"traffic", 1, 1, 1, 1},     {"length", 2, 5, 1, 2},
    {"gcd", 4, 15, 2, 7},        {"frisc", 12, 112, 12, 107},
    {"daio_phase", 2, 10, 2, 9}, {"daio_rx", 3, 16, 1, 8},
    {"dct_a", 2, 24, 1, 16},     {"dct_b", 2, 19, 1, 16},
};

}  // namespace

int main() {
  std::cout << "E6 / Table IV: maximum offsets, full vs minimum anchor sets\n"
            << "(each cell: ours | paper)\n\n";
  TextTable table;
  table.set_header({"design", "full max", "full sum-of-max", "min max",
                    "min sum-of-max"});
  bool shape_holds = true;
  for (const PaperRow& row : kPaper) {
    seq::Design design = designs::build(row.name);
    const auto result = driver::synthesize(design);
    if (!result.ok()) {
      std::cerr << row.name << ": " << result.message << "\n";
      return EXIT_FAILURE;
    }
    const auto stats = driver::compute_stats(result);
    table.add_row({row.name,
                   cat(stats.max_offset_full, " | ", row.full_max),
                   cat(stats.sum_max_offset_full, " | ", row.full_sum),
                   cat(stats.max_offset_min, " | ", row.min_max),
                   cat(stats.sum_max_offset_min, " | ", row.min_sum)});
    // Shape claims from the paper: minimum anchor sets never increase
    // either metric, and reduce the sum on designs with redundancy.
    if (stats.max_offset_min > stats.max_offset_full) shape_holds = false;
    if (stats.sum_max_offset_min > stats.sum_max_offset_full) {
      shape_holds = false;
    }
  }
  table.print(std::cout);
  std::cout << "\nshape check (min <= full on both metrics, every design): "
            << (shape_holds ? "HOLDS" : "FAILS") << "\n";
  return shape_holds ? EXIT_SUCCESS : EXIT_FAILURE;
}

// E9 (ablation): control implementation cost across the benchmark
// suite -- counter-based vs shift-register-based control (paper SSVI,
// Fig 12) under full vs irredundant anchor sets. Quantifies the two
// claims of SSVI: shift registers trade flip-flops for comparator
// logic, and removing redundant anchors shrinks both the number of
// synchronizations and the register lengths.
#include <cstdlib>
#include <iostream>

#include "base/table.hpp"
#include "ctrl/control.hpp"
#include "designs/designs.hpp"
#include "driver/synthesis.hpp"

using namespace relsched;

namespace {

struct Cost {
  int ff = 0;
  int gates = 0;
  int syncs = 0;  // total enable terms
};

Cost total_cost(const driver::SynthesisResult& result, ctrl::ControlStyle style,
                anchors::AnchorMode mode) {
  Cost total;
  for (const auto& gs : result.graphs) {
    ctrl::ControlOptions opts;
    opts.style = style;
    opts.mode = mode;
    const auto unit = ctrl::generate_control(gs.constraint_graph, gs.analysis,
                                             gs.schedule.schedule, opts);
    total.ff += unit.cost.flipflops;
    total.gates += unit.cost.gates;
    for (const auto& e : unit.enables) {
      total.syncs += static_cast<int>(e.terms.size());
    }
  }
  return total;
}

}  // namespace

int main() {
  std::cout << "E9: control cost ablation (counter vs shift register, "
               "full vs irredundant anchors)\n\n";
  TextTable table;
  table.set_header({"design", "cnt+full FF/gates", "cnt+IR FF/gates",
                    "SR+full FF/gates", "SR+IR FF/gates", "syncs full",
                    "syncs IR"});
  bool shape_holds = true;
  for (const auto& d : designs::benchmark_suite()) {
    seq::Design design = designs::build(d.name);
    const auto result = driver::synthesize(design);
    if (!result.ok()) {
      std::cerr << d.name << ": " << result.message << "\n";
      return EXIT_FAILURE;
    }
    const Cost cnt_full =
        total_cost(result, ctrl::ControlStyle::kCounter, anchors::AnchorMode::kFull);
    const Cost cnt_ir = total_cost(result, ctrl::ControlStyle::kCounter,
                                   anchors::AnchorMode::kIrredundant);
    const Cost sr_full = total_cost(result, ctrl::ControlStyle::kShiftRegister,
                                    anchors::AnchorMode::kFull);
    const Cost sr_ir = total_cost(result, ctrl::ControlStyle::kShiftRegister,
                                  anchors::AnchorMode::kIrredundant);
    table.add_row({d.name, cat(cnt_full.ff, "/", cnt_full.gates),
                   cat(cnt_ir.ff, "/", cnt_ir.gates),
                   cat(sr_full.ff, "/", sr_full.gates),
                   cat(sr_ir.ff, "/", sr_ir.gates),
                   std::to_string(cnt_full.syncs),
                   std::to_string(cnt_ir.syncs)});
    // SSVI shape claims:
    //  - counters use fewer FFs but more gates than shift registers;
    //  - irredundant anchor sets never increase either style's cost.
    if (cnt_full.ff > sr_full.ff) shape_holds = false;
    if (cnt_full.gates < sr_full.gates) shape_holds = false;
    if (cnt_ir.syncs > cnt_full.syncs) shape_holds = false;
    if (sr_ir.ff > sr_full.ff) shape_holds = false;
    if (cnt_ir.gates > cnt_full.gates) shape_holds = false;
  }
  table.print(std::cout);
  std::cout << "\nshape check (counter: fewer FF / more gates; IR never "
               "costlier): "
            << (shape_holds ? "HOLDS" : "FAILS") << "\n";
  return shape_holds ? EXIT_SUCCESS : EXIT_FAILURE;
}

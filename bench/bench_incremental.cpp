// E12: cold vs warm resolve cost of the incremental synthesis engine.
//
// For every suite design, synthesize it, take its largest constraint
// graph, and compare:
//
//   cold - a fresh SynthesisSession::resolve() (full anchor analysis,
//          feasibility, well-posedness, scheduling from zero offsets);
//   warm - re-resolving the same session after a single constraint
//          edit (alternately loosening and restoring one max-constraint
//          bound), which recomputes only the dirty cone and warm-starts
//          the scheduler from the previous offsets.
//
// Emits a human-readable table plus BENCH_incremental.json, and exits
// nonzero when the warm path is less than 5x faster than cold on the
// largest design (the engine's headline guarantee).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "base/table.hpp"
#include "bench_json.hpp"
#include "designs/designs.hpp"
#include "driver/synthesis.hpp"
#include "engine/session.hpp"
#include "persist/wal.hpp"

using namespace relsched;

namespace {

using Clock = std::chrono::steady_clock;

double median_us(std::vector<double>& samples) {
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  return n == 0 ? 0.0
                : (n % 2 == 1 ? samples[n / 2]
                              : 0.5 * (samples[n / 2 - 1] + samples[n / 2]));
}

template <typename Fn>
double timed_us(Fn&& fn) {
  const auto t0 = Clock::now();
  fn();
  const auto t1 = Clock::now();
  return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

struct Row {
  std::string design;
  int vertices = 0;
  int edges = 0;
  int anchors = 0;
  double cold_us = 0;
  double warm_us = 0;
  double certified_warm_us = 0;
  double journaled_warm_us = 0;
  double certify_us = 0;
  long long wal_records = 0;
  long long wal_fsyncs = 0;
  int warm_resolves = 0;
  int last_affected = 0;
  // Warm-path phase breakdown, microseconds per warm resolve.
  double topo_us = 0;
  double spfa_us = 0;
  double anchor_us = 0;
  double resched_us = 0;

  [[nodiscard]] double speedup() const {
    return warm_us > 0 ? cold_us / warm_us : 0.0;
  }

  /// Certifier cost per warm resolve as a fraction of a cold resolve:
  /// the certified pipeline must never give back a meaningful slice of
  /// what the incremental engine saves.
  [[nodiscard]] double certify_overhead_pct() const {
    return cold_us > 0 ? 100.0 * (certified_warm_us - warm_us) / cold_us : 0.0;
  }

  /// Write-ahead-journal cost per warm resolve as a fraction of the
  /// warm resolve itself: buffered appends plus group-commit fsyncs
  /// must stay in the noise (the durability gate).
  [[nodiscard]] double journal_overhead_pct() const {
    return warm_us > 0 ? 100.0 * (journaled_warm_us - warm_us) / warm_us : 0.0;
  }
};

std::string fmt(double v, int precision = 1) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

}  // namespace

int main() {
  constexpr int kColdRepeats = 15;
  constexpr int kWarmRepeats = 60;

  std::vector<Row> rows;
  for (const designs::BenchmarkDesign& bench : designs::benchmark_suite()) {
    const std::string& name = bench.name;
    seq::Design design = designs::build(name);
    const auto result = driver::synthesize(design);
    if (!result.ok()) {
      std::cerr << name << ": " << result.message << "\n";
      return EXIT_FAILURE;
    }
    // The design's largest graph dominates its synthesis cost.
    const driver::GraphSynthesis* largest = nullptr;
    for (const auto& gs : result.graphs) {
      if (largest == nullptr || gs.constraint_graph.vertex_count() >
                                    largest->constraint_graph.vertex_count()) {
        largest = &gs;
      }
    }
    cg::ConstraintGraph graph = largest->constraint_graph;

    Row row;
    row.design = name;
    row.vertices = graph.vertex_count();
    row.edges = graph.edge_count();
    row.anchors = static_cast<int>(graph.anchors().size());

    // The edited constraint: an existing max constraint, or one added
    // with generous slack when the graph has none.
    engine::SynthesisSession session(std::move(graph), {});
    EdgeId edited = EdgeId::invalid();
    for (const cg::Edge& e : session.graph().edges()) {
      if (e.kind == cg::EdgeKind::kMaxConstraint) {
        edited = e.id;
        break;
      }
    }
    if (!edited.is_valid()) {
      // Add one along a forward edge whose endpoints share an anchor
      // set: the backward edge then satisfies containment (well-posed)
      // and generous slack keeps it feasible.
      for (const cg::Edge& e : session.graph().edges()) {
        if (!cg::is_forward(e.kind)) continue;
        if (largest->analysis.anchor_set(e.from) !=
            largest->analysis.anchor_set(e.to)) {
          continue;
        }
        const auto lp = graph::longest_paths_from(
            session.graph().project_forward(), e.from.value());
        edited = session.add_max_constraint(
            e.from, e.to, static_cast<int>(lp.dist[e.to.index()]) + 8);
        break;
      }
    }
    if (!edited.is_valid()) {
      std::cerr << name << ": no editable max constraint found\n";
      return EXIT_FAILURE;
    }
    if (!session.resolve().ok()) {
      std::cerr << name << ": session resolve failed: "
                << session.resolve().schedule.message << "\n";
      return EXIT_FAILURE;
    }
    const int bound = std::abs(session.graph().edge(edited).fixed_weight);

    // Cold baseline: a fresh session per repeat.
    std::vector<double> cold;
    for (int i = 0; i < kColdRepeats; ++i) {
      engine::SynthesisSession fresh(session.graph(), {});
      cold.push_back(timed_us([&] { fresh.resolve(); }));
      if (!fresh.products().ok()) return EXIT_FAILURE;
    }
    row.cold_us = median_us(cold);

    // Warm: alternately loosen and restore the bound, one edit per
    // resolve, so every resolve takes the incremental path.
    std::vector<double> warm;
    for (int i = 0; i < kWarmRepeats; ++i) {
      session.set_constraint_bound(edited, i % 2 == 0 ? bound + 1 : bound);
      warm.push_back(timed_us([&] { session.resolve(); }));
      if (!session.products().ok()) return EXIT_FAILURE;
    }
    row.warm_us = median_us(warm);

    // Certified warm: the same edit loop with the independent certifier
    // validating every warm product (schedule + analysis against the
    // graph). Clean runs must not trip it, and its cost is reported as
    // a fraction of a cold resolve.
    engine::SessionOptions certified_opts;
    certified_opts.certify = true;
    engine::SynthesisSession certified(session.graph(), certified_opts);
    if (!certified.resolve().ok()) return EXIT_FAILURE;
    std::vector<double> certified_warm;
    for (int i = 0; i < kWarmRepeats; ++i) {
      certified.set_constraint_bound(edited, i % 2 == 0 ? bound + 1 : bound);
      certified_warm.push_back(timed_us([&] { certified.resolve(); }));
      if (!certified.products().ok()) return EXIT_FAILURE;
    }
    row.certified_warm_us = median_us(certified_warm);
    const engine::SessionStats certified_stats = certified.stats();
    if (certified_stats.certificate_failures != 0) {
      std::cerr << name << ": certifier tripped on a clean warm run\n";
      return EXIT_FAILURE;
    }
    row.certify_us =
        certified_stats.certify_us /
        std::max<long long>(1, certified_stats.certified_resolves);

    // Journaled warm: the same edit loop with a write-ahead log
    // attached under the production group-commit sync policy. Every
    // edit is appended and every resolve writes a durable commit
    // marker; the gate below keeps that within 10% of the bare warm
    // path.
    engine::SynthesisSession journaled(session.graph(), {});
    if (!journaled.resolve().ok()) return EXIT_FAILURE;
    const std::string wal_file = "BENCH_incremental_wal.bin";
    std::remove(wal_file.c_str());
    const persist::WalOptions wal_opts;  // group commit, 50ms interval
    if (const persist::Error e = journaled.attach_wal(wal_file, wal_opts);
        !e.ok()) {
      std::cerr << name << ": attach_wal: " << e.render() << "\n";
      return EXIT_FAILURE;
    }
    std::vector<double> journaled_warm;
    for (int i = 0; i < kWarmRepeats; ++i) {
      journaled.set_constraint_bound(edited, i % 2 == 0 ? bound + 1 : bound);
      journaled_warm.push_back(timed_us([&] { journaled.resolve(); }));
      if (!journaled.products().ok()) return EXIT_FAILURE;
    }
    row.journaled_warm_us = median_us(journaled_warm);
    const engine::SessionStats journaled_stats = journaled.stats();
    row.wal_records = journaled_stats.wal_records;
    row.wal_fsyncs = journaled_stats.wal_fsyncs;
    std::remove(wal_file.c_str());

    const engine::SessionStats stats = session.stats();
    row.warm_resolves = stats.warm_resolves;
    row.last_affected = stats.last_affected_vertices;
    // The session accumulates per-phase wall time across warm resolves;
    // report the per-resolve average next to the end-to-end median.
    const double resolves = std::max(1, stats.warm_resolves);
    row.topo_us = stats.warm_topo_us / resolves;
    row.spfa_us = stats.warm_spfa_us / resolves;
    row.anchor_us = stats.warm_anchor_us / resolves;
    row.resched_us = stats.warm_resched_us / resolves;
    if (row.warm_resolves < kWarmRepeats) {
      std::cerr << name << ": only " << row.warm_resolves << "/" << kWarmRepeats
                << " resolves took the warm path\n";
      return EXIT_FAILURE;
    }
    rows.push_back(std::move(row));
  }

  std::cout << "E12: incremental engine, cold vs warm resolve after one "
               "constraint edit\n\n";
  TextTable table;
  table.set_header({"design", "|V|", "|E|", "|A|", "cold (us)", "warm (us)",
                    "cert warm (us)", "wal warm (us)", "speedup",
                    "cert ovh (%cold)", "wal ovh (%warm)", "dirty cone"});
  for (const Row& row : rows) {
    table.add_row({row.design, cat(row.vertices), cat(row.edges),
                   cat(row.anchors), fmt(row.cold_us), fmt(row.warm_us),
                   fmt(row.certified_warm_us), fmt(row.journaled_warm_us),
                   cat(fmt(row.speedup()), "x"), fmt(row.certify_overhead_pct()),
                   fmt(row.journal_overhead_pct()),
                   cat(row.last_affected, "/", row.vertices)});
  }
  table.print(std::cout);

  std::cout << "\nwarm-path phase breakdown (us per warm resolve)\n\n";
  TextTable phases;
  phases.set_header(
      {"design", "topo patch", "SPFA repair", "anchor patch", "reschedule"});
  for (const Row& row : rows) {
    phases.add_row({row.design, fmt(row.topo_us, 2), fmt(row.spfa_us, 2),
                    fmt(row.anchor_us, 2), fmt(row.resched_us, 2)});
  }
  phases.print(std::cout);

  const Row* largest_row = nullptr;
  for (const Row& row : rows) {
    if (largest_row == nullptr || row.vertices > largest_row->vertices) {
      largest_row = &row;
    }
  }

  benchio::Json designs_json = benchio::Json::array();
  for (const Row& row : rows) {
    designs_json.element(benchio::Json::object()
                             .field("design", row.design)
                             .field("vertices", row.vertices)
                             .field("edges", row.edges)
                             .field("anchors", row.anchors)
                             .field("cold_us", row.cold_us)
                             .field("warm_us", row.warm_us)
                             .field("certified_warm_us", row.certified_warm_us)
                             .field("journaled_warm_us", row.journaled_warm_us)
                             .field("journal_overhead_pct_of_warm",
                                    row.journal_overhead_pct())
                             .field("wal_records", row.wal_records)
                             .field("wal_fsyncs", row.wal_fsyncs)
                             .field("certify_us_per_resolve", row.certify_us)
                             .field("certify_overhead_pct_of_cold",
                                    row.certify_overhead_pct())
                             .field("speedup", row.speedup())
                             .field("dirty_cone_vertices", row.last_affected)
                             .field("warm_topo_us", row.topo_us)
                             .field("warm_spfa_us", row.spfa_us)
                             .field("warm_anchor_us", row.anchor_us)
                             .field("warm_resched_us", row.resched_us));
  }
  benchio::Json::object()
      .field("bench", "incremental")
      .field("cold_repeats", kColdRepeats)
      .field("warm_repeats", kWarmRepeats)
      .field("largest_design", largest_row->design)
      .field("largest_speedup", largest_row->speedup())
      .field("largest_certify_overhead_pct",
             largest_row->certify_overhead_pct())
      .field("largest_journal_overhead_pct",
             largest_row->journal_overhead_pct())
      .field("designs", designs_json)
      .write("BENCH_incremental.json");
  std::cout << "\nwrote BENCH_incremental.json\n";

  const bool speedup_holds = largest_row->speedup() >= 5.0;
  const bool overhead_holds = largest_row->certify_overhead_pct() <= 15.0;
  // Durability gate: journaling must cost <= 10% of a warm resolve.
  // The 2us absolute floor keeps sub-microsecond timer noise from
  // failing the gate on designs whose warm resolves are themselves only
  // a few microseconds.
  const bool journal_holds =
      largest_row->journaled_warm_us <= 1.10 * largest_row->warm_us + 2.0;
  std::cout << "\nlargest design (" << largest_row->design
            << "): " << fmt(largest_row->speedup())
            << "x warm speedup (required: >= 5x): "
            << (speedup_holds ? "HOLDS" : "FAILS") << "\n";
  std::cout << "largest design certifier overhead: "
            << fmt(largest_row->certify_overhead_pct())
            << "% of a cold resolve (required: <= 15%): "
            << (overhead_holds ? "HOLDS" : "FAILS") << "\n";
  std::cout << "largest design journal overhead: "
            << fmt(largest_row->journal_overhead_pct())
            << "% of a warm resolve (required: <= 10%): "
            << (journal_holds ? "HOLDS" : "FAILS") << "\n";
  return speedup_holds && overhead_holds && journal_holds ? EXIT_SUCCESS
                                                          : EXIT_FAILURE;
}

// E10 (ablation): iteration counts of iterative incremental scheduling
// versus the theoretical bounds, and its runtime versus the naive
// per-anchor decomposition the paper rejects (SSIV: "Each subgraph could
// then be scheduled independently. We present instead a more efficient
// algorithm").
//
// Theorem 8 bounds the iterations by L+1 <= |Eb|+1; in practice almost
// all graphs converge in far fewer rounds, which is the property that
// makes the algorithm fast.
#include <benchmark/benchmark.h>

#include <iostream>
#include <map>
#include <random>

#include "anchors/anchor_analysis.hpp"
#include "cg/constraint_graph.hpp"
#include "graph/algorithms.hpp"
#include "sched/scheduler.hpp"
#include "wellposed/wellposed.hpp"

using namespace relsched;

namespace {

cg::ConstraintGraph random_graph(std::mt19937& rng, int n, int max_constraints) {
  cg::ConstraintGraph g("random");
  std::uniform_int_distribution<int> delay(0, 4);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::vector<VertexId> vs;
  for (int i = 0; i < n; ++i) {
    cg::Delay d = cg::Delay::bounded(delay(rng));
    if (i > 0 && i + 1 < n && unit(rng) < 0.2) d = cg::Delay::unbounded();
    vs.push_back(g.add_vertex("v" + std::to_string(i), d));
  }
  for (int i = 1; i < n; ++i) {
    std::uniform_int_distribution<int> pred(0, i - 1);
    g.add_sequencing_edge(vs[static_cast<std::size_t>(pred(rng))],
                          vs[static_cast<std::size_t>(i)]);
  }
  for (int i = 0; i + 1 < n; ++i) {
    bool has_out = false;
    for (EdgeId e : g.out_edges(vs[static_cast<std::size_t>(i)])) {
      if (cg::is_forward(g.edge(e).kind)) has_out = true;
    }
    if (!has_out) {
      g.add_sequencing_edge(vs[static_cast<std::size_t>(i)],
                            vs[static_cast<std::size_t>(n - 1)]);
    }
  }
  // Add max constraints that are well-posed by construction: the
  // constrained (later) vertex's anchor set must be contained in the
  // reference vertex's (Theorem 2 for the backward edge), and enough
  // slack over the longest path keeps them feasible.
  const auto sets = anchors::find_anchor_sets(g);
  int added = 0;
  for (int attempt = 0; attempt < max_constraints * 16 && added < max_constraints;
       ++attempt) {
    std::uniform_int_distribution<int> to_dist(1, n - 1);
    const int to = to_dist(rng);
    std::uniform_int_distribution<int> from_dist(0, to - 1);
    const int from = from_dist(rng);
    if (!sets[static_cast<std::size_t>(to)].is_subset_of(
            sets[static_cast<std::size_t>(from)])) {
      continue;
    }
    // Re-project after each accepted constraint: earlier backward edges
    // change the longest paths the slack must cover.
    const auto full = g.project_full();
    const auto dist = graph::longest_paths_from(full, from);
    const graph::Weight d = dist.dist[static_cast<std::size_t>(to)];
    if (d == graph::kNegInf) continue;
    std::uniform_int_distribution<int> slack(0, 3);
    g.add_max_constraint(vs[static_cast<std::size_t>(from)],
                         vs[static_cast<std::size_t>(to)],
                         static_cast<int>(std::max<graph::Weight>(d, 0)) +
                             slack(rng));
    ++added;
  }
  return g;
}

/// Iteration-count distribution across a corpus of well-posed graphs.
void report_iteration_histogram() {
  std::mt19937 rng(2024);
  std::map<int, int> histogram;
  int over_bound = 0, total = 0, max_backward = 0;
  for (int trial = 0; trial < 400; ++trial) {
    auto g = random_graph(rng, 24, 6);
    if (!g.validate().empty()) continue;
    if (wellposed::make_wellposed(g).status != wellposed::Status::kWellPosed) {
      continue;
    }
    const auto result = sched::schedule(g);
    if (!result.ok()) continue;
    ++histogram[result.iterations];
    ++total;
    max_backward = std::max(max_backward, g.backward_edge_count());
    if (result.iterations > g.backward_edge_count() + 1) ++over_bound;
  }
  std::cout << "\nE10: iteration counts over " << total
            << " random well-posed graphs (|Eb| up to " << max_backward
            << ", bound |Eb|+1):\n";
  for (const auto& [iters, count] : histogram) {
    std::cout << "  " << iters << " iteration(s): " << count << " graphs\n";
  }
  std::cout << "  graphs exceeding the Theorem 8 bound: " << over_bound
            << " (must be 0)\n\n";
}

void BM_IterativeScheduling(benchmark::State& state) {
  std::mt19937 rng(99);
  auto g = random_graph(rng, static_cast<int>(state.range(0)), 8);
  if (wellposed::make_wellposed(g).status != wellposed::Status::kWellPosed) {
    state.SkipWithError("not well-posed");
    return;
  }
  const auto analysis = anchors::AnchorAnalysis::compute(g);
  sched::ScheduleOptions opts;
  opts.prechecks = false;
  for (auto _ : state) {
    auto result = sched::schedule(g, analysis, opts);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_IterativeScheduling)->Range(64, 1024);

void BM_DecomposedScheduling(benchmark::State& state) {
  // The rejected alternative: one longest-path solve per anchor over its
  // cone (AnchorAnalysis::compute carries exactly that work, so time the
  // cone computation plus assembling the schedule).
  std::mt19937 rng(99);
  auto g = random_graph(rng, static_cast<int>(state.range(0)), 8);
  if (wellposed::make_wellposed(g).status != wellposed::Status::kWellPosed) {
    state.SkipWithError("not well-posed");
    return;
  }
  for (auto _ : state) {
    const auto analysis = anchors::AnchorAnalysis::compute(g);
    auto schedule = sched::decomposed_schedule(g, analysis);
    benchmark::DoNotOptimize(schedule);
  }
}
BENCHMARK(BM_DecomposedScheduling)->Range(64, 1024);

}  // namespace

int main(int argc, char** argv) {
  report_iteration_histogram();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Ablation: makeWellposed serialization statistics over a random
// corpus. Quantifies §IV-C/V-A behaviour: how often ill-posed
// specifications occur, how many serializing edges a repair needs, how
// much the pruning pass saves, and the latency cost of serialization
// (increase in zero-delay schedule length).
#include <benchmark/benchmark.h>

#include <iostream>
#include <map>
#include <random>

#include "sched/scheduler.hpp"
#include "wellposed/wellposed.hpp"

using namespace relsched;

namespace {

cg::ConstraintGraph corpus_graph(std::mt19937& rng, int n) {
  cg::ConstraintGraph g("corpus");
  std::uniform_int_distribution<int> delay(0, 4);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::vector<VertexId> vs;
  for (int i = 0; i < n; ++i) {
    cg::Delay d = cg::Delay::bounded(delay(rng));
    if (i > 0 && i + 1 < n && unit(rng) < 0.3) d = cg::Delay::unbounded();
    vs.push_back(g.add_vertex("v" + std::to_string(i), d));
  }
  for (int i = 1; i < n; ++i) {
    std::uniform_int_distribution<int> pred(0, i - 1);
    g.add_sequencing_edge(vs[static_cast<std::size_t>(pred(rng))],
                          vs[static_cast<std::size_t>(i)]);
  }
  for (int i = 0; i + 1 < n; ++i) {
    bool has_out = false;
    for (EdgeId e : g.out_edges(vs[static_cast<std::size_t>(i)])) {
      if (cg::is_forward(g.edge(e).kind)) has_out = true;
    }
    if (!has_out) {
      g.add_sequencing_edge(vs[static_cast<std::size_t>(i)],
                            vs[static_cast<std::size_t>(n - 1)]);
    }
  }
  // Slack max constraints between random comparable pairs (feasible,
  // often ill-posed).
  for (int k = 0; k < 3; ++k) {
    std::uniform_int_distribution<int> to_dist(1, n - 1);
    const int to = to_dist(rng);
    std::uniform_int_distribution<int> from_dist(0, to - 1);
    const int from = from_dist(rng);
    const auto dist = graph::longest_paths_from(g.project_full(), from);
    const graph::Weight d = dist.dist[static_cast<std::size_t>(to)];
    if (d == graph::kNegInf || dist.positive_cycle) continue;
    g.add_max_constraint(vs[static_cast<std::size_t>(from)],
                         vs[static_cast<std::size_t>(to)],
                         static_cast<int>(std::max<graph::Weight>(d, 0)) + 2);
  }
  return g;
}

void report_repair_statistics() {
  std::mt19937 rng(77);
  int total = 0, already = 0, repaired = 0, unrepairable = 0;
  std::map<std::size_t, int> edges_added;
  graph::Weight latency_cost_sum = 0;
  int latency_samples = 0;

  for (int trial = 0; trial < 500; ++trial) {
    auto g = corpus_graph(rng, 18);
    if (!g.validate().empty() || !wellposed::is_feasible(g)) continue;
    ++total;
    const auto before = wellposed::check(g);
    if (before.status == wellposed::Status::kWellPosed) {
      ++already;
      continue;
    }
    // Zero-profile schedule length before serialization (longest path
    // to the sink in G0).
    const auto len_before =
        graph::longest_paths_from(g.project_full(), g.source().value())
            .dist[g.sink().index()];
    const auto fix = wellposed::make_wellposed(g);
    if (fix.status != wellposed::Status::kWellPosed) {
      ++unrepairable;
      continue;
    }
    ++repaired;
    ++edges_added[fix.added_edges.size()];
    const auto len_after =
        graph::longest_paths_from(g.project_full(), g.source().value())
            .dist[g.sink().index()];
    latency_cost_sum += len_after - len_before;
    ++latency_samples;
  }

  std::cout << "makeWellposed repair statistics over " << total
            << " feasible random graphs:\n"
            << "  already well-posed: " << already << "\n"
            << "  repaired by serialization: " << repaired << "\n"
            << "  unrepairable (unbounded-length cycles): " << unrepairable
            << "\n  serializing edges per repair:\n";
  for (const auto& [edges, count] : edges_added) {
    std::cout << "    " << edges << " edge(s): " << count << " graphs\n";
  }
  if (latency_samples > 0) {
    std::cout << "  mean zero-profile latency cost of serialization: "
              << static_cast<double>(latency_cost_sum) / latency_samples
              << " cycles\n";
  }
  std::cout << "\n";
}

void BM_CheckWellposed(benchmark::State& state) {
  std::mt19937 rng(5);
  const auto g = corpus_graph(rng, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto verdict = wellposed::check(g);
    benchmark::DoNotOptimize(verdict);
  }
}
BENCHMARK(BM_CheckWellposed)->Range(64, 1024);

void BM_MakeWellposedRepair(benchmark::State& state) {
  std::mt19937 rng(5);
  for (auto _ : state) {
    state.PauseTiming();
    auto g = corpus_graph(rng, static_cast<int>(state.range(0)));
    state.ResumeTiming();
    auto fix = wellposed::make_wellposed(g);
    benchmark::DoNotOptimize(fix);
  }
}
BENCHMARK(BM_MakeWellposedRepair)->Range(64, 512);

}  // namespace

int main(int argc, char** argv) {
  report_repair_statistics();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

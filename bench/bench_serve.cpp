// Chaos load generator for relsched_serve: the robustness gate.
//
// The harness fork+execs the server (re-exec of this binary with
// --serve-child, so no path coupling), opens N concurrent sessions of
// distinct generated designs, and drives a deterministic per-session
// edit script from a pool of client threads while, in parallel:
//
//   - the server runs with RELSCHED_CHECKPOINT_SYNC=always and (full
//     mode) RELSCHED_FAULTFS injecting EINTR/EAGAIN/short-write/
//     ENOSPC/fsync/rename faults into every persist write path;
//   - a chaos thread SIGKILLs the server at random points and restarts
//     it against the same state directory;
//   - the live-session cap is set below N, so LRU eviction and
//     transparent snapshot restore churn continuously under load.
//
// Every edit/resolve reply carries a digest of the products (status
// byte + serialized relative schedule). A serial oracle -- one local
// SynthesisSession per design, same edit script, no server, no faults
// -- computes the same digests; any mismatch at any point is
// cross-session corruption or a broken recovery and fails the run.
// Clients resynchronize after a kill via the revision arithmetic the
// protocol guarantees (applied = revision - base_revision), which is
// also what makes a lost ack harmless: the server's revision, not the
// client's ack count, decides what is already applied.
//
// Hard gates (exit nonzero):
//   - every digest matches the serial oracle (bit-identity);
//   - every session completes its full script despite kills;
//   - zero quarantined sessions (injected I/O faults must be absorbed
//     by retry/heal, never misread as poison);
//   - zero leaked temp files in the state dir after shutdown;
//   - zero leaked sessions (known == opened before shutdown).
// Throughput and latency percentiles are recorded in BENCH_serve.json
// (advisory, not gated: chaos timing is machine-dependent).
//
// Modes: default is the full gate (64 sessions); --check-only shrinks
// to a CI/sanitizer-friendly size (16 sessions, 1 kill).
#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "cg/graph_io.hpp"
#include "designs/generator.hpp"
#include "engine/session.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

extern char** environ;

namespace {

using relsched::serve::Json;

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct Config {
  int sessions = 64;
  int edits_per_session = 36;
  int clients = 16;
  int kills = 3;
  bool check_only = false;
  std::string faults = "7,150,80,120,40";  // seed,write,fsync,rename,enospc
  std::string out_json = "BENCH_serve.json";
  std::string socket_path;
  std::string state_dir;
};

/// One scripted edit, drawn deterministically from (session, step).
struct ScriptEdit {
  enum class Kind { kAddMin, kAddMax, kSetDelay };
  Kind kind = Kind::kAddMin;
  int a = 0;
  int b = 0;
  long long cycles = 0;
};

ScriptEdit script_edit(int session, int step, int vertices) {
  ScriptEdit e;
  const std::uint64_t r =
      mix64((static_cast<std::uint64_t>(session) << 20) ^
            static_cast<std::uint64_t>(step) ^ 0xc0ffee);
  // Interior vertices only: the source/sink keep their roles.
  const int span = vertices - 2;
  int from = 1 + static_cast<int>((r >> 8) % static_cast<std::uint64_t>(span));
  int to = 1 + static_cast<int>((r >> 24) % static_cast<std::uint64_t>(span));
  if (from == to) to = from == span ? 1 : from + 1;
  if (from > to) std::swap(from, to);
  switch (r % 5) {
    case 0:
    case 1:
    case 2:
      e.kind = ScriptEdit::Kind::kAddMin;
      e.a = from;
      e.b = to;
      e.cycles = 1 + static_cast<long long>((r >> 40) % 6);
      break;
    case 3:
      // Generous bound: usually feasible; when not, infeasible is a
      // valid, digest-covered outcome the oracle reproduces too.
      e.kind = ScriptEdit::Kind::kAddMax;
      e.a = from;
      e.b = to;
      e.cycles = 4000 + static_cast<long long>((r >> 40) % 512);
      break;
    default:
      e.kind = ScriptEdit::Kind::kSetDelay;
      e.a = from;
      e.cycles = static_cast<long long>((r >> 40) % 7);  // 0..6, bounded
      break;
  }
  return e;
}

relsched::cg::ConstraintGraph make_design(int session, bool small) {
  relsched::designs::GeneratorParams params;
  params.seed = 1000 + static_cast<std::uint64_t>(session);
  params.vertices = small ? 80 : 120 + (session % 5) * 16;
  params.width = 3 + session % 3;
  params.anchor_density = 250;
  params.max_anchors = 6;
  params.min_density = 1800;
  params.max_density = 900;
  params.max_delay = 6;
  params.name = "serve";
  return relsched::designs::generate(params);
}

/// Serial oracle: digest after each script step, computed on a local
/// session with no server, no faults, no concurrency.
std::vector<std::string> oracle_digests(const relsched::cg::ConstraintGraph& g,
                                        int session, int steps) {
  relsched::engine::SessionOptions options;
  options.certify = false;
  options.threads = 1;
  relsched::engine::SynthesisSession s(g, options);
  const int vertices = g.vertex_count();
  std::vector<std::string> digests;
  digests.reserve(static_cast<std::size_t>(steps));
  for (int j = 0; j < steps; ++j) {
    const ScriptEdit e = script_edit(session, j, vertices);
    switch (e.kind) {
      case ScriptEdit::Kind::kAddMin:
        s.add_min_constraint(relsched::VertexId(e.a), relsched::VertexId(e.b),
                             static_cast<int>(e.cycles));
        break;
      case ScriptEdit::Kind::kAddMax:
        s.add_max_constraint(relsched::VertexId(e.a), relsched::VertexId(e.b),
                             static_cast<int>(e.cycles));
        break;
      case ScriptEdit::Kind::kSetDelay:
        s.set_delay(relsched::VertexId(e.a),
                    relsched::cg::Delay::bounded(static_cast<int>(e.cycles)));
        break;
    }
    const relsched::engine::Products& products = s.resolve();
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(
                      relsched::serve::products_digest(products)));
    digests.emplace_back(buf);
  }
  return digests;
}

Json edit_request(const std::string& sid, const ScriptEdit& e) {
  Json edit = Json::object();
  switch (e.kind) {
    case ScriptEdit::Kind::kAddMin:
    case ScriptEdit::Kind::kAddMax:
      edit.set("kind", Json::string(e.kind == ScriptEdit::Kind::kAddMin
                                        ? "add_min"
                                        : "add_max"));
      edit.set("from", Json::number(static_cast<long long>(e.a)));
      edit.set("to", Json::number(static_cast<long long>(e.b)));
      edit.set("cycles", Json::number(e.cycles));
      break;
    case ScriptEdit::Kind::kSetDelay:
      edit.set("kind", Json::string("set_delay"));
      edit.set("vertex", Json::number(static_cast<long long>(e.a)));
      edit.set("cycles", Json::number(e.cycles));
      break;
  }
  Json request = Json::object();
  request.set("op", Json::string("edit"));
  request.set("session", Json::string(sid));
  Json edits = Json::array();
  edits.push(std::move(edit));
  request.set("edits", std::move(edits));
  return request;
}

// ---- Server child management ----------------------------------------------

pid_t spawn_server(const Config& config, const std::string& self_exe) {
  std::vector<std::string> args = {
      self_exe,       "--serve-child",  "--socket",
      config.socket_path, "--state-dir", config.state_dir,
      "--max-live",   std::to_string(std::max(2, config.sessions / 2)),
      "--max-pending", "8",
      "--max-pending-total", "256",
      "--deadline-ms", "30000",
  };
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  // The durability and fault knobs apply ONLY to the server child; the
  // oracle and the harness itself must run clean.
  std::vector<std::string> env_store;
  std::vector<char*> envp;
  for (char** e = environ; *e != nullptr; ++e) {
    if (std::strncmp(*e, "RELSCHED_CHECKPOINT_SYNC=", 25) == 0) continue;
    if (std::strncmp(*e, "RELSCHED_FAULTFS=", 17) == 0) continue;
    envp.push_back(*e);
  }
  env_store.push_back("RELSCHED_CHECKPOINT_SYNC=always");
  if (!config.faults.empty() && config.faults != "off") {
    env_store.push_back("RELSCHED_FAULTFS=" + config.faults);
  }
  for (std::string& e : env_store) envp.push_back(e.data());
  envp.push_back(nullptr);

  pid_t pid = -1;
  if (::posix_spawn(&pid, self_exe.c_str(), nullptr, nullptr, argv.data(),
                    envp.data()) != 0) {
    return -1;
  }
  return pid;
}

struct Harness {
  Config config;
  std::string self_exe;
  std::mutex server_mutex;
  pid_t server_pid = -1;
  std::atomic<bool> done{false};
  std::atomic<long long> digest_mismatches{0};
  std::atomic<long long> requests_ok{0};
  std::atomic<long long> reconnects{0};
  std::atomic<long long> retry_after_seen{0};
  std::atomic<long long> failures{0};
  std::mutex latency_mutex;
  std::vector<double> latencies_us;

  void fail(const std::string& why) {
    failures.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(stderr, "bench_serve: FAIL: %s\n", why.c_str());
  }

  void restart_server_locked() {
    server_pid = spawn_server(config, self_exe);
  }

  /// SIGKILL + restart, serialized so the chaos thread and the final
  /// shutdown cannot race on the pid.
  void kill_and_restart() {
    std::lock_guard<std::mutex> lock(server_mutex);
    if (server_pid > 0) {
      ::kill(server_pid, SIGKILL);
      int status = 0;
      ::waitpid(server_pid, &status, 0);
    }
    restart_server_locked();
  }

  void record_latency(double us) {
    std::lock_guard<std::mutex> lock(latency_mutex);
    latencies_us.push_back(us);
  }
};

/// Drives one session's full script, surviving server kills: on any
/// transport failure, reconnect, re-open, and resume from the applied
/// count the server's revision arithmetic reports.
void drive_session(Harness& h, int session, const std::string& design_text,
                   const std::vector<std::string>& oracle) {
  using Clock = std::chrono::steady_clock;
  const int steps = h.config.edits_per_session;
  const int vertices = [&] {
    relsched::cg::ParseResult p = relsched::cg::from_text(design_text);
    return p.ok() ? p.graph->vertex_count() : 0;
  }();

  relsched::serve::Client client;
  std::string sid;
  long long base_revision = 0;
  long long applied = 0;

  auto reopen = [&]() -> bool {
    std::string error;
    if (!client.connected() &&
        !client.connect(h.config.socket_path, std::chrono::seconds(20),
                        &error)) {
      h.fail("session " + std::to_string(session) + ": reconnect: " + error);
      return false;
    }
    Json request = Json::object();
    request.set("op", Json::string("open"));
    request.set("design_text", Json::string(design_text));
    Json reply;
    if (!client.call_with_backoff(request, &reply, std::chrono::seconds(30),
                                  &error)) {
      client.close();
      return false;  // transport died again; the caller's loop retries
    }
    const Json* ok = reply.get("ok");
    if (ok == nullptr || !ok->as_bool()) {
      // io / shutting_down opens are retryable (fault injection or a
      // restart race); anything else is a real protocol failure.
      const Json* code = reply.get("code");
      const std::string code_s = code != nullptr ? code->as_string() : "";
      if (code_s == relsched::serve::kCodeIo ||
          code_s == relsched::serve::kCodeShuttingDown) {
        return false;  // the caller's loop retries with backoff
      }
      h.fail("session " + std::to_string(session) +
             ": open rejected: " + reply.render());
      return false;
    }
    sid = reply.get("session")->as_string();
    base_revision = reply.get("revision") != nullptr &&
                            reply.get("base_revision") != nullptr
                        ? reply.get("base_revision")->as_int()
                        : 0;
    applied = reply.get("revision")->as_int() - base_revision;
    if (applied < 0 || applied > steps) {
      h.fail("session " + std::to_string(session) +
             ": impossible applied count " + std::to_string(applied));
      return false;
    }
    return true;
  };

  int consecutive_failures = 0;
  while (!h.done.load(std::memory_order_relaxed)) {
    if (consecutive_failures > 200) {
      h.fail("session " + std::to_string(session) +
             ": no progress after 200 attempts");
      return;
    }
    if (sid.empty() || !client.connected()) {
      if (!reopen()) {
        ++consecutive_failures;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        continue;
      }
    }
    if (applied >= steps) break;

    const ScriptEdit e = script_edit(session, static_cast<int>(applied),
                                     vertices);
    Json reply;
    std::string error;
    const auto t0 = Clock::now();
    if (!client.call_with_backoff(edit_request(sid, e), &reply,
                                  std::chrono::seconds(30), &error)) {
      // Server died (kill window) or connection dropped: resync.
      h.reconnects.fetch_add(1, std::memory_order_relaxed);
      client.close();
      sid.clear();
      ++consecutive_failures;
      continue;
    }
    const double us = std::chrono::duration<double, std::micro>(
                          Clock::now() - t0)
                          .count();
    const Json* ok = reply.get("ok");
    if (ok == nullptr || !ok->as_bool()) {
      const Json* code = reply.get("code");
      const std::string code_s =
          code != nullptr ? code->as_string() : "<none>";
      if (code_s == relsched::serve::kCodeRetryAfter) {
        h.retry_after_seen.fetch_add(1, std::memory_order_relaxed);
      } else if (code_s == relsched::serve::kCodeShuttingDown ||
                 code_s == relsched::serve::kCodeUnknownSession) {
        // Raced a restart; re-open resyncs.
        sid.clear();
      } else {
        h.fail("session " + std::to_string(session) + " step " +
               std::to_string(applied) + ": " + reply.render());
        return;
      }
      ++consecutive_failures;
      continue;
    }
    consecutive_failures = 0;
    h.requests_ok.fetch_add(1, std::memory_order_relaxed);
    h.record_latency(us);

    // The server's revision decides how many edits are now applied --
    // this self-heals lost acks across SIGKILLs.
    const long long revision = reply.get("revision")->as_int();
    const long long now_applied = revision - base_revision;
    if (now_applied != applied + 1) {
      h.fail("session " + std::to_string(session) + ": revision " +
             std::to_string(revision) + " implies " +
             std::to_string(now_applied) + " applied, expected " +
             std::to_string(applied + 1));
      return;
    }
    applied = now_applied;
    const std::string& digest = reply.get("digest")->as_string();
    const std::string& expected =
        oracle[static_cast<std::size_t>(applied - 1)];
    if (digest != expected) {
      h.digest_mismatches.fetch_add(1, std::memory_order_relaxed);
      h.fail("session " + std::to_string(session) + " step " +
             std::to_string(applied - 1) + ": digest " + digest +
             " != oracle " + expected);
      return;
    }

    // Periodically force the eviction/restore path under load, and
    // cross-check an explicit resolve against the same oracle digest.
    if (applied % 9 == 4) {
      Json evict = Json::object();
      evict.set("op", Json::string("evict"));
      evict.set("session", Json::string(sid));
      Json ignored;
      (void)client.call_with_backoff(evict, &ignored, std::chrono::seconds(5),
                                     &error);
    }
    if (applied % 7 == 3) {
      Json resolve = Json::object();
      resolve.set("op", Json::string("resolve"));
      resolve.set("session", Json::string(sid));
      Json rreply;
      if (client.call_with_backoff(resolve, &rreply, std::chrono::seconds(30),
                                   &error)) {
        const Json* rok = rreply.get("ok");
        if (rok != nullptr && rok->as_bool() &&
            rreply.get("digest")->as_string() != expected) {
          h.digest_mismatches.fetch_add(1, std::memory_order_relaxed);
          h.fail("session " + std::to_string(session) +
                 ": resolve digest diverged after evict/restore");
          return;
        }
      } else {
        client.close();
        sid.clear();
      }
    }
  }
}

int run_serve_child(int argc, char** argv);

double percentile(std::vector<double>& values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1));
  return values[idx];
}

int run_harness(const Config& config_in, const std::string& self_exe) {
  Config config = config_in;
  char dir_template[] = "/tmp/relsched_serve_bench_XXXXXX";
  if (::mkdtemp(dir_template) == nullptr) {
    std::fprintf(stderr, "bench_serve: mkdtemp failed\n");
    return 1;
  }
  const std::string root = dir_template;
  config.socket_path = root + "/sock";
  config.state_dir = root + "/state";

  std::fprintf(stderr,
               "bench_serve: %d sessions x %d edits, %d clients, %d kills, "
               "faults=%s\n",
               config.sessions, config.edits_per_session, config.clients,
               config.kills, config.faults.c_str());

  // Designs + oracle digests, all serial and fault-free.
  std::vector<std::string> designs;
  std::vector<std::vector<std::string>> oracles;
  designs.reserve(static_cast<std::size_t>(config.sessions));
  for (int i = 0; i < config.sessions; ++i) {
    const relsched::cg::ConstraintGraph g = make_design(i, config.check_only);
    designs.push_back(relsched::cg::to_text(g));
    oracles.push_back(oracle_digests(g, i, config.edits_per_session));
  }
  std::fprintf(stderr, "bench_serve: oracle digests computed\n");

  Harness h;
  h.config = config;
  h.self_exe = self_exe;
  {
    std::lock_guard<std::mutex> lock(h.server_mutex);
    h.restart_server_locked();
    if (h.server_pid <= 0) {
      std::fprintf(stderr, "bench_serve: failed to spawn server\n");
      return 1;
    }
  }

  const auto wall_start = std::chrono::steady_clock::now();

  // Client pool: sessions partitioned round-robin across workers.
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(config.clients));
  for (int w = 0; w < config.clients; ++w) {
    workers.emplace_back([&h, &designs, &oracles, w] {
      for (int s = w; s < h.config.sessions; s += h.config.clients) {
        if (h.failures.load(std::memory_order_relaxed) > 0) return;
        drive_session(h, s, designs[static_cast<std::size_t>(s)],
                      oracles[static_cast<std::size_t>(s)]);
      }
    });
  }

  // Chaos thread: SIGKILL + restart at deterministic-ish offsets.
  std::thread chaos([&h] {
    for (int k = 0; k < h.config.kills; ++k) {
      const int delay_ms =
          200 + static_cast<int>(mix64(static_cast<std::uint64_t>(k)) % 350);
      for (int waited = 0; waited < delay_ms && !h.done.load(); waited += 50) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      if (h.done.load(std::memory_order_relaxed)) return;
      std::fprintf(stderr, "bench_serve: chaos kill #%d\n", k + 1);
      h.kill_and_restart();
    }
  });

  for (std::thread& t : workers) t.join();
  h.done.store(true, std::memory_order_relaxed);
  chaos.join();

  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();

  // Final sweep on a healthy server: stats gates + graceful shutdown.
  long long quarantined = -1;
  long long known = -1;
  long long restores = -1;
  long long evictions = -1;
  {
    relsched::serve::Client client;
    std::string error;
    if (!client.connect(config.socket_path, std::chrono::seconds(10),
                        &error)) {
      h.fail("final stats connect: " + error);
    } else {
      Json request = Json::object();
      request.set("op", Json::string("stats"));
      Json reply;
      if (client.call_with_backoff(request, &reply, std::chrono::seconds(10),
                                   &error)) {
        quarantined = reply.get("quarantined_sessions")->as_int();
        known = reply.get("known_sessions")->as_int();
        restores = reply.get("restores")->as_int();
        evictions = reply.get("evictions")->as_int();
      } else {
        h.fail("final stats: " + error);
      }
      Json bye = Json::object();
      bye.set("op", Json::string("shutdown"));
      Json ignored;
      (void)client.call(bye, &ignored, &error);
    }
  }
  {
    std::lock_guard<std::mutex> lock(h.server_mutex);
    if (h.server_pid > 0) {
      int status = 0;
      ::waitpid(h.server_pid, &status, 0);
      if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        h.fail("server did not exit 0 on graceful shutdown");
      }
    }
  }

  if (quarantined != 0) {
    h.fail("quarantined_sessions = " + std::to_string(quarantined) +
           " (faults must be absorbed, not poison sessions)");
  }

  // Leak gates: temp files, plus one durable state dir per session (a
  // SIGKILL empties the in-memory map -- known_sessions is expected to
  // shrink -- but on-disk state must never go missing).
  long long leaked_temps = 0;
  {
    const std::string cmd =
        "find " + config.state_dir + " -name '*.tmp.*' | wc -l";
    if (FILE* p = ::popen(cmd.c_str(), "r")) {
      if (std::fscanf(p, "%lld", &leaked_temps) != 1) leaked_temps = -1;
      ::pclose(p);
    }
  }
  if (leaked_temps != 0) {
    h.fail("leaked temp files in state dir: " + std::to_string(leaked_temps));
  }
  long long state_dirs = 0;
  {
    const std::string cmd = "find " + config.state_dir +
                            " -mindepth 1 -maxdepth 1 -name 's-*' | wc -l";
    if (FILE* p = ::popen(cmd.c_str(), "r")) {
      if (std::fscanf(p, "%lld", &state_dirs) != 1) state_dirs = -1;
      ::pclose(p);
    }
  }
  if (state_dirs != config.sessions) {
    h.fail("expected " + std::to_string(config.sessions) +
           " session state dirs, found " + std::to_string(state_dirs));
  }

  std::vector<double> latencies;
  {
    std::lock_guard<std::mutex> lock(h.latency_mutex);
    latencies = h.latencies_us;
  }
  const double p50 = percentile(latencies, 0.50);
  const double p99 = percentile(latencies, 0.99);
  const double throughput =
      wall_s > 0 ? static_cast<double>(h.requests_ok.load()) / wall_s : 0;

  relsched::benchio::Json out = relsched::benchio::Json::object();
  out.field("bench", "serve");
  out.field("mode", config.check_only ? "check-only" : "full");
  out.field("sessions", config.sessions);
  out.field("edits_per_session", config.edits_per_session);
  out.field("clients", config.clients);
  out.field("kills", config.kills);
  out.field("faults", config.faults);
  out.field("requests_ok", h.requests_ok.load());
  out.field("reconnects", h.reconnects.load());
  out.field("retry_after_seen", h.retry_after_seen.load());
  out.field("digest_mismatches", h.digest_mismatches.load());
  out.field("server_restores", restores);
  out.field("server_evictions", evictions);
  out.field("known_sessions_before_shutdown", known);
  out.field("wall_seconds", wall_s);
  out.field("throughput_rps", throughput);
  out.field("latency_p50_us", p50);
  out.field("latency_p99_us", p99);
  out.field("leaked_temp_files", leaked_temps);
  out.field("session_state_dirs", state_dirs);
  out.field("pass", h.failures.load() == 0);
  out.write(config.out_json);
  std::fprintf(stderr,
               "bench_serve: %lld ok requests, %.0f rps, p50 %.0fus, "
               "p99 %.0fus, %lld reconnects, %lld restores -> %s\n",
               h.requests_ok.load(), throughput, p50, p99,
               h.reconnects.load(), restores,
               h.failures.load() == 0 ? "PASS" : "FAIL");

  if (h.failures.load() == 0) {
    const std::string cleanup = "rm -rf " + root;
    (void)!::system(cleanup.c_str());
    return 0;
  }
  std::fprintf(stderr, "bench_serve: state kept at %s\n", root.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  // A SIGKILLed server mid-call must cost the client an EPIPE, not the
  // whole harness.
  ::signal(SIGPIPE, SIG_IGN);
  // Child mode: this same binary re-execs as the server, so the
  // harness never depends on where relsched_serve was installed.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--serve-child") == 0) {
      return run_serve_child(argc, argv);
    }
  }

  Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check-only") {
      config.check_only = true;
      config.sessions = 16;
      config.edits_per_session = 14;
      config.clients = 8;
      config.kills = 1;
    } else if (arg == "--sessions" && i + 1 < argc) {
      config.sessions = std::max(1, std::atoi(argv[++i]));
    } else if (arg == "--edits" && i + 1 < argc) {
      config.edits_per_session = std::max(1, std::atoi(argv[++i]));
    } else if (arg == "--clients" && i + 1 < argc) {
      config.clients = std::max(1, std::atoi(argv[++i]));
    } else if (arg == "--kills" && i + 1 < argc) {
      config.kills = std::max(0, std::atoi(argv[++i]));
    } else if (arg == "--faults" && i + 1 < argc) {
      config.faults = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      config.out_json = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--check-only] [--sessions N] [--edits N] "
                   "[--clients N] [--kills N] [--faults SPEC|off] "
                   "[--out PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  config.clients = std::min(config.clients, config.sessions);

  char self[4096];
  const ssize_t n = ::readlink("/proc/self/exe", self, sizeof self - 1);
  if (n <= 0) {
    std::fprintf(stderr, "bench_serve: cannot resolve /proc/self/exe\n");
    return 1;
  }
  self[n] = '\0';
  return run_harness(config, self);
}

namespace {

int run_serve_child(int argc, char** argv) {
  relsched::serve::ServerOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      options.socket_path = argv[++i];
    } else if (arg == "--state-dir" && i + 1 < argc) {
      options.state_dir = argv[++i];
    } else if (arg == "--max-live" && i + 1 < argc) {
      options.max_live_sessions = std::atoi(argv[++i]);
    } else if (arg == "--max-pending" && i + 1 < argc) {
      options.max_pending_per_session = std::atoi(argv[++i]);
    } else if (arg == "--max-pending-total" && i + 1 < argc) {
      options.max_pending_total = std::atoi(argv[++i]);
    } else if (arg == "--deadline-ms" && i + 1 < argc) {
      options.default_deadline = std::chrono::milliseconds(
          std::atoll(argv[++i]));
    }
  }
  relsched::serve::Server server(std::move(options));
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "bench_serve child: %s\n", error.c_str());
    return 1;
  }
  server.serve_forever();
  return 0;
}

}  // namespace

// E2: the paper's Fig 3 -- ill-posed vs well-posed timing constraints.
// (a) an anchor inside the constrained window: ill-posed, unrepairable;
// (b) two parallel anchors feeding the constraint's ends: ill-posed;
// (c) = (b) after serializing a2 before vi: well-posed.
// makeWellposed must turn (b) into (c) and reject (a).
#include <cstdlib>
#include <iostream>

#include "cg/constraint_graph.hpp"
#include "wellposed/wellposed.hpp"

using namespace relsched;

namespace {

cg::ConstraintGraph fig3a() {
  cg::ConstraintGraph g("fig3a");
  const VertexId v0 = g.add_vertex("v0", cg::Delay::bounded(0));
  const VertexId vi = g.add_vertex("vi", cg::Delay::bounded(1));
  const VertexId a = g.add_vertex("a", cg::Delay::unbounded());
  const VertexId vj = g.add_vertex("vj", cg::Delay::bounded(1));
  g.add_sequencing_edge(v0, vi);
  g.add_sequencing_edge(vi, a);
  g.add_sequencing_edge(a, vj);
  g.add_max_constraint(vi, vj, 4);
  return g;
}

cg::ConstraintGraph fig3b() {
  cg::ConstraintGraph g("fig3b");
  const VertexId v0 = g.add_vertex("v0", cg::Delay::bounded(0));
  const VertexId a1 = g.add_vertex("a1", cg::Delay::unbounded());
  const VertexId a2 = g.add_vertex("a2", cg::Delay::unbounded());
  const VertexId vi = g.add_vertex("vi", cg::Delay::bounded(1));
  const VertexId vj = g.add_vertex("vj", cg::Delay::bounded(1));
  const VertexId vn = g.add_vertex("vn", cg::Delay::bounded(0));
  g.add_sequencing_edge(v0, a1);
  g.add_sequencing_edge(v0, a2);
  g.add_sequencing_edge(a1, vi);
  g.add_sequencing_edge(a2, vj);
  g.add_sequencing_edge(vi, vn);
  g.add_sequencing_edge(vj, vn);
  g.add_max_constraint(vi, vj, 4);
  return g;
}

}  // namespace

int main() {
  std::cout << "E2 / Fig 3: well-posedness analysis\n\n";
  bool ok = true;

  {
    auto g = fig3a();
    const auto before = wellposed::check(g);
    const auto fix = wellposed::make_wellposed(g);
    std::cout << "Fig 3(a): check = " << wellposed::to_string(before.status)
              << ", makeWellposed = " << wellposed::to_string(fix.status)
              << "  (paper: ill-posed, cannot be repaired)\n";
    ok = ok && before.status == wellposed::Status::kIllPosed &&
         fix.status == wellposed::Status::kIllPosed;
  }
  {
    auto g = fig3b();
    const auto before = wellposed::check(g);
    const auto fix = wellposed::make_wellposed(g);
    const auto after = wellposed::check(g);
    std::cout << "Fig 3(b): check = " << wellposed::to_string(before.status)
              << ", makeWellposed adds " << fix.added_edges.size()
              << " edge(s)";
    for (const auto& [from, to] : fix.added_edges) {
      std::cout << " [" << g.vertex(from).name << " -> " << g.vertex(to).name
                << "]";
    }
    std::cout << ", recheck = " << wellposed::to_string(after.status)
              << "  (paper: serializing a2 before vi yields Fig 3(c))\n";
    ok = ok && before.status == wellposed::Status::kIllPosed &&
         fix.status == wellposed::Status::kWellPosed &&
         fix.added_edges.size() == 1 &&
         after.status == wellposed::Status::kWellPosed;
  }
  std::cout << "\npaper comparison: " << (ok ? "MATCHES" : "MISMATCH") << "\n";
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}

// E13: parallel design-space exploration throughput.
//
// Takes a generated 10^4-vertex corpus design (designs::generate, the
// same parameters as bench_scale's 10^4 tier -- the paper suite's
// largest graph is 26 vertices, far too small for per-candidate
// resolve costs to dominate the fork overhead), builds a batch of
// bound-perturbation candidates around one resolved base session, and
// runs the same batch through explore::Explorer twice: sequentially
// (1 worker) and in parallel (4 workers). Every candidate is an
// independent copy-on-write fork resolving one transaction, so the
// parallel run must return bit-identical per-candidate products and
// the same winner -- that equivalence is checked unconditionally and is
// a hard failure.
//
// The >= 3x speedup gate only makes sense with real cores underneath;
// on machines with fewer than 4 hardware threads the gate is reported
// as SKIPPED and the binary exits 0 (CI runs this on 4-vCPU runners,
// where the gate is enforced). Emits BENCH_explorer.json either way.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "base/table.hpp"
#include "bench_json.hpp"
#include "designs/generator.hpp"
#include "engine/session.hpp"
#include "explore/explorer.hpp"

using namespace relsched;

namespace {

using Clock = std::chrono::steady_clock;

double median_us(std::vector<double>& samples) {
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  return n == 0 ? 0.0
                : (n % 2 == 1 ? samples[n / 2]
                              : 0.5 * (samples[n / 2 - 1] + samples[n / 2]));
}

std::string fmt(double v, int precision = 1) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

struct Run {
  double us = 0;
  explore::ExplorationResult result;
  long long forks = 0;
};

}  // namespace

int main(int argc, char** argv) {
  // --check-only: enforce the bit-identical equivalence but skip the
  // speedup gate (used under ThreadSanitizer, whose instrumentation
  // distorts the timing comparison).
  // --advisory-speedup: measure and report the speedup gate but never
  // fail on it (used in CI, where shared noisy runners make a hard
  // timing gate flake-prone); bit-identity remains a hard failure.
  bool check_only = false;
  bool advisory = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check-only") check_only = true;
    if (arg == "--advisory-speedup") advisory = true;
  }
  constexpr int kCandidateTarget = 64;
  constexpr int kRepeats = 7;
  constexpr int kParallelThreads = 4;
  constexpr double kRequiredSpeedup = 3.0;

  // The corpus design: a generated 10^4-vertex graph, the same shape
  // parameters as bench_scale's 10^4 tier. Candidate resolves on it
  // are dirty-cone-sized warm patches expensive enough for the pool to
  // matter; the paper suite's graphs resolve in microseconds and only
  // measure fork overhead.
  designs::GeneratorParams corpus;
  corpus.seed = 90;
  corpus.vertices = 10000;
  corpus.anchor_density = 32;  // ~32 anchors, matching the scale ladder
  corpus.name = "explorer";
  cg::ConstraintGraph graph = designs::generate(corpus);
  const std::string design_name = graph.name();

  // Editable max constraints: generated designs place a dense web of
  // them by construction.
  std::vector<EdgeId> max_edges;
  for (const cg::Edge& e : graph.edges()) {
    if (e.kind == cg::EdgeKind::kMaxConstraint) max_edges.push_back(e.id);
  }
  if (max_edges.empty()) {
    std::cerr << design_name << ": no editable max constraint found\n";
    return EXIT_FAILURE;
  }

  // Candidate batch: per max constraint, loosen the bound by 1..8
  // cycles -- every candidate stays feasible and floods that
  // constraint's dirty cone. Two-edit candidates (loosen, then settle
  // one cycle lower) exercise the transaction coalescing path.
  std::vector<explore::Candidate> candidates;
  for (int i = 0; candidates.size() < static_cast<std::size_t>(kCandidateTarget);
       ++i) {
    const EdgeId edge = max_edges[static_cast<std::size_t>(i) % max_edges.size()];
    const int bound = std::abs(graph.edge(edge).fixed_weight);
    const int delta = 1 + (i / static_cast<int>(max_edges.size())) % 8;
    explore::Candidate c;
    c.label = "e" + std::to_string(edge.value()) + "+" + std::to_string(delta);
    c.edits.push_back(explore::EditOp::set_bound(edge, bound + delta + 1));
    c.edits.push_back(explore::EditOp::set_bound(edge, bound + delta));
    candidates.push_back(std::move(c));
  }

  const explore::Objective objective = explore::min_latency();
  const auto run_with = [&](int threads, bool certify) {
    explore::ExplorerOptions opts;
    opts.threads = threads;
    engine::SessionOptions sopts;
    sopts.certify = certify;
    explore::Explorer explorer(engine::SynthesisSession(graph, sopts), opts);
    (void)explorer.explore(candidates, objective);  // warm-up
    std::vector<double> samples;
    Run run;
    for (int i = 0; i < kRepeats; ++i) {
      const auto t0 = Clock::now();
      run.result = explorer.explore(candidates, objective);
      samples.push_back(
          std::chrono::duration<double, std::micro>(Clock::now() - t0).count());
    }
    run.us = median_us(samples);
    run.forks = explorer.base().stats().forks_taken;
    return run;
  };

  const Run sequential = run_with(1, false);
  const Run parallel = run_with(kParallelThreads, false);
  // Certification on: every candidate product is validated against its
  // edited graph by certify::check_products, and the results must still
  // be bit-identical to the uncertified runs (the certifier observes,
  // it must never perturb).
  const Run certified = run_with(kParallelThreads, true);

  // Hard requirement at ANY thread count, with or without the
  // certifier: same winner, bit-identical per-candidate products.
  const auto compare_runs = [&](const Run& lhs, const Run& rhs,
                                const char* what) {
    bool same = lhs.result.winner == rhs.result.winner;
    for (std::size_t i = 0; same && i < candidates.size(); ++i) {
      const explore::CandidateResult& a = lhs.result.candidates[i];
      const explore::CandidateResult& b = rhs.result.candidates[i];
      same = a.feasible == b.feasible && a.score == b.score &&
             a.products.schedule.status == b.products.schedule.status;
      for (int vi = 0; same && vi < graph.vertex_count(); ++vi) {
        same = a.products.schedule.schedule.offsets(VertexId(vi)) ==
               b.products.schedule.schedule.offsets(VertexId(vi));
      }
      if (!same) {
        std::cerr << "candidate " << a.label << ": " << what << "\n";
      }
    }
    return same;
  };
  const bool identical = compare_runs(sequential, parallel,
                                      "parallel result diverges from "
                                      "sequential");
  const bool certified_identical = compare_runs(
      parallel, certified, "certified result diverges from uncertified");
  long long certificate_failures = 0;
  for (const explore::CandidateResult& c : certified.result.candidates) {
    certificate_failures += c.stats.certificate_failures;
  }
  if (certificate_failures != 0) {
    std::cerr << "certifier tripped " << certificate_failures
              << " time(s) on a clean exploration\n";
  }

  const double speedup = parallel.us > 0 ? sequential.us / parallel.us : 0.0;
  const unsigned hardware = std::thread::hardware_concurrency();

  std::cout << "E13: parallel design-space exploration, " << candidates.size()
            << " candidates on " << design_name << " (|V|="
            << graph.vertex_count() << ", |E|=" << graph.edge_count() << ")\n\n";
  TextTable table;
  table.set_header({"mode", "threads", "explore (us)", "us/candidate", "forks",
                    "steals"});
  table.add_row({"sequential", "1", fmt(sequential.us),
                 fmt(sequential.us / static_cast<double>(candidates.size())),
                 cat(sequential.forks), cat(sequential.result.steals)});
  table.add_row({"parallel", cat(kParallelThreads), fmt(parallel.us),
                 fmt(parallel.us / static_cast<double>(candidates.size())),
                 cat(parallel.forks), cat(parallel.result.steals)});
  table.add_row({"certified", cat(kParallelThreads), fmt(certified.us),
                 fmt(certified.us / static_cast<double>(candidates.size())),
                 cat(certified.forks), cat(certified.result.steals)});
  table.print(std::cout);
  std::cout << "\nwinner: "
            << (parallel.result.winner >= 0 ? parallel.result.best().label
                                            : std::string("<none>"))
            << "; per-candidate results bit-identical across thread counts: "
            << (identical ? "yes" : "NO")
            << "; with certification on: "
            << (certified_identical ? "yes" : "NO") << "\n";

  const bool gate_applies =
      !check_only && hardware >= static_cast<unsigned>(kParallelThreads);
  const std::string gate = !gate_applies          ? "SKIPPED"
                           : speedup >= kRequiredSpeedup
                               ? "HOLDS"
                               : (advisory ? "FAILS (advisory)" : "FAILS");

  benchio::Json scores = benchio::Json::array();
  for (const explore::CandidateResult& c : parallel.result.candidates) {
    scores.element(c.feasible ? c.score : -1.0);
  }
  benchio::Json::object()
      .field("bench", "explorer")
      .field("design", design_name)
      .field("corpus",
             benchio::Json::object()
                 .field("generator", "designs::generate")
                 .field("seed", static_cast<long long>(corpus.seed))
                 .field("vertices", corpus.vertices)
                 .field("anchor_density", corpus.anchor_density))
      .field("vertices", graph.vertex_count())
      .field("edges", graph.edge_count())
      .field("candidates", static_cast<int>(candidates.size()))
      .field("repeats", kRepeats)
      .field("parallel_threads", kParallelThreads)
      .field("hardware_concurrency", static_cast<int>(hardware))
      .field("sequential_us", sequential.us)
      .field("parallel_us", parallel.us)
      .field("speedup", speedup)
      .field("steals", parallel.result.steals)
      .field("identical", identical)
      .field("certified_us", certified.us)
      .field("certified_identical", certified_identical)
      .field("certificate_failures", certificate_failures)
      .field("required_speedup", kRequiredSpeedup)
      .field("gate", gate)
      .field("gate_mode", check_only  ? std::string("skipped")
                          : advisory  ? std::string("advisory")
                                      : std::string("enforced"))
      .field("winner",
             parallel.result.winner >= 0 ? parallel.result.best().label
                                         : std::string("<none>"))
      .field("scores", scores)
      .write("BENCH_explorer.json");
  std::cout << "wrote BENCH_explorer.json\n";

  if (!identical || !certified_identical || certificate_failures != 0) {
    return EXIT_FAILURE;
  }
  std::cout << "\n" << kParallelThreads << "-thread speedup: " << fmt(speedup, 2)
            << "x (required: >= " << fmt(kRequiredSpeedup) << "x, "
            << "hardware threads: " << hardware << "): " << gate << "\n";
  if (!gate_applies) {
    std::cout << (check_only ? "--check-only: speedup gate skipped\n"
                             : "fewer than 4 hardware threads: speedup gate "
                               "skipped\n");
    return EXIT_SUCCESS;
  }
  if (speedup < kRequiredSpeedup && advisory) {
    std::cout << "--advisory-speedup: gate miss reported, not enforced\n";
    return EXIT_SUCCESS;
  }
  return speedup >= kRequiredSpeedup ? EXIT_SUCCESS : EXIT_FAILURE;
}

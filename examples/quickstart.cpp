// Quickstart: build the paper's Fig 2 constraint graph by hand, run the
// relative-scheduling pipeline, and inspect the results.
//
//   cmake --build build && ./build/examples/quickstart
#include <iostream>

#include "anchors/anchor_analysis.hpp"
#include "cg/constraint_graph.hpp"
#include "driver/report.hpp"
#include "sched/scheduler.hpp"
#include "wellposed/wellposed.hpp"

using namespace relsched;

int main() {
  // 1. Describe the operations and their dependencies. `a` is an
  //    external synchronization whose delay is unknown at compile time.
  cg::ConstraintGraph g("quickstart");
  const VertexId v0 = g.add_vertex("v0", cg::Delay::bounded(0));  // source
  const VertexId a = g.add_vertex("a", cg::Delay::unbounded());
  const VertexId v1 = g.add_vertex("v1", cg::Delay::bounded(2));
  const VertexId v2 = g.add_vertex("v2", cg::Delay::bounded(1));
  const VertexId v3 = g.add_vertex("v3", cg::Delay::bounded(5));
  const VertexId v4 = g.add_vertex("v4", cg::Delay::bounded(1));
  g.add_sequencing_edge(v0, a);
  g.add_sequencing_edge(v0, v1);
  g.add_sequencing_edge(a, v3);
  g.add_sequencing_edge(v1, v2);
  g.add_sequencing_edge(v2, v3);
  g.add_sequencing_edge(v3, v4);

  // 2. Timing constraints: v3 at least 3 cycles after the start, and v2
  //    at most 2 cycles after v1 starts.
  g.add_min_constraint(v0, v3, 3);
  g.add_max_constraint(v1, v2, 2);

  // 3. Check well-posedness: can the constraints be met for *every*
  //    profile of the unbounded delay delta(a)?
  const auto wp = wellposed::check(g);
  std::cout << "well-posedness: " << wellposed::to_string(wp.status) << "\n\n";

  // 4. Schedule: compute minimum offsets relative to the anchors.
  const auto analysis = anchors::AnchorAnalysis::compute(g);
  const auto result = sched::schedule(g, analysis);
  if (!result.ok()) {
    std::cerr << "no schedule: " << result.message << "\n";
    return 1;
  }
  std::cout << "minimum relative schedule (paper Table II):\n";
  driver::print_schedule_table(std::cout, g, analysis, result.schedule);

  // 5. Evaluate start times for concrete delay profiles: the schedule
  //    adapts to however long `a` actually takes.
  for (const int delta_a : {0, 4, 9}) {
    sched::DelayProfile profile;
    profile.set(a, delta_a);
    const auto start = result.schedule.start_times(g, profile);
    std::cout << "\ndelta(a) = " << delta_a << ":  ";
    for (const auto& v : g.vertices()) {
      std::cout << v.name << "@" << start[v.id.index()] << "  ";
    }
    const bool valid =
        !sched::find_violation(g, result.schedule, profile).has_value();
    std::cout << (valid ? "(all constraints hold)" : "(VIOLATION!)");
  }
  std::cout << "\n";
  return 0;
}

// End-to-end synthesis of the paper's gcd example (Fig 13 / Fig 14):
// HardwareC source -> sequencing graphs -> binding -> relative
// scheduling -> control generation -> cycle-accurate simulation.
//
//   ./build/examples/gcd_synthesis
#include <iostream>

#include "ctrl/control.hpp"
#include "designs/designs.hpp"
#include "driver/report.hpp"
#include "driver/stats.hpp"
#include "driver/synthesis.hpp"
#include "sim/simulator.hpp"

using namespace relsched;

int main() {
  // 1. Compile the HardwareC description (the paper's Fig 13).
  std::cout << "=== HardwareC source (Fig 13) ===\n"
            << designs::source("gcd") << "\n";
  seq::Design design = designs::build("gcd");

  // 2. Synthesize: bind, make well-posed, schedule every graph
  //    bottom-up.
  const auto result = driver::synthesize(design);
  if (!result.ok()) {
    std::cerr << "synthesis failed: " << result.message << "\n";
    return 1;
  }
  std::cout << "=== Synthesis report ===\n";
  driver::print_design_report(std::cout, design, result);

  const auto stats = driver::compute_stats(result);
  std::cout << "\n|A|/|V| = " << stats.total_anchors << "/"
            << stats.total_vertices << ", sum |A(v)| = " << stats.sum_full
            << ", sum |IR(v)| = " << stats.sum_irredundant << "\n\n";

  // 3. Generate control for the root graph, both styles.
  const auto& root = result.for_graph(design.root());
  for (const auto style :
       {ctrl::ControlStyle::kCounter, ctrl::ControlStyle::kShiftRegister}) {
    ctrl::ControlOptions copts;
    copts.style = style;
    const auto unit = ctrl::generate_control(root.constraint_graph,
                                             root.analysis,
                                             root.schedule.schedule, copts);
    std::cout << ctrl::to_string(style) << " control: " << unit.cost.flipflops
              << " flip-flops, " << unit.cost.gates << " gates\n";
  }
  ctrl::ControlOptions copts;
  copts.style = ctrl::ControlStyle::kShiftRegister;
  const auto unit = ctrl::generate_control(
      root.constraint_graph, root.analysis, root.schedule.schedule, copts);
  std::cout << "\n=== Generated control (root graph) ===\n"
            << unit.to_verilog(root.constraint_graph, "gcd_ctrl") << "\n";

  // 4. Simulate with the Fig 14 scenario: restart falls, y is sampled,
  //    x exactly one cycle later, Euclid's algorithm runs.
  sim::Stimulus stim;
  stim.set(design, "restart", 0, 1);
  stim.set(design, "restart", 4, 0);
  stim.set(design, "xin", 0, 12);
  stim.set(design, "yin", 0, 8);
  sim::Simulator simulator(design, result, stim);
  const auto run = simulator.run();

  std::cout << "=== Simulation trace (Fig 14 scenario) ===\n";
  std::cout << sim::render_waveform(design, stim, run,
                                    {"restart", "xin", "yin", "result"}, 0,
                                    std::min<graph::Weight>(run.end_cycle + 3, 40));
  std::cout << "\nsampling events:\n";
  for (const auto& e : run.events) {
    if (e.kind == sim::TraceEvent::Kind::kReadSample && e.label != "restart") {
      std::cout << "  cycle " << e.cycle << ": sampled " << e.label << " = "
                << e.value << "\n";
    }
  }
  std::cout << "timing constraints "
            << (run.all_constraints_satisfied() ? "satisfied" : "VIOLATED")
            << "; gcd(12, 8) = "
            << run.output_at(*design.find_port("result"), run.end_cycle)
            << " after " << run.end_cycle << " cycles\n";
  return run.all_constraints_satisfied() ? 0 : 1;
}

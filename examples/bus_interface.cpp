// ASIC bus-interface scenario: the motivating use case of the paper's
// introduction. A peripheral handshakes with two external agents; a
// maximum timing constraint couples operations that depend on
// *different* unbounded events, so the raw specification is ill-posed
// (Fig 3(b)). makeWellposed repairs it with minimal serialization, and
// the schedule then holds for every delay profile.
//
//   ./build/examples/bus_interface
#include <iostream>

#include "anchors/anchor_analysis.hpp"
#include "cg/constraint_graph.hpp"
#include "driver/report.hpp"
#include "sched/scheduler.hpp"
#include "wellposed/wellposed.hpp"

using namespace relsched;

int main() {
  // A bus master: wait for grant (unbounded), drive address, then a
  // data phase synchronized on device-ready (unbounded). A protocol
  // rule says the data strobe must fall within 2 cycles of the address
  // strobe.
  cg::ConstraintGraph g("bus_master");
  const VertexId v0 = g.add_vertex("start", cg::Delay::bounded(0));
  const VertexId grant = g.add_vertex("wait_grant", cg::Delay::unbounded());
  const VertexId ready = g.add_vertex("wait_ready", cg::Delay::unbounded());
  const VertexId addr = g.add_vertex("drive_addr", cg::Delay::bounded(1));
  const VertexId data = g.add_vertex("drive_data", cg::Delay::bounded(1));
  const VertexId done = g.add_vertex("done", cg::Delay::bounded(0));
  g.add_sequencing_edge(v0, grant);
  g.add_sequencing_edge(v0, ready);
  g.add_sequencing_edge(grant, addr);
  g.add_sequencing_edge(ready, data);
  g.add_sequencing_edge(addr, done);
  g.add_sequencing_edge(data, done);
  // Protocol rule: start(data) <= start(addr) + 2.
  g.add_max_constraint(addr, data, 2);

  std::cout << "raw specification: "
            << wellposed::to_string(wellposed::check(g).status) << "\n";
  std::cout << "  (data waits on 'ready', addr waits on 'grant'; the 2-cycle"
               " bound cannot hold for every ready/grant timing)\n\n";

  // Repair by minimal serialization (the paper's makeWellposed).
  const auto fix = wellposed::make_wellposed(g);
  if (fix.status != wellposed::Status::kWellPosed) {
    std::cerr << "cannot be made well-posed: " << fix.message << "\n";
    return 1;
  }
  std::cout << "after makeWellposed: " << fix.added_edges.size()
            << " serialization(s) added:\n";
  for (const auto& [from, to] : fix.added_edges) {
    std::cout << "  " << g.vertex(from).name << " -> " << g.vertex(to).name
              << "  (weight delta(" << g.vertex(from).name << "))\n";
  }
  std::cout << "\n";

  const auto analysis = anchors::AnchorAnalysis::compute(g);
  const auto result = sched::schedule(g, analysis);
  if (!result.ok()) {
    std::cerr << "no schedule: " << result.message << "\n";
    return 1;
  }
  driver::print_schedule_table(std::cout, g, analysis, result.schedule);

  // The schedule now holds no matter when grant/ready arrive.
  std::cout << "\nstart(addr) / start(data) under various agent timings:\n";
  for (const int grant_delay : {0, 5}) {
    for (const int ready_delay : {0, 7}) {
      sched::DelayProfile profile;
      profile.set(grant, grant_delay);
      profile.set(ready, ready_delay);
      const auto start = result.schedule.start_times(g, profile);
      const bool valid =
          !sched::find_violation(g, result.schedule, profile).has_value();
      std::cout << "  grant=" << grant_delay << " ready=" << ready_delay
                << "  ->  addr@" << start[addr.index()] << " data@"
                << start[data.index()] << "  gap="
                << start[data.index()] - start[addr.index()]
                << (valid ? "  ok" : "  VIOLATION") << "\n";
    }
  }
  return 0;
}

// Reactive testbench example: attach a device model (sim::Environment)
// to a synthesized design. A requester handshakes with a responder that
// answers `req` with `ack` three cycles later; the design's timing
// constraint bounds its own turnaround.
//
//   ./build/examples/reactive_testbench
#include <iostream>
#include <optional>

#include "driver/synthesis.hpp"
#include "hdl/lower.hpp"
#include "sim/simulator.hpp"
#include "sim/vcd.hpp"

using namespace relsched;

namespace {

constexpr std::string_view kSource = R"hdl(
// Issue a request, wait for the device's acknowledge, capture the
// response word, and release the request. The min/max pair keeps the
// release pulse within a fixed window after the capture.
process requester (ack, resp, req, captured) {
  in port ack, resp[8];
  out port req, captured[8];
  boolean v[8];
  tag c, r;

  write req = 1;
  wait (ack);
  {
    constraint mintime from c to r = 1 cycles;
    constraint maxtime from c to r = 2 cycles;
    c: v = read(resp);
    r: write req = 0;
  }
  write captured = v;
  wait (!ack);
}
)hdl";

/// Device model: ack rises 3 cycles after req rises, falls 2 cycles
/// after req falls; resp carries a token while ack is high.
class Responder : public sim::Environment {
 public:
  explicit Responder(const seq::Design& design) {
    req_ = *design.find_port("req");
    ack_ = *design.find_port("ack");
    resp_ = *design.find_port("resp");
  }

  void on_port_write(PortId port, graph::Weight cycle,
                     std::int64_t value) override {
    if (port != req_) return;
    if (value != 0 && rise_ < 0) rise_ = cycle;
    if (value == 0 && rise_ >= 0 && fall_ < 0) fall_ = cycle;
  }

  std::optional<std::int64_t> drive(PortId port, graph::Weight cycle) override {
    const bool ack_high = rise_ >= 0 && cycle >= rise_ + 3 &&
                          (fall_ < 0 || cycle < fall_ + 2);
    if (port == ack_) return ack_high ? 1 : 0;
    if (port == resp_) return ack_high ? 0x5A : 0;
    return std::nullopt;
  }

 private:
  PortId req_, ack_, resp_;
  graph::Weight rise_ = -1, fall_ = -1;
};

}  // namespace

int main() {
  auto design = hdl::compile_single(kSource);
  const auto synthesis = driver::synthesize(design);
  if (!synthesis.ok()) {
    std::cerr << "synthesis failed: " << synthesis.message << "\n";
    return 1;
  }

  Responder responder(design);
  sim::Simulator simulator(design, synthesis, sim::Stimulus{});
  simulator.set_environment(&responder);
  const auto run = simulator.run();

  std::cout << "handshake completed in " << run.end_cycle << " cycles; "
            << "captured = 0x" << std::hex
            << run.output_at(*design.find_port("captured"), run.end_cycle)
            << std::dec << "\n";
  std::cout << "timing constraints "
            << (run.all_constraints_satisfied() ? "satisfied" : "VIOLATED")
            << "\n\n";
  for (const auto& check : run.constraint_checks) {
    std::cout << "  constraint " << check.constraint_index << ": starts "
              << check.from_start << " -> " << check.to_start << " ("
              << (check.satisfied ? "ok" : "violated") << ")\n";
  }

  // Dump a VCD for waveform viewers (output ports only: environment-
  // driven inputs are not part of the static stimulus record).
  sim::VcdOptions vcd_opts;
  vcd_opts.port_names = {"req", "captured"};
  std::cout << "\n--- VCD ---\n"
            << sim::to_vcd(design, sim::Stimulus{}, run, vcd_opts);
  return run.all_constraints_satisfied() ? 0 : 1;
}

// Design-space exploration over the full benchmark suite: synthesize
// every design, compare full vs irredundant anchor sets (Table III) and
// counter vs shift-register control implementations (paper §VI), then
// walk a timing-constraint sweep incrementally through a
// SynthesisSession (tightening one max bound until the design breaks).
//
//   ./build/examples/design_explorer
#include <algorithm>
#include <iostream>

#include "base/table.hpp"
#include "ctrl/control.hpp"
#include "designs/designs.hpp"
#include "driver/stats.hpp"
#include "driver/synthesis.hpp"
#include "engine/session.hpp"
#include "explore/explorer.hpp"
#include "graph/algorithms.hpp"

using namespace relsched;

namespace {

ctrl::ControlCost total_control_cost(const driver::SynthesisResult& result,
                                     ctrl::ControlStyle style,
                                     anchors::AnchorMode mode) {
  ctrl::ControlCost total;
  for (const auto& gs : result.graphs) {
    ctrl::ControlOptions opts;
    opts.style = style;
    opts.mode = mode;
    const auto unit = ctrl::generate_control(gs.constraint_graph, gs.analysis,
                                             gs.schedule.schedule, opts);
    total = total + unit.cost;
  }
  return total;
}

/// Constraint sweep on one graph: every tightening of one max
/// constraint becomes a candidate, and the whole sweep runs through the
/// parallel explorer -- each candidate on its own copy-on-write fork of
/// one resolved base session, resolved as a single transaction and
/// scored by zero-profile latency. The result is deterministic for any
/// worker count, so the table below never depends on the machine.
void explore_incrementally(const std::string& design_name,
                           cg::ConstraintGraph graph,
                           const anchors::AnchorAnalysis& analysis) {
  engine::SynthesisSession session(std::move(graph), {});

  // Sweep an existing max constraint, or install one along a forward
  // edge whose endpoints share an anchor set (containment keeps it
  // well-posed) with generous slack.
  EdgeId swept = EdgeId::invalid();
  for (const cg::Edge& e : session.graph().edges()) {
    if (e.kind == cg::EdgeKind::kMaxConstraint) {
      swept = e.id;
      break;
    }
  }
  if (!swept.is_valid()) {
    for (const cg::Edge& e : session.graph().edges()) {
      if (!cg::is_forward(e.kind)) continue;
      if (analysis.anchor_set(e.from) != analysis.anchor_set(e.to)) continue;
      const auto lp = graph::longest_paths_from(
          session.graph().project_forward(), e.from.value());
      swept = session.add_max_constraint(
          e.from, e.to, static_cast<int>(lp.dist[e.to.index()]) + 8);
      break;
    }
  }
  if (!swept.is_valid()) {
    std::cout << "\n(no sweepable max constraint in " << design_name << ")\n";
    return;
  }
  if (!session.resolve().ok()) {
    std::cerr << design_name
              << ": baseline resolve failed: " << session.resolve().schedule.message
              << "\n";
    return;
  }
  const cg::Edge& edge = session.graph().edge(swept);
  const VertexId from = edge.from;
  const VertexId to = edge.to;
  const int bound = std::abs(edge.fixed_weight);

  std::cout << "\nParallel sweep on " << design_name << ": max constraint '"
            << session.graph().vertex(from).name << "' -> '"
            << session.graph().vertex(to).name << "', bounds " << bound
            << "..0, one fork per candidate\n";

  std::vector<explore::Candidate> candidates;
  for (int b = bound; b >= 0; --b) {
    candidates.push_back({"bound=" + std::to_string(b),
                          {explore::EditOp::set_bound(swept, b)}});
  }
  explore::Explorer explorer(std::move(session), {});
  const explore::ExplorationResult result =
      explorer.explore(candidates, explore::min_latency());

  TextTable sweep;
  sweep.set_header({"bound", "status", "latency", "dirty cone"});
  for (const explore::CandidateResult& c : result.candidates) {
    sweep.add_row(
        {c.label.substr(c.label.find('=') + 1),
         c.feasible ? "ok" : c.error,
         c.feasible ? std::to_string(static_cast<long long>(c.score)) : "-",
         std::to_string(c.stats.last_affected_vertices) + "/" +
             std::to_string(explorer.base().graph().vertex_count())});
  }
  sweep.print(std::cout);

  const engine::SessionStats st = explorer.base().stats();
  std::cout << "\nexplorer: " << candidates.size() << " candidates on "
            << explorer.threads() << " threads, " << st.forks_taken
            << " copy-on-write forks, " << result.steals << " steals";
  if (result.winner >= 0) {
    std::cout << "; best candidate " << result.best().label << " at latency "
              << static_cast<long long>(result.best().score);
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  TextTable table;
  table.set_header({"design", "|A|/|V|", "sum|A(v)|", "sum|IR(v)|",
                    "ctr FF/gates", "SR FF/gates", "SR+IR FF/gates"});
  cg::ConstraintGraph largest_graph;
  anchors::AnchorAnalysis largest_analysis;
  std::string largest_design;
  for (const auto& d : designs::benchmark_suite()) {
    seq::Design design = designs::build(d.name);
    const auto result = driver::synthesize(design);
    if (!result.ok()) {
      std::cerr << d.name << ": " << result.message << "\n";
      return 1;
    }
    for (const auto& gs : result.graphs) {
      if (gs.constraint_graph.vertex_count() > largest_graph.vertex_count()) {
        largest_graph = gs.constraint_graph;
        largest_analysis = gs.analysis;
        largest_design = d.name;
      }
    }
    const auto stats = driver::compute_stats(result);
    const auto counter = total_control_cost(result, ctrl::ControlStyle::kCounter,
                                            anchors::AnchorMode::kFull);
    const auto sr = total_control_cost(
        result, ctrl::ControlStyle::kShiftRegister, anchors::AnchorMode::kFull);
    const auto sr_ir =
        total_control_cost(result, ctrl::ControlStyle::kShiftRegister,
                           anchors::AnchorMode::kIrredundant);
    table.add_row({d.name,
                   std::to_string(stats.total_anchors) + "/" +
                       std::to_string(stats.total_vertices),
                   std::to_string(stats.sum_full),
                   std::to_string(stats.sum_irredundant),
                   std::to_string(counter.flipflops) + "/" +
                       std::to_string(counter.gates),
                   std::to_string(sr.flipflops) + "/" + std::to_string(sr.gates),
                   std::to_string(sr_ir.flipflops) + "/" +
                       std::to_string(sr_ir.gates)});
  }
  std::cout << "Benchmark suite: anchor statistics and control cost\n";
  table.print(std::cout);
  std::cout << "\nIrredundant anchor sets shrink both synchronization terms\n"
               "and shift-register lengths (paper SSVI): compare the last two\n"
               "columns.\n";

  explore_incrementally(largest_design, std::move(largest_graph),
                        largest_analysis);
  return 0;
}

// Design-space exploration over the full benchmark suite: synthesize
// every design, compare full vs irredundant anchor sets (Table III) and
// counter vs shift-register control implementations (paper §VI).
//
//   ./build/examples/design_explorer
#include <iostream>

#include "base/table.hpp"
#include "ctrl/control.hpp"
#include "designs/designs.hpp"
#include "driver/stats.hpp"
#include "driver/synthesis.hpp"

using namespace relsched;

namespace {

ctrl::ControlCost total_control_cost(const driver::SynthesisResult& result,
                                     ctrl::ControlStyle style,
                                     anchors::AnchorMode mode) {
  ctrl::ControlCost total;
  for (const auto& gs : result.graphs) {
    ctrl::ControlOptions opts;
    opts.style = style;
    opts.mode = mode;
    const auto unit = ctrl::generate_control(gs.constraint_graph, gs.analysis,
                                             gs.schedule.schedule, opts);
    total = total + unit.cost;
  }
  return total;
}

}  // namespace

int main() {
  TextTable table;
  table.set_header({"design", "|A|/|V|", "sum|A(v)|", "sum|IR(v)|",
                    "ctr FF/gates", "SR FF/gates", "SR+IR FF/gates"});
  for (const auto& d : designs::benchmark_suite()) {
    seq::Design design = designs::build(d.name);
    const auto result = driver::synthesize(design);
    if (!result.ok()) {
      std::cerr << d.name << ": " << result.message << "\n";
      return 1;
    }
    const auto stats = driver::compute_stats(result);
    const auto counter = total_control_cost(result, ctrl::ControlStyle::kCounter,
                                            anchors::AnchorMode::kFull);
    const auto sr = total_control_cost(
        result, ctrl::ControlStyle::kShiftRegister, anchors::AnchorMode::kFull);
    const auto sr_ir =
        total_control_cost(result, ctrl::ControlStyle::kShiftRegister,
                           anchors::AnchorMode::kIrredundant);
    table.add_row({d.name,
                   std::to_string(stats.total_anchors) + "/" +
                       std::to_string(stats.total_vertices),
                   std::to_string(stats.sum_full),
                   std::to_string(stats.sum_irredundant),
                   std::to_string(counter.flipflops) + "/" +
                       std::to_string(counter.gates),
                   std::to_string(sr.flipflops) + "/" + std::to_string(sr.gates),
                   std::to_string(sr_ir.flipflops) + "/" +
                       std::to_string(sr_ir.gates)});
  }
  std::cout << "Benchmark suite: anchor statistics and control cost\n";
  table.print(std::cout);
  std::cout << "\nIrredundant anchor sets shrink both synchronization terms\n"
               "and shift-register lengths (paper SSVI): compare the last two\n"
               "columns.\n";
  return 0;
}

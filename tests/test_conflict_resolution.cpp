// Constrained conflict resolution (paper SSVII): when resource sharing
// forces a serialization, the synthesis driver must search for an
// order that still satisfies the timing constraints.
#include <gtest/gtest.h>

#include "bind/binder.hpp"
#include "driver/synthesis.hpp"
#include "seq/design.hpp"

namespace relsched::driver {
namespace {

using seq::AluOp;
using seq::OpKind;
using seq::SeqOp;

SeqOp alu(AluOp op, std::string name) {
  SeqOp s;
  s.kind = OpKind::kAlu;
  s.alu = op;
  s.name = std::move(name);
  return s;
}

/// Two independent 2-cycle multiplies forced onto one multiplier, with
/// a max constraint start(late) <= start(early) + 1. Serializing
/// early -> late closes a positive cycle (+2 forward, -1 backward):
/// infeasible. Serializing late -> early is fine (early simply starts
/// two cycles after late). Only one order works, and which one the
/// canonical binder picks depends on creation order.
seq::Design make_design(bool early_first_in_creation_order) {
  seq::Design d("conflict");
  const SeqGraphId gid = d.add_graph("root");
  d.set_root(gid);
  seq::SeqGraph& g = d.graph(gid);
  OpId early, late;
  if (early_first_in_creation_order) {
    early = g.add_op(alu(AluOp::kMul, "early"));
    late = g.add_op(alu(AluOp::kMul, "late"));
  } else {
    late = g.add_op(alu(AluOp::kMul, "late"));
    early = g.add_op(alu(AluOp::kMul, "early"));
  }
  // start(late) <= start(early) + 1.
  g.add_constraint({early, late, 1, /*is_min=*/false});
  return d;
}

SynthesisOptions one_multiplier(int retries) {
  SynthesisOptions options;
  options.binding.instance_limits["multiplier"] = 1;
  options.conflict_resolution_retries = retries;
  return options;
}

TEST(ConflictResolution, RetriesFindAWorkingSerialization) {
  // Whichever creation order the ops have, some perturbation must yield
  // a schedulable serialization.
  for (const bool order : {true, false}) {
    auto design = make_design(order);
    const auto result = synthesize(design, one_multiplier(/*retries=*/8));
    EXPECT_TRUE(result.ok())
        << "order=" << order << ": " << result.message;
  }
}

TEST(ConflictResolution, WithoutRetriesOneOrderFails) {
  // Sanity: the problem is real -- with retries disabled, at least one
  // creation order must fail (the canonical ASAP order serializes in
  // creation order on ties).
  int failures = 0;
  for (const bool order : {true, false}) {
    auto design = make_design(order);
    const auto result = synthesize(design, one_multiplier(/*retries=*/0));
    if (!result.ok()) ++failures;
  }
  EXPECT_EQ(failures, 1);
}

TEST(ConflictResolution, GenuinelyUnsatisfiableStillFails) {
  // Symmetric window: each multiply must start within 1 cycle of the
  // other. Any serialization on a single 2-cycle multiplier separates
  // them by 2, so *both* orders close a positive cycle.
  seq::Design d("impossible");
  const SeqGraphId gid = d.add_graph("root");
  d.set_root(gid);
  seq::SeqGraph& g = d.graph(gid);
  const OpId m1 = g.add_op(alu(AluOp::kMul, "m1"));
  const OpId m2 = g.add_op(alu(AluOp::kMul, "m2"));
  g.add_constraint({m1, m2, 1, /*is_min=*/false});
  g.add_constraint({m2, m1, 1, /*is_min=*/false});
  const auto result = synthesize(d, one_multiplier(/*retries=*/16));
  EXPECT_FALSE(result.ok());
}

TEST(ConflictResolution, PerturbationChangesBinderOrder) {
  // The binder must actually produce different serializations across
  // perturbations (otherwise the retry loop is useless).
  std::set<std::pair<int, int>> seen;
  for (unsigned perturbation : {0u, 1u, 2u, 3u, 4u, 5u, 6u, 7u}) {
    seq::Design d("p");
    const SeqGraphId gid = d.add_graph("root");
    d.set_root(gid);
    seq::SeqGraph& g = d.graph(gid);
    g.add_op(alu(AluOp::kMul, "a"));
    g.add_op(alu(AluOp::kMul, "b"));
    bind::BindingOptions opts;
    opts.instance_limits["multiplier"] = 1;
    opts.perturbation = perturbation;
    const auto result =
        bind::bind_graph(g, bind::ResourceLibrary::standard(), opts);
    ASSERT_EQ(result.serializations.size(), 1u);
    seen.insert({result.serializations[0].first.value(),
                 result.serializations[0].second.value()});
  }
  EXPECT_EQ(seen.size(), 2u);  // both orders appear across perturbations
}

}  // namespace
}  // namespace relsched::driver

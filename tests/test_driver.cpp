#include "driver/synthesis.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "certify/certify.hpp"
#include "driver/report.hpp"
#include "driver/stats.hpp"

namespace relsched::driver {
namespace {

using seq::AluOp;
using seq::OpKind;
using seq::SeqOp;

SeqOp alu(AluOp op, std::string name) {
  SeqOp s;
  s.kind = OpKind::kAlu;
  s.alu = op;
  s.name = std::move(name);
  return s;
}

/// root: read a; loop { add } ; write r   with the loop unbounded.
seq::Design make_loop_design() {
  seq::Design d("loopy");
  const PortId in = d.add_port("in", 8, seq::PortDirection::kIn);
  const PortId out = d.add_port("out", 8, seq::PortDirection::kOut);

  const SeqGraphId root_id = d.add_graph("root");
  const SeqGraphId body_id = d.add_graph("body");
  const SeqGraphId cond_id = d.add_graph("cond");
  d.set_root(root_id);

  d.graph(body_id).add_op(alu(AluOp::kAdd, "body_add"));
  d.graph(cond_id).add_op(alu(AluOp::kNe, "test"));

  seq::SeqGraph& root = d.graph(root_id);
  SeqOp rd;
  rd.kind = OpKind::kRead;
  rd.name = "rd";
  rd.port = in;
  const OpId r = root.add_op(std::move(rd));
  SeqOp loop;
  loop.kind = OpKind::kLoop;
  loop.name = "loop";
  loop.body = body_id;
  loop.cond_body = cond_id;
  const OpId l = root.add_op(std::move(loop));
  SeqOp wr;
  wr.kind = OpKind::kWrite;
  wr.name = "wr";
  wr.port = out;
  const OpId w = root.add_op(std::move(wr));
  root.add_dependency(r, l);
  root.add_dependency(l, w);
  return d;
}

/// A purely bounded design: two chained adds and a multiply.
seq::Design make_bounded_design() {
  seq::Design d("bounded");
  const SeqGraphId gid = d.add_graph("root");
  d.set_root(gid);
  seq::SeqGraph& g = d.graph(gid);
  const OpId a = g.add_op(alu(AluOp::kAdd, "a"));
  const OpId b = g.add_op(alu(AluOp::kAdd, "b"));
  const OpId m = g.add_op(alu(AluOp::kMul, "m"));
  g.add_dependency(a, b);
  g.add_dependency(b, m);
  return d;
}

TEST(Synthesize, BoundedDesignGetsBoundedLatency) {
  auto d = make_bounded_design();
  const auto result = synthesize(d);
  ASSERT_TRUE(result.ok()) << result.message;
  const auto& gs = result.for_graph(d.root());
  ASSERT_TRUE(gs.latency.is_bounded());
  // add(1) + add(1) + mul(2) = 4 cycles to the sink.
  EXPECT_EQ(gs.latency.cycles(), 4);
  EXPECT_EQ(gs.analysis.anchors().size(), 1u);  // only the source
}

TEST(Synthesize, LoopMakesParentUnbounded) {
  auto d = make_loop_design();
  const auto result = synthesize(d);
  ASSERT_TRUE(result.ok()) << result.message;
  EXPECT_EQ(result.graphs.size(), 3u);
  // Children bounded, root unbounded (contains the loop anchor).
  for (const auto& gs : result.graphs) {
    if (gs.graph_id == d.root()) {
      EXPECT_TRUE(gs.latency.is_unbounded());
      EXPECT_EQ(gs.analysis.anchors().size(), 2u);  // source + loop
    } else {
      EXPECT_TRUE(gs.latency.is_bounded());
    }
  }
}

TEST(Synthesize, CondTakesWorstCaseBranchLatency) {
  seq::Design d("condy");
  const SeqGraphId root_id = d.add_graph("root");
  const SeqGraphId then_id = d.add_graph("then");
  const SeqGraphId else_id = d.add_graph("else");
  d.set_root(root_id);
  // then: one multiply (2 cycles); else: one add (1 cycle).
  d.graph(then_id).add_op(alu(AluOp::kMul, "m"));
  d.graph(else_id).add_op(alu(AluOp::kAdd, "a"));
  SeqOp cond;
  cond.kind = OpKind::kCond;
  cond.name = "if";
  cond.body = then_id;
  cond.else_body = else_id;
  d.graph(root_id).add_op(std::move(cond));
  const auto result = synthesize(d);
  ASSERT_TRUE(result.ok()) << result.message;
  const auto& root = result.for_graph(root_id);
  ASSERT_TRUE(root.latency.is_bounded());
  EXPECT_EQ(root.latency.cycles(), 2);  // worst case branch (mul)
}

TEST(Synthesize, CallInheritsChildLatency) {
  seq::Design d("cally");
  const SeqGraphId root_id = d.add_graph("root");
  const SeqGraphId callee_id = d.add_graph("callee");
  d.set_root(root_id);
  const OpId x = d.graph(callee_id).add_op(alu(AluOp::kAdd, "x"));
  const OpId y = d.graph(callee_id).add_op(alu(AluOp::kAdd, "y"));
  d.graph(callee_id).add_dependency(x, y);
  SeqOp call;
  call.kind = OpKind::kCall;
  call.name = "call";
  call.body = callee_id;
  d.graph(root_id).add_op(std::move(call));
  const auto result = synthesize(d);
  ASSERT_TRUE(result.ok()) << result.message;
  EXPECT_EQ(result.for_graph(root_id).latency.cycles(), 2);
}

TEST(Synthesize, TimingConstraintEnforcedAcrossBinding) {
  // Two reads of different ports, exact separation of 1 cycle
  // (the gcd pattern): min 1 and max 1 between them.
  seq::Design d("sample");
  const PortId px = d.add_port("x", 8, seq::PortDirection::kIn);
  const PortId py = d.add_port("y", 8, seq::PortDirection::kIn);
  const SeqGraphId gid = d.add_graph("root");
  d.set_root(gid);
  seq::SeqGraph& g = d.graph(gid);
  SeqOp ry;
  ry.kind = OpKind::kRead;
  ry.name = "read_y";
  ry.port = py;
  SeqOp rx;
  rx.kind = OpKind::kRead;
  rx.name = "read_x";
  rx.port = px;
  const OpId oy = g.add_op(std::move(ry));
  const OpId ox = g.add_op(std::move(rx));
  g.add_constraint({oy, ox, 1, /*is_min=*/true});
  g.add_constraint({oy, ox, 1, /*is_min=*/false});
  const auto result = synthesize(d);
  ASSERT_TRUE(result.ok()) << result.message;
  const auto& gs = result.for_graph(gid);
  const auto sx = gs.schedule.schedule.offset(VertexId(ox.value()),
                                              gs.constraint_graph.source());
  const auto sy = gs.schedule.schedule.offset(VertexId(oy.value()),
                                              gs.constraint_graph.source());
  ASSERT_TRUE(sx.has_value() && sy.has_value());
  EXPECT_EQ(*sx - *sy, 1);  // exactly one cycle apart
}

TEST(Synthesize, InconsistentConstraintsReported) {
  seq::Design d("bad");
  const SeqGraphId gid = d.add_graph("root");
  d.set_root(gid);
  seq::SeqGraph& g = d.graph(gid);
  const OpId a = g.add_op(alu(AluOp::kAdd, "a"));
  const OpId b = g.add_op(alu(AluOp::kAdd, "b"));
  g.add_dependency(a, b);
  g.add_constraint({a, b, 5, /*is_min=*/true});
  g.add_constraint({a, b, 3, /*is_min=*/false});
  const auto result = synthesize(d);
  EXPECT_EQ(result.status, SynthesisStatus::kInfeasible);
}

TEST(Synthesize, IllPosedConstraintSerializedByMakeWellposed) {
  // Fig 3(b) as a design: two waits feeding the ends of a max
  // constraint; makeWellposed must serialize rather than fail.
  seq::Design d("fix");
  const PortId p1 = d.add_port("p1", 1, seq::PortDirection::kIn);
  const PortId p2 = d.add_port("p2", 1, seq::PortDirection::kIn);
  const SeqGraphId gid = d.add_graph("root");
  d.set_root(gid);
  seq::SeqGraph& g = d.graph(gid);
  SeqOp w1;
  w1.kind = OpKind::kWait;
  w1.name = "w1";
  w1.inputs.push_back(seq::Operand::of_port(p1));
  SeqOp w2 = w1;
  w2.name = "w2";
  w2.inputs[0] = seq::Operand::of_port(p2);
  const OpId a1 = g.add_op(std::move(w1));
  const OpId a2 = g.add_op(std::move(w2));
  const OpId vi = g.add_op(alu(AluOp::kAdd, "vi"));
  const OpId vj = g.add_op(alu(AluOp::kAdd, "vj"));
  g.add_dependency(a1, vi);
  g.add_dependency(a2, vj);
  g.add_constraint({vi, vj, 4, /*is_min=*/false});
  const auto result = synthesize(d);
  ASSERT_TRUE(result.ok()) << result.message;
  EXPECT_FALSE(result.for_graph(gid).wellposed_fix.added_edges.empty());
}

TEST(ExitCodes, StableMappingForScripts) {
  // The CLI contract (relsched_cli and tests/data scripts key off
  // these): 0 ok, 1 structural, 3 infeasible, 4 ill-posed,
  // 5 inconsistent; 2 is reserved for usage errors.
  EXPECT_EQ(exit_code(SynthesisStatus::kOk), 0);
  EXPECT_EQ(exit_code(SynthesisStatus::kInvalid), 1);
  EXPECT_EQ(exit_code(SynthesisStatus::kInfeasible), 3);
  EXPECT_EQ(exit_code(SynthesisStatus::kIllPosed), 4);
  EXPECT_EQ(exit_code(SynthesisStatus::kInconsistent), 5);
}

TEST(Synthesize, InfeasibleDesignCarriesReplayableWitness) {
  // Same shape as InconsistentConstraintsReported: min 5 vs max 3
  // between dependent ops closes a positive cycle. The synthesis result
  // must carry the certificate and the graph it replays against.
  seq::Design d("bad");
  const SeqGraphId gid = d.add_graph("root");
  d.set_root(gid);
  seq::SeqGraph& g = d.graph(gid);
  const OpId a = g.add_op(alu(AluOp::kAdd, "a"));
  const OpId b = g.add_op(alu(AluOp::kAdd, "b"));
  g.add_dependency(a, b);
  g.add_constraint({a, b, 5, /*is_min=*/true});
  g.add_constraint({a, b, 3, /*is_min=*/false});
  const auto result = synthesize(d);
  ASSERT_EQ(result.status, SynthesisStatus::kInfeasible);
  ASSERT_TRUE(result.diag.has_witness()) << result.message;
  EXPECT_EQ(certify::verify_witness(result.diag_graph, result.diag),
            std::nullopt);
  EXPECT_EQ(exit_code(result.status), 3);
}

TEST(Stats, IrredundantNeverExceedsFull) {
  auto d = make_loop_design();
  const auto result = synthesize(d);
  ASSERT_TRUE(result.ok());
  const auto stats = compute_stats(result);
  EXPECT_GT(stats.total_vertices, 0);
  EXPECT_GE(stats.total_anchors, 3);  // three sources at least
  EXPECT_LE(stats.sum_irredundant, stats.sum_relevant);
  EXPECT_LE(stats.sum_relevant, stats.sum_full);
  EXPECT_LE(stats.max_offset_min, stats.max_offset_full);
  EXPECT_LE(stats.sum_max_offset_min, stats.sum_max_offset_full);
}

TEST(Report, DesignReportMentionsAllGraphs) {
  auto d = make_loop_design();
  const auto result = synthesize(d);
  ASSERT_TRUE(result.ok());
  std::ostringstream os;
  print_design_report(os, d, result);
  const std::string text = os.str();
  EXPECT_NE(text.find("root"), std::string::npos);
  EXPECT_NE(text.find("body"), std::string::npos);
  EXPECT_NE(text.find("cond"), std::string::npos);
  EXPECT_NE(text.find("loopy"), std::string::npos);
}

TEST(Report, ScheduleTablePrintsOffsets) {
  auto d = make_bounded_design();
  const auto result = synthesize(d);
  ASSERT_TRUE(result.ok());
  const auto& gs = result.for_graph(d.root());
  std::ostringstream os;
  print_schedule_table(os, gs.constraint_graph, gs.analysis,
                       gs.schedule.schedule);
  EXPECT_NE(os.str().find("sigma_source"), std::string::npos);
}

}  // namespace
}  // namespace relsched::driver

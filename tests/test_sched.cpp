#include "sched/scheduler.hpp"

#include <gtest/gtest.h>

#include "testutil.hpp"
#include "wellposed/wellposed.hpp"

namespace relsched::sched {
namespace {

using anchors::AnchorMode;
using relsched::testing::Fig2Graph;
using relsched::testing::Fig3aGraph;

TEST(Scheduler, Fig2OffsetsMatchTable2) {
  Fig2Graph f;
  const auto result = schedule(f.g);
  ASSERT_TRUE(result.ok()) << result.message;
  const RelativeSchedule& s = result.schedule;
  EXPECT_EQ(s.offset(f.a, f.v0), 0);
  EXPECT_EQ(s.offset(f.v1, f.v0), 0);
  EXPECT_EQ(s.offset(f.v2, f.v0), 2);
  EXPECT_EQ(s.offset(f.v3, f.v0), 3);
  EXPECT_EQ(s.offset(f.v3, f.a), 0);
  EXPECT_EQ(s.offset(f.v4, f.v0), 8);
  EXPECT_EQ(s.offset(f.v4, f.a), 5);
  // v2 has no offset w.r.t. a (a not in its anchor set).
  EXPECT_FALSE(s.offset(f.v2, f.a).has_value());
}

TEST(Scheduler, Fig2ConvergesInOneIteration) {
  Fig2Graph f;
  const auto result = schedule(f.g);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.iterations, 1);  // the max constraint is never violated
}

TEST(Scheduler, OffsetsEqualLongestPathsTheorem3) {
  std::mt19937 rng(31);
  int checked = 0;
  for (int trial = 0; trial < 150; ++trial) {
    auto g = relsched::testing::random_constraint_graph(rng, {});
    if (!g.validate().empty()) continue;
    if (wellposed::make_wellposed(g).status != wellposed::Status::kWellPosed) {
      continue;
    }
    const auto analysis = anchors::AnchorAnalysis::compute(g);
    const auto result = schedule(g, analysis);
    if (!result.ok()) {
      EXPECT_EQ(result.status, ScheduleStatus::kInconsistent);
      continue;
    }
    ++checked;
    for (int vi = 0; vi < g.vertex_count(); ++vi) {
      const VertexId v(vi);
      for (const auto& [a, sigma] : result.schedule.offsets(v).entries()) {
        EXPECT_EQ(sigma, analysis.length(a, v))
            << "sigma_" << a << "(" << v << ")";
      }
    }
  }
  EXPECT_GT(checked, 10);
}

TEST(Scheduler, IterationBoundIsBackwardEdgesPlusOne) {
  std::mt19937 rng(41);
  for (int trial = 0; trial < 120; ++trial) {
    relsched::testing::RandomGraphParams params;
    params.max_constraints = 4;
    params.max_constraint_slack = 2;
    auto g = relsched::testing::random_constraint_graph(rng, params);
    if (!g.validate().empty()) continue;
    if (wellposed::make_wellposed(g).status != wellposed::Status::kWellPosed) {
      continue;
    }
    const auto result = schedule(g);
    if (result.ok()) {
      EXPECT_LE(result.iterations, g.backward_edge_count() + 1);
    }
  }
}

TEST(Scheduler, ScheduleSatisfiesConstraintsForRandomProfiles) {
  std::mt19937 rng(53);
  int verified = 0;
  for (int trial = 0; trial < 80; ++trial) {
    auto g = relsched::testing::random_constraint_graph(rng, {});
    if (!g.validate().empty()) continue;
    if (wellposed::make_wellposed(g).status != wellposed::Status::kWellPosed) {
      continue;
    }
    const auto result = schedule(g);
    if (!result.ok()) continue;
    std::uniform_int_distribution<int> delay(0, 12);
    for (int p = 0; p < 10; ++p) {
      DelayProfile profile;
      for (VertexId a : g.anchors()) profile.set(a, delay(rng));
      EXPECT_EQ(find_violation(g, result.schedule, profile), std::nullopt);
      ++verified;
    }
  }
  EXPECT_GT(verified, 50);
}

TEST(Scheduler, StartTimesIdenticalAcrossAnchorModes) {
  // Theorems 4 and 6: relevant and irredundant anchor sets give the same
  // start times as full sets under minimum offsets.
  std::mt19937 rng(67);
  int checked = 0;
  for (int trial = 0; trial < 120; ++trial) {
    auto g = relsched::testing::random_constraint_graph(rng, {});
    if (!g.validate().empty()) continue;
    if (wellposed::make_wellposed(g).status != wellposed::Status::kWellPosed) {
      continue;
    }
    const auto analysis = anchors::AnchorAnalysis::compute(g);
    ScheduleOptions full_opts;
    const auto full = schedule(g, analysis, full_opts);
    if (!full.ok()) continue;
    ++checked;

    const auto relevant =
        restrict_schedule(full.schedule, analysis, AnchorMode::kRelevant);
    const auto irredundant =
        restrict_schedule(full.schedule, analysis, AnchorMode::kIrredundant);

    std::uniform_int_distribution<int> delay(0, 9);
    for (int p = 0; p < 6; ++p) {
      DelayProfile profile;
      for (VertexId a : g.anchors()) profile.set(a, delay(rng));
      const auto t_full = full.schedule.start_times(g, profile);
      EXPECT_EQ(relevant.start_times(g, profile), t_full);
      EXPECT_EQ(irredundant.start_times(g, profile), t_full);
    }
  }
  EXPECT_GT(checked, 10);
}

TEST(Scheduler, TrackedIrredundantModeMatchesFullMode) {
  // The paper (§IV-E) notes the algorithm may equally run *on* the
  // irredundant sets. Check the resulting start times agree with
  // full-mode scheduling.
  std::mt19937 rng(71);
  int checked = 0;
  for (int trial = 0; trial < 120; ++trial) {
    auto g = relsched::testing::random_constraint_graph(rng, {});
    if (!g.validate().empty()) continue;
    if (wellposed::make_wellposed(g).status != wellposed::Status::kWellPosed) {
      continue;
    }
    const auto analysis = anchors::AnchorAnalysis::compute(g);
    const auto full = schedule(g, analysis, {});
    ScheduleOptions ir_opts;
    ir_opts.mode = AnchorMode::kIrredundant;
    const auto ir = schedule(g, analysis, ir_opts);
    if (!full.ok() || !ir.ok()) {
      EXPECT_EQ(full.ok(), ir.ok());
      continue;
    }
    ++checked;
    std::uniform_int_distribution<int> delay(0, 9);
    for (int p = 0; p < 4; ++p) {
      DelayProfile profile;
      for (VertexId a : g.anchors()) profile.set(a, delay(rng));
      EXPECT_EQ(ir.schedule.start_times(g, profile),
                full.schedule.start_times(g, profile));
    }
  }
  EXPECT_GT(checked, 10);
}

TEST(Scheduler, MinimalityAgainstProfiles) {
  // A minimum relative schedule minimizes every start time. Compare the
  // sink's start time against an exhaustive Bellman-Ford bound computed
  // directly with actual delays substituted into the graph.
  Fig2Graph f;
  const auto result = schedule(f.g);
  ASSERT_TRUE(result.ok());
  for (int da = 0; da <= 6; da += 3) {
    DelayProfile profile;
    profile.set(f.a, da);
    const auto t = result.schedule.start_times(f.g, profile);
    // Longest path with actual delays: v0->v1->v2->v3->v4 = 8 or through
    // a: da + 5.
    const graph::Weight expected = std::max<graph::Weight>(8, da + 5);
    EXPECT_EQ(t[f.v4.index()], expected) << "delta(a)=" << da;
  }
}

TEST(Scheduler, DetectsInconsistentConstraints) {
  // Feasible forward structure with contradictory min/max pair:
  // min 5 and max 3 between the same vertices.
  cg::ConstraintGraph g;
  const VertexId v0 = g.add_vertex("v0", cg::Delay::bounded(0));
  const VertexId v1 = g.add_vertex("v1", cg::Delay::bounded(1));
  const VertexId v2 = g.add_vertex("v2", cg::Delay::bounded(1));
  g.add_sequencing_edge(v0, v1);
  g.add_sequencing_edge(v1, v2);
  g.add_min_constraint(v1, v2, 5);
  g.add_max_constraint(v1, v2, 3);
  // This is a positive cycle (5 - 3 > 0): detected as infeasible by the
  // prechecks.
  const auto result = schedule(g);
  EXPECT_EQ(result.status, ScheduleStatus::kInfeasible);
}

TEST(Scheduler, InconsistencyDetectedWithoutPrechecksViaIterationBound) {
  // Corollary 2: with prechecks disabled, the iteration bound |Eb|+1
  // catches inconsistent constraints.
  cg::ConstraintGraph g;
  const VertexId v0 = g.add_vertex("v0", cg::Delay::bounded(0));
  const VertexId v1 = g.add_vertex("v1", cg::Delay::bounded(1));
  const VertexId v2 = g.add_vertex("v2", cg::Delay::bounded(1));
  g.add_sequencing_edge(v0, v1);
  g.add_sequencing_edge(v1, v2);
  g.add_min_constraint(v1, v2, 5);
  g.add_max_constraint(v1, v2, 3);
  const auto analysis = anchors::AnchorAnalysis::compute_anchor_sets_only(g);
  ScheduleOptions opts;
  opts.prechecks = false;
  const auto result = schedule(g, analysis, opts);
  EXPECT_EQ(result.status, ScheduleStatus::kInconsistent);
  EXPECT_EQ(result.iterations, g.backward_edge_count() + 1);
}

TEST(Scheduler, IllPosedGraphRejected) {
  Fig3aGraph f;
  const auto result = schedule(f.g);
  EXPECT_EQ(result.status, ScheduleStatus::kIllPosed);
}

TEST(Scheduler, InvalidGraphRejected) {
  cg::ConstraintGraph g;
  const VertexId v0 = g.add_vertex("v0", cg::Delay::bounded(0));
  const VertexId v1 = g.add_vertex("v1", cg::Delay::bounded(1));
  const VertexId v2 = g.add_vertex("v2", cg::Delay::bounded(1));
  g.add_sequencing_edge(v0, v1);
  g.add_sequencing_edge(v1, v2);
  g.add_sequencing_edge(v2, v1);  // forward cycle
  EXPECT_EQ(schedule(g).status, ScheduleStatus::kInvalidGraph);
}

TEST(Scheduler, TraceRecordsIterations) {
  Fig2Graph f;
  ScheduleOptions opts;
  opts.record_trace = true;
  const auto result = schedule(f.g, opts);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.trace.size(), 1u);
  EXPECT_EQ(result.trace[0].iteration, 1);
  EXPECT_EQ(result.trace[0].violated_backward_edges, 0);
  EXPECT_EQ(result.trace[0].after_compute.offset(f.v4, f.v0), 8);
}

TEST(Scheduler, MaxConstraintForcesReadjustment) {
  // Two parallel branches joined by a max constraint: the left branch
  // must be delayed to stay within 1 cycle of the (longer) right branch
  // start.
  cg::ConstraintGraph g;
  const VertexId v0 = g.add_vertex("v0", cg::Delay::bounded(0));
  const VertexId s = g.add_vertex("slow", cg::Delay::bounded(5));
  const VertexId fast = g.add_vertex("fast", cg::Delay::bounded(1));
  const VertexId w1 = g.add_vertex("w1", cg::Delay::bounded(1));
  const VertexId w2 = g.add_vertex("w2", cg::Delay::bounded(1));
  const VertexId vn = g.add_vertex("vn", cg::Delay::bounded(0));
  g.add_sequencing_edge(v0, s);
  g.add_sequencing_edge(v0, fast);
  g.add_sequencing_edge(s, w1);
  g.add_sequencing_edge(fast, w2);
  g.add_sequencing_edge(w1, vn);
  g.add_sequencing_edge(w2, vn);
  // w2 may start at most 1 cycle before w1... i.e. w1 <= w2 + ... use:
  // max constraint from w2 to w1 would be w1 <= w2 + u. We want the
  // *other* direction: w2 >= w1 - 1 is max constraint from w1 to w2
  // reversed. Require |start(w2) - start(w1)| coupling via max from w2's
  // natural early start: sigma(w1) = 5, sigma(w2) = 1. Constrain
  // w1 <= w2 + 1 to force w2 up to 4.
  g.add_max_constraint(w2, w1, 1);
  const auto result = schedule(g);
  ASSERT_TRUE(result.ok()) << result.message;
  EXPECT_EQ(result.schedule.offset(w1, v0), 5);
  EXPECT_EQ(result.schedule.offset(w2, v0), 4);  // readjusted from 1
  EXPECT_GE(result.iterations, 2);
}

}  // namespace
}  // namespace relsched::sched

// Property tests for the certificate layer (src/certify):
//
//   - every kInfeasible / kIllPosed verdict on seeded random graphs
//     carries a witness that verify_witness accepts;
//   - mutating any element of a witness makes verify_witness reject it;
//   - check_schedule / check_products accept every schedule the
//     pipeline produces and reject any single-offset corruption.
#include "certify/certify.hpp"

#include <gtest/gtest.h>

#include <random>

#include "anchors/anchor_analysis.hpp"
#include "sched/scheduler.hpp"
#include "testutil.hpp"
#include "wellposed/wellposed.hpp"

namespace relsched::certify {
namespace {

using relsched::testing::Fig2Graph;
using relsched::testing::Fig3aGraph;
using relsched::testing::Fig3bGraph;
using relsched::testing::random_constraint_graph;
using relsched::testing::RandomGraphParams;

cg::ConstraintGraph infeasible_graph() {
  // v1 (delay 3) between the ends of a 2-cycle max constraint: positive
  // cycle v1 -> v2 -> v1 of weight 3 - 2 = +1.
  cg::ConstraintGraph g;
  const VertexId v0 = g.add_vertex("v0", cg::Delay::bounded(0));
  const VertexId v1 = g.add_vertex("v1", cg::Delay::bounded(3));
  const VertexId v2 = g.add_vertex("v2", cg::Delay::bounded(1));
  g.add_sequencing_edge(v0, v1);
  g.add_sequencing_edge(v1, v2);
  g.add_max_constraint(v1, v2, 2);
  return g;
}

TEST(PositiveCycleWitness, FoundAndReplayable) {
  const cg::ConstraintGraph g = infeasible_graph();
  const Diag diag = find_positive_cycle(g);
  ASSERT_EQ(diag.code, Code::kPositiveCycle);
  ASSERT_TRUE(diag.has_witness());
  EXPECT_EQ(verify_witness(g, diag), std::nullopt) << *verify_witness(g, diag);
}

TEST(PositiveCycleWitness, FeasibleGraphHasNone) {
  Fig2Graph f;
  EXPECT_EQ(find_positive_cycle(f.g).code, Code::kNone);
}

TEST(PositiveCycleWitness, EveryMutationRejected) {
  const cg::ConstraintGraph g = infeasible_graph();
  const Diag diag = find_positive_cycle(g);
  const auto& w = std::get<CycleWitness>(diag.witness);

  {  // wrong total
    Diag m = diag;
    std::get<CycleWitness>(m.witness).total += 1;
    EXPECT_NE(verify_witness(g, m), std::nullopt);
  }
  {  // dropped edge: walk no longer closed (or empty)
    Diag m = diag;
    std::get<CycleWitness>(m.witness).edges.pop_back();
    EXPECT_NE(verify_witness(g, m), std::nullopt);
  }
  {  // out-of-range edge id
    Diag m = diag;
    std::get<CycleWitness>(m.witness).edges.front() = EdgeId(g.edge_count());
    EXPECT_NE(verify_witness(g, m), std::nullopt);
  }
  {  // duplicated edge: breaks the closed walk
    Diag m = diag;
    auto& edges = std::get<CycleWitness>(m.witness).edges;
    edges.push_back(edges.front());
    EXPECT_NE(verify_witness(g, m), std::nullopt);
  }
  {  // witness stolen for a different (feasible) graph
    Fig2Graph f;
    Diag m = diag;
    (void)w;
    EXPECT_NE(verify_witness(f.g, m), std::nullopt);
  }
}

TEST(ContainmentWitness, Fig3bCheckCarriesDefiningPath) {
  Fig3bGraph f;
  const auto r = wellposed::check(f.g);
  ASSERT_EQ(r.status, wellposed::Status::kIllPosed);
  ASSERT_EQ(r.diag.code, Code::kContainment);
  ASSERT_TRUE(r.diag.has_witness());
  EXPECT_EQ(verify_witness(f.g, r.diag), std::nullopt)
      << *verify_witness(f.g, r.diag);
  const auto& w = std::get<ContainmentWitness>(r.diag.witness);
  EXPECT_EQ(w.backward_edge, r.violating_edge);
  EXPECT_TRUE(f.g.is_anchor(w.anchor));
}

TEST(ContainmentWitness, EveryMutationRejected) {
  Fig3bGraph f;
  const Diag diag = wellposed::check(f.g).diag;
  ASSERT_EQ(diag.code, Code::kContainment);

  {  // anchor swapped for a non-anchor
    Diag m = diag;
    std::get<ContainmentWitness>(m.witness).anchor = f.vi;
    EXPECT_NE(verify_witness(f.g, m), std::nullopt);
  }
  {  // backward edge swapped for a forward edge
    Diag m = diag;
    std::get<ContainmentWitness>(m.witness).backward_edge = EdgeId(0);
    EXPECT_NE(verify_witness(f.g, m), std::nullopt);
  }
  {  // truncated path no longer reaches the tail
    Diag m = diag;
    std::get<ContainmentWitness>(m.witness).path.pop_back();
    EXPECT_NE(verify_witness(f.g, m), std::nullopt);
  }
  {  // code flipped: containment witness claiming anchor-in-window
    Diag m = diag;
    m.code = Code::kAnchorInWindow;
    EXPECT_NE(verify_witness(f.g, m), std::nullopt);
  }
}

TEST(UnboundedCycleWitness, Fig3aMakeWellposedCarriesPath) {
  // Fig 3(a): the missing anchor 'a' sits downstream of the head vi, so
  // serializing a -> vi would close the forward cycle vi -> a -> vi.
  Fig3aGraph f;
  const cg::ConstraintGraph before = f.g;
  auto r = wellposed::make_wellposed(f.g);
  ASSERT_EQ(r.status, wellposed::Status::kIllPosed);
  ASSERT_EQ(r.diag.code, Code::kUnboundedCycle);
  // The witness verifies against the rolled-back graph with the
  // pre-failure serializing edges re-applied (none here).
  cg::ConstraintGraph wg = f.g;
  for (const auto& [a, v] : r.added_edges) wg.add_sequencing_edge(a, v);
  EXPECT_EQ(verify_witness(wg, r.diag), std::nullopt)
      << *verify_witness(wg, r.diag);

  {  // mutation: path rerouted through a missing edge list
    Diag m = r.diag;
    std::get<UnboundedCycleWitness>(m.witness).path.clear();
    EXPECT_NE(verify_witness(wg, m), std::nullopt);
  }
  {  // mutation: anchor swapped for a bounded vertex
    Diag m = r.diag;
    std::get<UnboundedCycleWitness>(m.witness).anchor = f.vj;
    EXPECT_NE(verify_witness(wg, m), std::nullopt);
  }
}

TEST(AnchorInWindowWitness, MaxConstraintFromAnchorItself) {
  // max constraint whose own head is the unbounded anchor: the anchor's
  // delay sits inside its window (Fig 3(a) variant, a == head).
  cg::ConstraintGraph g;
  const VertexId v0 = g.add_vertex("v0", cg::Delay::bounded(0));
  const VertexId a = g.add_vertex("a", cg::Delay::unbounded());
  const VertexId vj = g.add_vertex("vj", cg::Delay::bounded(1));
  g.add_sequencing_edge(v0, a);
  g.add_sequencing_edge(a, vj);
  g.add_max_constraint(a, vj, 4);

  auto r = wellposed::make_wellposed(g);
  ASSERT_EQ(r.status, wellposed::Status::kIllPosed);
  ASSERT_EQ(r.diag.code, Code::kAnchorInWindow);
  cg::ConstraintGraph wg = g;
  for (const auto& [x, v] : r.added_edges) wg.add_sequencing_edge(x, v);
  EXPECT_EQ(verify_witness(wg, r.diag), std::nullopt)
      << *verify_witness(wg, r.diag);

  // Mutation: claiming a kContainment code for an in-window anchor.
  Diag m = r.diag;
  m.code = Code::kContainment;
  EXPECT_NE(verify_witness(wg, m), std::nullopt);
}

TEST(CheckSchedule, AcceptsPaperSchedule) {
  Fig2Graph f;
  const auto analysis = anchors::AnchorAnalysis::compute(f.g);
  const auto result = sched::schedule(f.g, analysis);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(check_schedule(f.g, result.schedule).code, Code::kNone);
  EXPECT_EQ(check_products(f.g, analysis, result.schedule).code, Code::kNone);
}

TEST(CheckSchedule, CatchesLoweredOffset) {
  Fig2Graph f;
  const auto analysis = anchors::AnchorAnalysis::compute(f.g);
  auto result = sched::schedule(f.g, analysis);
  ASSERT_TRUE(result.ok());
  // v4 tracks sigma_v0 = 8 (Table II); lowering it violates the
  // sequencing edge v3 -> v4.
  result.schedule.offsets(f.v4).set(f.g.source(), 0);
  const Diag diag = check_schedule(f.g, result.schedule);
  ASSERT_EQ(diag.code, Code::kScheduleViolation);
  ASSERT_TRUE(diag.has_witness());
  EXPECT_EQ(verify_witness(f.g, diag), std::nullopt)
      << *verify_witness(f.g, diag);
}

TEST(CheckProducts, CatchesForeignAnchorEntry) {
  Fig2Graph f;
  const auto analysis = anchors::AnchorAnalysis::compute(f.g);
  auto result = sched::schedule(f.g, analysis);
  ASSERT_TRUE(result.ok());
  // v1 does not track 'a' (no path a -> v1); a spurious huge entry
  // keeps the schedule numerically valid but breaks A(v) tracking.
  result.schedule.offsets(f.v1).set(f.a, 50);
  EXPECT_NE(check_products(f.g, analysis, result.schedule).code, Code::kNone);
}

TEST(Rendering, HumanAndJsonCarryCodeAndWitness) {
  const cg::ConstraintGraph g = infeasible_graph();
  const Diag diag = find_positive_cycle(g);
  const std::string text = render(diag, g);
  EXPECT_NE(text.find("positive-cycle"), std::string::npos);
  EXPECT_NE(text.find("cycle"), std::string::npos);
  const std::string json = to_json(diag, g);
  EXPECT_NE(json.find("\"code\":\"positive-cycle\""), std::string::npos);
  EXPECT_NE(json.find("\"witness\""), std::string::npos);
}

// The headline property (seeded, deterministic): every failing verdict
// the pipeline can produce on random graphs carries a witness that
// replays cleanly, and a stock mutation of that witness is rejected.
TEST(WitnessProperty, RandomGraphVerdictsAreWitnessed) {
  std::mt19937 rng(20260806);
  RandomGraphParams params;
  params.vertex_count = 14;
  params.max_constraints = 3;
  int failures_seen = 0;
  for (int iter = 0; iter < 400; ++iter) {
    cg::ConstraintGraph g = random_constraint_graph(rng, params);
    const auto r = wellposed::check(g);
    if (r.status == wellposed::Status::kWellPosed) continue;
    ++failures_seen;
    ASSERT_FALSE(r.diag.ok()) << "failed verdict without a diag";
    ASSERT_TRUE(r.diag.has_witness())
        << "verdict '" << wellposed::to_string(r.status)
        << "' without a witness: " << r.message;
    ASSERT_EQ(verify_witness(g, r.diag), std::nullopt)
        << *verify_witness(g, r.diag) << "\n" << render(r.diag, g);

    // One type-directed mutation per witness; each must be rejected.
    Diag m = r.diag;
    if (auto* cw = std::get_if<CycleWitness>(&m.witness)) {
      cw->total += 1;
    } else if (auto* xw = std::get_if<ContainmentWitness>(&m.witness)) {
      xw->path.clear();
    } else if (auto* uw = std::get_if<UnboundedCycleWitness>(&m.witness)) {
      uw->anchor = VertexId::invalid();
    }
    EXPECT_NE(verify_witness(g, m), std::nullopt);

    // make_wellposed on the same graph: either repairs it or fails
    // with its own replayable witness (against restored + re-applied).
    cg::ConstraintGraph h = g;
    const auto fix = wellposed::make_wellposed(h);
    if (fix.status != wellposed::Status::kWellPosed) {
      ASSERT_TRUE(fix.diag.has_witness()) << fix.message;
      cg::ConstraintGraph wg = h;
      for (const auto& [a, v] : fix.added_edges) wg.add_sequencing_edge(a, v);
      EXPECT_EQ(verify_witness(wg, fix.diag), std::nullopt)
          << *verify_witness(wg, fix.diag);
    }
  }
  // The generator must actually exercise the failure paths.
  EXPECT_GT(failures_seen, 10);
}

// Schedules of random repaired graphs certify cleanly, and any single
// +-1 corruption of any tracked offset is caught by check_products.
TEST(CertifierProperty, RandomSchedulesCertifyAndRejectCorruption) {
  std::mt19937 rng(987654);
  RandomGraphParams params;
  params.vertex_count = 12;
  int schedules_checked = 0;
  for (int iter = 0; iter < 600; ++iter) {
    cg::ConstraintGraph g = random_constraint_graph(rng, params);
    if (wellposed::make_wellposed(g).status != wellposed::Status::kWellPosed) {
      continue;
    }
    const auto analysis = anchors::AnchorAnalysis::compute(g);
    auto result = sched::schedule(g, analysis);
    if (!result.ok()) continue;
    ++schedules_checked;
    ASSERT_EQ(check_products(g, analysis, result.schedule).code, Code::kNone)
        << render(check_products(g, analysis, result.schedule), g);

    // Corrupt one random tracked entry by +-1.
    std::vector<VertexId> tracked;
    for (int v = 0; v < g.vertex_count(); ++v) {
      if (!result.schedule.offsets(VertexId(v)).empty()) {
        tracked.push_back(VertexId(v));
      }
    }
    if (tracked.empty()) continue;
    const VertexId victim =
        tracked[rng() % tracked.size()];
    const auto& entries = result.schedule.offsets(victim).entries();
    const auto entry = entries[rng() % entries.size()];
    const graph::Weight delta = (rng() % 2 == 0) ? 1 : -1;
    result.schedule.offsets(victim).set(entry.first, entry.second + delta);
    EXPECT_NE(check_products(g, analysis, result.schedule).code, Code::kNone)
        << "offset corruption not caught at '" << g.vertex(victim).name << "'";
  }
  EXPECT_GT(schedules_checked, 50);
}

}  // namespace
}  // namespace relsched::certify

#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "designs/designs.hpp"
#include "hdl/lower.hpp"

namespace relsched::sim {
namespace {

struct Synthesized {
  seq::Design design;
  driver::SynthesisResult result;

  explicit Synthesized(std::string_view source)
      : design(hdl::compile_single(source)) {
    result = driver::synthesize(design);
    EXPECT_TRUE(result.ok()) << result.message;
  }
};

TEST(Stimulus, StepFunctionSemantics) {
  seq::Design d("d");
  const PortId p = d.add_port("p", 8, seq::PortDirection::kIn);
  Stimulus s;
  s.set(p, 5, 42);
  s.set(p, 10, 7);
  EXPECT_EQ(s.value_at(p, 0), 0);
  EXPECT_EQ(s.value_at(p, 5), 42);
  EXPECT_EQ(s.value_at(p, 9), 42);
  EXPECT_EQ(s.value_at(p, 10), 7);
  EXPECT_EQ(s.value_at(p, 100), 7);
  // Overwriting a step replaces it.
  s.set(p, 10, 8);
  EXPECT_EQ(s.value_at(p, 10), 8);
}

TEST(Simulator, StraightLineDataflow) {
  Synthesized s(R"(
    process p (o) {
      out port o[8];
      boolean x[8], y[8];
      x = 5;
      y = x + 3;
      write o = y * 2;
    })");
  Simulator sim(s.design, s.result, Stimulus{});
  const auto r = sim.run();
  EXPECT_FALSE(r.timed_out);
  const PortId o = *s.design.find_port("o");
  ASSERT_EQ(r.port_writes.at(o).size(), 1u);
  EXPECT_EQ(r.port_writes.at(o)[0].second, 16);
}

TEST(Simulator, WidthMaskingWrapsValues) {
  Synthesized s(R"(
    process p (o) {
      out port o[4];
      boolean x[4];
      x = 15;
      x = x + 1;   // wraps to 0 in 4 bits
      write o = x + 17;  // 0 + 17 masked to 4 bits = 1
    })");
  Simulator sim(s.design, s.result, Stimulus{});
  const auto r = sim.run();
  const PortId o = *s.design.find_port("o");
  EXPECT_EQ(r.port_writes.at(o)[0].second, 1);
}

TEST(Simulator, ParallelSwapExchangesValues) {
  Synthesized s(R"(
    process p (ox, oy) {
      out port ox[8], oy[8];
      boolean x[8], y[8];
      x = 3;
      y = 9;
      < y = x; x = y; >
      write ox = x;
      write oy = y;
    })");
  Simulator sim(s.design, s.result, Stimulus{});
  const auto r = sim.run();
  EXPECT_EQ(r.port_writes.at(*s.design.find_port("ox"))[0].second, 9);
  EXPECT_EQ(r.port_writes.at(*s.design.find_port("oy"))[0].second, 3);
}

TEST(Simulator, SequentialZeroDelayChainForwards) {
  Synthesized s(R"(
    process p (o) {
      out port o[8];
      boolean x[8], y[8];
      x = 1;
      y = x;   // same cycle, but dependency-ordered: sees the new x
      write o = y;
    })");
  Simulator sim(s.design, s.result, Stimulus{});
  const auto r = sim.run();
  EXPECT_EQ(r.port_writes.at(*s.design.find_port("o"))[0].second, 1);
}

TEST(Simulator, WhileLoopCountsDataDependently) {
  Synthesized s(R"(
    process p (n, o) {
      in port n[8];
      out port o[8];
      boolean x[8], sum[8];
      x = read(n);
      sum = 0;
      while (x != 0) {
        sum = sum + x;
        x = x - 1;
      }
      write o = sum;
    })");
  for (int n : {0, 1, 5}) {
    Stimulus stim;
    stim.set(s.design, "n", 0, n);
    Simulator sim(s.design, s.result, stim);
    const auto r = sim.run();
    EXPECT_FALSE(r.timed_out);
    EXPECT_EQ(r.port_writes.at(*s.design.find_port("o")).back().second,
              n * (n + 1) / 2)
        << "n=" << n;
  }
}

TEST(Simulator, RepeatUntilRunsBodyAtLeastOnce) {
  Synthesized s(R"(
    process p (o) {
      out port o[8];
      boolean x[8];
      x = 9;
      repeat {
        x = x - 2;
      } until (x < 4);
      write o = x;
    })");
  Simulator sim(s.design, s.result, Stimulus{});
  const auto r = sim.run();
  EXPECT_EQ(r.port_writes.at(*s.design.find_port("o"))[0].second, 3);
}

TEST(Simulator, ConditionalTakesCorrectBranch) {
  Synthesized s(R"(
    process p (sel, o) {
      in port sel;
      out port o[8];
      boolean x[8];
      if (sel) {
        x = 11;
      } else {
        x = 22;
      }
      write o = x;
    })");
  for (int sel : {0, 1}) {
    Stimulus stim;
    stim.set(s.design, "sel", 0, sel);
    Simulator sim(s.design, s.result, stim);
    const auto r = sim.run();
    EXPECT_EQ(r.port_writes.at(*s.design.find_port("o")).back().second,
              sel ? 11 : 22);
  }
}

TEST(Simulator, WaitBlocksUntilLevel) {
  Synthesized s(R"(
    process p (go, o) {
      in port go;
      out port o[8];
      wait (go);
      write o = 1;
    })");
  Stimulus stim;
  stim.set(s.design, "go", 7, 1);
  Simulator sim(s.design, s.result, stim);
  const auto r = sim.run();
  ASSERT_EQ(r.port_writes.at(*s.design.find_port("o")).size(), 1u);
  // wait completes at cycle 7; the 1-cycle write drives the port at 8.
  EXPECT_EQ(r.port_writes.at(*s.design.find_port("o"))[0].first, 8);
}

TEST(Simulator, WaitForLowLevel) {
  Synthesized s(R"(
    process p (busy, o) {
      in port busy;
      out port o[8];
      wait (!busy);
      write o = 1;
    })");
  Stimulus stim;
  stim.set(s.design, "busy", 0, 1);
  stim.set(s.design, "busy", 5, 0);
  Simulator sim(s.design, s.result, stim);
  const auto r = sim.run();
  EXPECT_EQ(r.port_writes.at(*s.design.find_port("o"))[0].first, 6);
}

TEST(Simulator, TimesOutWhenWaitNeverSatisfied) {
  Synthesized s(R"(
    process p (go, o) {
      in port go;
      out port o[8];
      wait (go);
      write o = 1;
    })");
  Simulator sim(s.design, s.result, Stimulus{});
  SimOptions opts;
  opts.max_cycles = 50;
  const auto r = sim.run(opts);
  EXPECT_TRUE(r.timed_out);
}

TEST(Simulator, ProcedureCallsExecuteSharedBody) {
  Synthesized s(R"(
    process p (o) {
      out port o[8];
      boolean x[8];
      proc twice {
        x = x * 2;
      }
      x = 3;
      call twice;
      call twice;
      write o = x;
    })");
  Simulator sim(s.design, s.result, Stimulus{});
  const auto r = sim.run();
  EXPECT_FALSE(r.timed_out);
  EXPECT_EQ(r.port_writes.at(*s.design.find_port("o"))[0].second, 12);
}

TEST(Simulator, GcdComputesCorrectValues) {
  auto design = designs::build("gcd");
  auto result = driver::synthesize(design);
  ASSERT_TRUE(result.ok()) << result.message;
  struct Case {
    int x, y, expected;
  };
  for (const Case c : {Case{12, 8, 4}, Case{35, 21, 7}, Case{13, 7, 1},
                       Case{9, 9, 9}, Case{0, 5, 0}}) {
    Stimulus stim;
    stim.set(design, "restart", 0, 1);
    stim.set(design, "restart", 3, 0);  // release restart
    stim.set(design, "xin", 0, c.x);
    stim.set(design, "yin", 0, c.y);
    Simulator sim(design, result, stim);
    const auto r = sim.run();
    ASSERT_FALSE(r.timed_out) << c.x << "," << c.y;
    const PortId res = *design.find_port("result");
    ASSERT_FALSE(r.port_writes.at(res).empty());
    EXPECT_EQ(r.port_writes.at(res).back().second, c.expected)
        << "gcd(" << c.x << "," << c.y << ")";
  }
}

TEST(Simulator, GcdSamplingWaitsForRestartToFall) {
  // The restart polling loop is a synchronization barrier: the inputs
  // must not be sampled while restart is still high (Fig 14).
  auto design = designs::build("gcd");
  auto result = driver::synthesize(design);
  ASSERT_TRUE(result.ok());
  Stimulus stim;
  stim.set(design, "restart", 0, 1);
  stim.set(design, "restart", 6, 0);
  stim.set(design, "xin", 0, 10);
  stim.set(design, "yin", 0, 4);
  Simulator sim(design, result, stim);
  const auto r = sim.run();
  ASSERT_FALSE(r.timed_out);
  for (const TraceEvent& e : r.events) {
    if (e.kind == TraceEvent::Kind::kReadSample &&
        (e.label == "xin" || e.label == "yin")) {
      EXPECT_GE(e.cycle, 6) << e.label << " sampled while restart high";
    }
  }
}

TEST(Simulator, GcdSamplesYExactlyOneCycleBeforeX) {
  auto design = designs::build("gcd");
  auto result = driver::synthesize(design);
  ASSERT_TRUE(result.ok());
  Stimulus stim;
  stim.set(design, "restart", 0, 1);
  stim.set(design, "restart", 4, 0);
  stim.set(design, "xin", 0, 30);
  stim.set(design, "yin", 0, 18);
  Simulator sim(design, result, stim);
  const auto r = sim.run();
  ASSERT_FALSE(r.timed_out);
  // Both timing constraints (min 1, max 1 between the two samples) must
  // be satisfied by the observed start times.
  EXPECT_TRUE(r.all_constraints_satisfied());
  graph::Weight y_cycle = -1, x_cycle = -1;
  for (const TraceEvent& e : r.events) {
    if (e.kind != TraceEvent::Kind::kReadSample) continue;
    if (e.label == "yin") y_cycle = e.cycle;
    if (e.label == "xin") x_cycle = e.cycle;
  }
  ASSERT_GE(y_cycle, 0);
  ASSERT_GE(x_cycle, 0);
  EXPECT_EQ(x_cycle - y_cycle, 1);  // the paper's Fig 14 behaviour
}

TEST(Simulator, ConstraintViolationDetectedWhenUnconstrainedScheduleUsed) {
  // Sanity for the monitor: a always-false max constraint of 0 cycles
  // between two reads separated by a min of 1 cannot be scheduled at
  // all, so instead check the monitor records satisfied checks.
  Synthesized s(R"(
    process p (i, o) {
      in port i[8];
      out port o[8];
      boolean a[8], b[8];
      tag t1, t2;
      constraint mintime from t1 to t2 = 2 cycles;
      t1: a = read(i);
      t2: b = read(i);
      write o = a + b;
    })");
  Stimulus stim;
  stim.set(s.design, "i", 0, 10);
  Simulator sim(s.design, s.result, stim);
  const auto r = sim.run();
  ASSERT_FALSE(r.constraint_checks.empty());
  EXPECT_TRUE(r.all_constraints_satisfied());
  for (const auto& check : r.constraint_checks) {
    EXPECT_GE(check.to_start - check.from_start, 2);
  }
}

TEST(Simulator, MultipleActivationsRestartTheProcess) {
  Synthesized s(R"(
    process p (i, o) {
      in port i[8];
      out port o[8];
      boolean x[8];
      x = read(i);
      write o = x + 1;
    })");
  Stimulus stim;
  stim.set(s.design, "i", 0, 1);
  stim.set(s.design, "i", 4, 7);
  Simulator sim(s.design, s.result, stim);
  SimOptions opts;
  opts.max_activations = 3;
  const auto r = sim.run(opts);
  EXPECT_EQ(r.activations, 3);
  const auto& writes = r.port_writes.at(*s.design.find_port("o"));
  ASSERT_EQ(writes.size(), 3u);
  EXPECT_EQ(writes.front().second, 2);
  EXPECT_EQ(writes.back().second, 8);  // re-sampled after stimulus change
}

TEST(Simulator, FinalVarsReflectLastWrites) {
  Synthesized s(R"(
    process p (o) {
      out port o[8];
      boolean x[8];
      x = 4;
      x = x * 3;
      write o = x;
    })");
  Simulator sim(s.design, s.result, Stimulus{});
  const auto r = sim.run();
  EXPECT_EQ(r.final_vars.at(*s.design.find_var("x")), 12);
}

TEST(Waveform, RendersInputsAndOutputs) {
  auto design = designs::build("gcd");
  auto result = driver::synthesize(design);
  ASSERT_TRUE(result.ok());
  Stimulus stim;
  stim.set(design, "restart", 0, 1);
  stim.set(design, "restart", 3, 0);
  stim.set(design, "xin", 0, 12);
  stim.set(design, "yin", 0, 8);
  Simulator sim(design, result, stim);
  const auto r = sim.run();
  const std::string wave = render_waveform(
      design, stim, r, {"restart", "xin", "yin", "result"}, 0, 20);
  EXPECT_NE(wave.find("restart"), std::string::npos);
  EXPECT_NE(wave.find("result"), std::string::npos);
  EXPECT_NE(wave.find("12"), std::string::npos);
}

}  // namespace
}  // namespace relsched::sim

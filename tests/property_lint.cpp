// Randomized property tests for the static analyzer:
//
//   1. strip_redundant preserves the minimum relative schedule
//      bit-for-bit (every OffsetMap identical) on randomized
//      well-posed graphs -- the analyzer's core soundness claim.
//   2. unsat_core extracts a verified, single-deletion-minimal core on
//      randomized infeasible graphs: the core replays infeasible and
//      goes feasible on ANY single core-edge removal.
//   3. IncrementalLinter::relint over random warm edit sequences is
//      render-identical to a fresh analyze() of the edited graph, and
//      actually exercises the cone path.
//   4. Fault-injection fuzz: with the engine's FaultInjector arming
//      every fault class, lint never crashes and never contradicts the
//      certified products (errors iff the graph is infeasible or
//      ill-posed).
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "engine/session.hpp"
#include "lint/incremental.hpp"
#include "lint/lint.hpp"
#include "sched/scheduler.hpp"
#include "testutil.hpp"
#include "wellposed/wellposed.hpp"

namespace relsched {
namespace {

using testing::random_constraint_graph;
using testing::RandomGraphParams;

TEST(PropertyLintStrip, ScheduleIsBitIdenticalOnRandomGraphs) {
  std::mt19937 rng(20260806);
  int stripped_graphs = 0, stripped_edges = 0, tested = 0;
  // Only a fraction of random graphs survive the well-posedness +
  // schedulability filter, so run attempts until the population bar is
  // met (the cap keeps a regression from looping forever).
  for (int attempt = 0; attempt < 5000 && tested < 200; ++attempt) {
    RandomGraphParams params;
    params.vertex_count = 8 + static_cast<int>(rng() % 10);
    params.max_constraints = 3;
    cg::ConstraintGraph g = random_constraint_graph(rng, params);
    // Seed extra redundancy: duplicate a random constraint edge so the
    // strip pass has real work on most trials.
    std::vector<EdgeId> constraints;
    for (const cg::Edge& e : g.edges()) {
      if (e.kind != cg::EdgeKind::kSequencing) constraints.push_back(e.id);
    }
    if (!constraints.empty() && rng() % 2 == 0) {
      const cg::Edge& e = g.edge(constraints[rng() % constraints.size()]);
      if (e.kind == cg::EdgeKind::kMinConstraint) {
        g.add_min_constraint(e.from, e.to, e.fixed_weight);
      } else {
        g.add_max_constraint(e.to, e.from, -e.fixed_weight);
      }
    }
    if (wellposed::make_wellposed(g).status != wellposed::Status::kWellPosed) {
      continue;  // strip_redundant requires a schedulable graph
    }
    const auto before = sched::schedule(g);
    if (!before.ok()) continue;
    ++tested;

    cg::ConstraintGraph stripped = g;
    const auto removed = lint::strip_redundant(stripped);
    ASSERT_TRUE(stripped.validate().empty());
    stripped_graphs += removed.empty() ? 0 : 1;
    stripped_edges += static_cast<int>(removed.size());

    const auto after = sched::schedule(stripped);
    ASSERT_TRUE(after.ok()) << "stripping broke schedulability";
    for (const cg::Vertex& v : g.vertices()) {
      ASSERT_EQ(before.schedule.offsets(v.id), after.schedule.offsets(v.id))
          << "offsets of " << v.name << " changed after stripping "
          << removed.size() << " edge(s)";
    }
  }
  // The acceptance bar: the identity held over a real population, not
  // a vacuous one.
  ASSERT_GE(tested, 200) << "too few schedulable graphs generated";
  ASSERT_GT(stripped_edges, 50) << "stripping never found work";
}

TEST(PropertyLintUnsatCore, CoresAreMinimalAndVerifiedOnRandomGraphs) {
  std::mt19937 rng(987654);
  int tested = 0;
  for (int trial = 0; trial < 200 && tested < 60; ++trial) {
    RandomGraphParams params;
    params.vertex_count = 7 + static_cast<int>(rng() % 8);
    params.max_constraints = 3;
    cg::ConstraintGraph g = random_constraint_graph(rng, params);
    // Make it infeasible: pick a sequencing edge and clamp its span
    // with a max bound strictly below a min bound on the same pair.
    const cg::Edge* seq = nullptr;
    for (const cg::Edge& e : g.edges()) {
      if (e.kind == cg::EdgeKind::kSequencing) {
        seq = &e;
        break;
      }
    }
    ASSERT_NE(seq, nullptr);
    // Copy the endpoints first: add_min_constraint may reallocate the
    // edge vector `seq` points into.
    const VertexId cfrom = seq->from;
    const VertexId cto = seq->to;
    const int lo = 2 + static_cast<int>(rng() % 5);
    g.add_min_constraint(cfrom, cto, lo);
    g.add_max_constraint(cfrom, cto, lo - 1 - (rng() % 2 ? 1 : 0));
    if (g.validate().empty() == false) continue;
    if (wellposed::is_feasible(g)) continue;
    ++tested;

    const lint::UnsatCore core = lint::unsat_core(g);
    ASSERT_FALSE(core.core.empty());
    ASSERT_TRUE(core.minimal);
    ASSERT_TRUE(core.verified()) << core.verification_error;
    // Replay: the reduced core graph is infeasible...
    const cg::ConstraintGraph reduced = lint::core_graph(g, core.core);
    ASSERT_FALSE(wellposed::is_feasible(reduced));
    // ...and the core is irreducible: dropping ANY single core edge
    // from the REDUCED core graph restores feasibility. (The full
    // graph may hold further independent conflicts that the deletion
    // filter discarded, so minimality is relative to the core itself.)
    for (const EdgeId e : core.core) {
      std::vector<EdgeId> sub;
      for (const EdgeId k : core.core) {
        if (k != e) sub.push_back(k);
      }
      ASSERT_TRUE(wellposed::is_feasible(lint::core_graph(g, sub)))
          << "core is not irreducible: dropping one edge stayed infeasible";
    }
  }
  ASSERT_GE(tested, 40) << "too few infeasible graphs generated";
}

/// One random constraint-only edit through the session's journaled
/// API, keeping the graph structurally valid (forward edges only go
/// from lower to higher creation index, which is a topological order
/// of the generator's spine).
void random_warm_edit(std::mt19937& rng, engine::SynthesisSession& session) {
  const cg::ConstraintGraph& g = session.graph();
  const int n = g.vertex_count();
  std::vector<EdgeId> constraints;
  for (const cg::Edge& e : g.edges()) {
    if (e.kind != cg::EdgeKind::kSequencing) constraints.push_back(e.id);
  }
  const int choice = static_cast<int>(rng() % 4);
  if (choice == 0 && !constraints.empty()) {
    const EdgeId victim = constraints[rng() % constraints.size()];
    session.remove_constraint(victim);
    return;
  }
  if (choice == 1 && !constraints.empty()) {
    const EdgeId e = constraints[rng() % constraints.size()];
    session.set_constraint_bound(e, static_cast<int>(rng() % 8));
    return;
  }
  const int to = 1 + static_cast<int>(rng() % (n - 1));
  const int from = static_cast<int>(rng() % to);
  if (choice == 2) {
    session.add_min_constraint(VertexId(from), VertexId(to),
                               static_cast<int>(rng() % 5));
  } else {
    session.add_max_constraint(VertexId(from), VertexId(to),
                               3 + static_cast<int>(rng() % 10));
  }
}

TEST(PropertyLintIncremental, RelintMatchesFreshAnalyzeUnderRandomEdits) {
  std::mt19937 rng(4242);
  long long cone_lints = 0;
  for (int trial = 0; trial < 40; ++trial) {
    RandomGraphParams params;
    params.vertex_count = 8 + static_cast<int>(rng() % 8);
    params.max_constraints = 2;
    cg::ConstraintGraph g = random_constraint_graph(rng, params);
    if (wellposed::make_wellposed(g).status != wellposed::Status::kWellPosed) {
      continue;
    }
    engine::SynthesisSession session(std::move(g));
    lint::IncrementalLinter linter;
    for (int step = 0; step < 12; ++step) {
      random_warm_edit(rng, session);
      const lint::Report& incremental = linter.relint(session);
      const engine::Products& products = session.products();
      const lint::Report fresh = lint::analyze(
          session.graph(), products.ok() ? &products.analysis : nullptr, {});
      ASSERT_EQ(lint::render_text(incremental, session.graph()),
                lint::render_text(fresh, session.graph()))
          << "trial " << trial << " step " << step
          << " warm=" << session.last_resolve_was_warm();
    }
    cone_lints += linter.cone_lints();
  }
  // The equality must have exercised the cone path, not just full
  // fallbacks. (Cold resolves and products-not-ok steps legitimately
  // fall back, so the bar is below the step count.)
  ASSERT_GT(cone_lints, 20);
}

TEST(PropertyLintFuzz, FaultInjectionNeverCrashesOrContradictsCertify) {
  std::mt19937 rng(13371337);
  const engine::FaultInjector::Kind kinds[] = {
      engine::FaultInjector::Kind::kCorruptPotential,
      engine::FaultInjector::Kind::kFlipDirtyBit,
      engine::FaultInjector::Kind::kDropJournalEntry,
      engine::FaultInjector::Kind::kTruncateAnchorRow,
  };
  for (int trial = 0; trial < 60; ++trial) {
    RandomGraphParams params;
    params.vertex_count = 7 + static_cast<int>(rng() % 8);
    cg::ConstraintGraph g = random_constraint_graph(rng, params);
    if (wellposed::make_wellposed(g).status != wellposed::Status::kWellPosed) {
      continue;
    }
    engine::SessionOptions options;
    options.certify = true;  // faults must be caught, not believed
    engine::SynthesisSession session(std::move(g), options);
    lint::IncrementalLinter linter;
    linter.relint(session);
    for (int step = 0; step < 6; ++step) {
      session.arm_fault({kinds[rng() % 4], rng()});
      random_warm_edit(rng, session);
      const lint::Report& report = linter.relint(session);
      // Certified products and the lint verdict must agree on the
      // graph's health: error findings iff the graph cannot schedule.
      const bool lint_errors = report.count(lint::Severity::kError) > 0;
      const bool feasible_and_posed =
          wellposed::is_feasible(session.graph()) &&
          wellposed::check(session.graph()).status ==
              wellposed::Status::kWellPosed;
      ASSERT_EQ(lint_errors, !feasible_and_posed)
          << lint::render_text(report, session.graph());
      // And the incremental answer still matches a fresh analyze.
      const engine::Products& products = session.products();
      const lint::Report fresh = lint::analyze(
          session.graph(), products.ok() ? &products.analysis : nullptr, {});
      ASSERT_EQ(lint::render_text(report, session.graph()),
                lint::render_text(fresh, session.graph()));
    }
  }
}

}  // namespace
}  // namespace relsched

#include "graph/algorithms.hpp"

#include <gtest/gtest.h>

#include "graph/digraph.hpp"

namespace relsched::graph {
namespace {

Digraph diamond() {
  // 0 -> 1 -> 3, 0 -> 2 -> 3 with weights 1/2/3/4.
  Digraph g(4);
  g.add_arc(0, 1, 1);
  g.add_arc(1, 3, 2);
  g.add_arc(0, 2, 3);
  g.add_arc(2, 3, 4);
  return g;
}

TEST(Digraph, AdjacencyBookkeeping) {
  const Digraph g = diamond();
  EXPECT_EQ(g.node_count(), 4);
  EXPECT_EQ(g.arc_count(), 4);
  EXPECT_EQ(g.out_arcs(0).size(), 2u);
  EXPECT_EQ(g.in_arcs(3).size(), 2u);
  EXPECT_EQ(g.arc(g.out_arcs(1)[0]).to, 3);
}

TEST(TopologicalOrder, DagProducesValidOrder) {
  const Digraph g = diamond();
  const auto order = topological_order(g);
  ASSERT_TRUE(order.has_value());
  std::vector<int> position(4);
  for (int i = 0; i < 4; ++i) position[static_cast<std::size_t>((*order)[i])] = i;
  for (const Arc& arc : g.arcs()) {
    EXPECT_LT(position[static_cast<std::size_t>(arc.from)],
              position[static_cast<std::size_t>(arc.to)]);
  }
}

TEST(TopologicalOrder, CycleReturnsNullopt) {
  Digraph g(3);
  g.add_arc(0, 1, 1);
  g.add_arc(1, 2, 1);
  g.add_arc(2, 0, 1);
  EXPECT_FALSE(topological_order(g).has_value());
  EXPECT_FALSE(is_acyclic(g));
}

TEST(LongestPaths, DiamondTakesHeavierBranch) {
  const Digraph g = diamond();
  const auto lp = longest_paths_from(g, 0);
  EXPECT_FALSE(lp.positive_cycle);
  EXPECT_EQ(lp.dist[0], 0);
  EXPECT_EQ(lp.dist[1], 1);
  EXPECT_EQ(lp.dist[2], 3);
  EXPECT_EQ(lp.dist[3], 7);  // 0->2->3
}

TEST(LongestPaths, UnreachableIsNegInf) {
  Digraph g(3);
  g.add_arc(0, 1, 5);
  const auto lp = longest_paths_from(g, 0);
  EXPECT_EQ(lp.dist[2], kNegInf);
}

TEST(LongestPaths, NegativeCycleIsAllowed) {
  // Cycle of total weight -1 must not trip positive-cycle detection.
  Digraph g(3);
  g.add_arc(0, 1, 2);
  g.add_arc(1, 2, 3);
  g.add_arc(2, 1, -4);
  const auto lp = longest_paths_from(g, 0);
  EXPECT_FALSE(lp.positive_cycle);
  EXPECT_EQ(lp.dist[1], 2);
  EXPECT_EQ(lp.dist[2], 5);
}

TEST(LongestPaths, ZeroWeightCycleIsAllowed) {
  Digraph g(3);
  g.add_arc(0, 1, 2);
  g.add_arc(1, 2, 3);
  g.add_arc(2, 1, -3);
  const auto lp = longest_paths_from(g, 0);
  EXPECT_FALSE(lp.positive_cycle);
  EXPECT_EQ(lp.dist[2], 5);
}

TEST(LongestPaths, PositiveCycleDetected) {
  Digraph g(3);
  g.add_arc(0, 1, 1);
  g.add_arc(1, 2, 1);
  g.add_arc(2, 1, 0);  // cycle 1->2->1 of weight +1
  const auto lp = longest_paths_from(g, 0);
  EXPECT_TRUE(lp.positive_cycle);
}

TEST(LongestPaths, PositiveCycleUnreachableFromSourceIgnored) {
  Digraph g(4);
  g.add_arc(0, 1, 1);
  g.add_arc(2, 3, 1);
  g.add_arc(3, 2, 1);  // positive cycle, but not reachable from 0
  const auto lp = longest_paths_from(g, 0);
  EXPECT_FALSE(lp.positive_cycle);
  EXPECT_EQ(lp.dist[1], 1);
}

TEST(DagLongestPaths, MatchesBellmanFordOnDag) {
  const Digraph g = diamond();
  const auto topo = topological_order(g);
  ASSERT_TRUE(topo.has_value());
  const auto fast = dag_longest_paths_from(g, 0, *topo);
  const auto slow = longest_paths_from(g, 0);
  EXPECT_EQ(fast, slow.dist);
}

TEST(Reachability, ForwardAndBackward) {
  Digraph g(4);
  g.add_arc(0, 1, 0);
  g.add_arc(1, 2, 0);
  const auto fwd = reachable_from(g, 0);
  EXPECT_TRUE(fwd[0] && fwd[1] && fwd[2]);
  EXPECT_FALSE(fwd[3]);
  const auto bwd = reaching(g, 2);
  EXPECT_TRUE(bwd[0] && bwd[1] && bwd[2]);
  EXPECT_FALSE(bwd[3]);
}

TEST(TransitiveClosure, MatchesPerNodeFloods) {
  const Digraph g = diamond();
  const auto closure = transitive_closure(g);
  for (int v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(closure[static_cast<std::size_t>(v)], reachable_from(g, v));
  }
}

}  // namespace
}  // namespace relsched::graph

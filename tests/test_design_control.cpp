#include "ctrl/design_control.hpp"

#include <gtest/gtest.h>

#include "designs/designs.hpp"
#include "driver/synthesis.hpp"

namespace relsched::ctrl {
namespace {

struct Synthesized {
  seq::Design design;
  driver::SynthesisResult result;

  explicit Synthesized(const char* name) : design(designs::build(name)) {
    result = driver::synthesize(design);
    EXPECT_TRUE(result.ok()) << result.message;
  }
};

TEST(DesignControl, CostIsSumOfGraphCosts) {
  Synthesized s("gcd");
  const auto control = generate_design_control(s.design, s.result);
  ASSERT_EQ(control.graphs.size(), s.result.graphs.size());
  ControlCost sum;
  for (const GraphControl& gc : control.graphs) {
    sum = sum + gc.unit.cost;
  }
  EXPECT_EQ(control.total_cost.flipflops, sum.flipflops);
  EXPECT_EQ(control.total_cost.gates, sum.gates);
}

TEST(DesignControl, VerilogHasOneModulePerGraphPlusTop) {
  Synthesized s("gcd");
  const auto control = generate_design_control(s.design, s.result);
  const std::string v = control.to_verilog(s.design, s.result, "gcd");
  std::size_t modules = 0, pos = 0;
  while ((pos = v.find("\nmodule ", pos)) != std::string::npos) {
    ++modules;
    ++pos;
  }
  if (v.rfind("module ", 0) == 0) ++modules;  // module at offset 0
  EXPECT_EQ(modules, control.graphs.size() + 1);
  EXPECT_NE(v.find("module gcd ("), std::string::npos);
  EXPECT_NE(v.find("input wire start"), std::string::npos);
}

TEST(DesignControl, RootActivatesOnStartChildrenOnParentEnables) {
  Synthesized s("gcd");
  const auto control = generate_design_control(s.design, s.result);
  const std::string v = control.to_verilog(s.design, s.result, "gcd");
  EXPECT_NE(v.find("assign act_root = start;"), std::string::npos);
  // Every non-root graph gets an activation assignment from an enable.
  for (const GraphControl& gc : control.graphs) {
    if (gc.graph == s.design.root()) continue;
    const std::string needle =
        "assign act_" + s.design.graph(gc.graph).name() + " = en_";
    EXPECT_NE(v.find(needle), std::string::npos) << needle;
  }
}

TEST(DesignControl, UnboundedAnchorsBecomeStatusInputs) {
  Synthesized s("gcd");
  const auto control = generate_design_control(s.design, s.result);
  const std::string v = control.to_verilog(s.design, s.result, "gcd");
  // The restart polling loop is an unbounded anchor in the root graph.
  EXPECT_NE(v.find("input wire status_root_while0"), std::string::npos);
  // And it is wired into the root controller's done input.
  EXPECT_NE(v.find(".done_while0(status_root_while0)"), std::string::npos);
}

TEST(DesignControl, EveryControllerInstantiatedExactlyOnce) {
  for (const char* name : {"traffic", "daio_rx", "frisc"}) {
    Synthesized s(name);
    const auto control = generate_design_control(s.design, s.result);
    const std::string v = control.to_verilog(s.design, s.result, name);
    for (const GraphControl& gc : control.graphs) {
      const std::string instance =
          " u_" + s.design.graph(gc.graph).name() + " (";
      std::size_t count = 0, pos = 0;
      while ((pos = v.find(instance, pos)) != std::string::npos) {
        ++count;
        ++pos;
      }
      EXPECT_EQ(count, 1u) << name << " " << instance;
    }
  }
}

TEST(DesignControl, CounterStylePropagates) {
  Synthesized s("length");
  ControlOptions opts;
  opts.style = ControlStyle::kCounter;
  const auto control = generate_design_control(s.design, s.result, opts);
  EXPECT_EQ(control.style, ControlStyle::kCounter);
  const std::string v = control.to_verilog(s.design, s.result, "length");
  EXPECT_NE(v.find("cnt_"), std::string::npos);
  EXPECT_EQ(v.find("sr_"), std::string::npos);
}

}  // namespace
}  // namespace relsched::ctrl

#include "seq/design.hpp"

#include <gtest/gtest.h>

#include "seq/to_constraint_graph.hpp"

namespace relsched::seq {
namespace {

SeqOp make_alu(AluOp alu, std::string name) {
  SeqOp op;
  op.kind = OpKind::kAlu;
  op.alu = alu;
  op.name = std::move(name);
  op.delay = cg::Delay::bounded(1);
  return op;
}

TEST(SeqGraph, SourceAndSinkCreatedAutomatically) {
  Design d("d");
  const SeqGraphId gid = d.add_graph("root");
  const SeqGraph& g = d.graph(gid);
  EXPECT_EQ(g.op_count(), 2);
  EXPECT_EQ(g.op(g.source()).kind, OpKind::kSource);
  EXPECT_EQ(g.op(g.sink()).kind, OpKind::kSink);
}

TEST(Design, SymbolLookup) {
  Design d("d");
  const PortId p = d.add_port("xin", 8, PortDirection::kIn);
  const VarId v = d.add_var("x", 8);
  EXPECT_EQ(d.find_port("xin"), p);
  EXPECT_EQ(d.find_var("x"), v);
  EXPECT_FALSE(d.find_port("nope").has_value());
  EXPECT_FALSE(d.find_var("nope").has_value());
  EXPECT_EQ(d.port(p).width, 8);
  EXPECT_EQ(d.var(v).name, "x");
}

TEST(Design, PostorderPutsChildrenFirst) {
  Design d("d");
  const SeqGraphId root = d.add_graph("root");
  const SeqGraphId body = d.add_graph("body");
  const SeqGraphId cond = d.add_graph("cond");
  const SeqGraphId inner = d.add_graph("inner");
  d.set_root(root);

  SeqOp loop;
  loop.kind = OpKind::kLoop;
  loop.name = "loop";
  loop.body = body;
  loop.cond_body = cond;
  d.graph(root).add_op(std::move(loop));

  SeqOp call;
  call.kind = OpKind::kCall;
  call.name = "call";
  call.body = inner;
  d.graph(body).add_op(std::move(call));

  const auto order = d.postorder();
  ASSERT_EQ(order.size(), 4u);
  const auto pos = [&order](SeqGraphId id) {
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (order[i] == id) return static_cast<int>(i);
    }
    return -1;
  };
  EXPECT_LT(pos(inner), pos(body));
  EXPECT_LT(pos(body), pos(root));
  EXPECT_LT(pos(cond), pos(root));
  EXPECT_EQ(pos(root), 3);
}

TEST(ToConstraintGraph, OpsMapOneToOne) {
  Design d("d");
  const SeqGraphId gid = d.add_graph("g");
  SeqGraph& g = d.graph(gid);
  const OpId a = g.add_op(make_alu(AluOp::kAdd, "a"));
  const OpId b = g.add_op(make_alu(AluOp::kSub, "b"));
  g.add_dependency(a, b);
  const auto cgx = to_constraint_graph(g);
  EXPECT_EQ(cgx.vertex_count(), 4);
  EXPECT_EQ(cgx.vertex(VertexId(a.value())).name, "a");
  EXPECT_EQ(cgx.vertex(VertexId(a.value())).delay, cg::Delay::bounded(1));
  EXPECT_TRUE(cgx.validate().empty());
  EXPECT_EQ(cgx.sink(), VertexId(g.sink().value()));
}

TEST(ToConstraintGraph, PolarityRestoredForDanglingOps) {
  Design d("d");
  const SeqGraphId gid = d.add_graph("g");
  SeqGraph& g = d.graph(gid);
  g.add_op(make_alu(AluOp::kAdd, "a"));  // no deps at all
  g.add_op(make_alu(AluOp::kMul, "b"));
  const auto cgx = to_constraint_graph(g);
  EXPECT_TRUE(cgx.validate().empty()) << cgx.validate().front().message;
}

TEST(ToConstraintGraph, EmptyGraphGetsSourceSinkEdge) {
  Design d("d");
  const SeqGraphId gid = d.add_graph("g");
  const auto cgx = to_constraint_graph(d.graph(gid));
  EXPECT_TRUE(cgx.validate().empty());
  EXPECT_EQ(cgx.edge_count(), 1);
}

TEST(ToConstraintGraph, ConstraintsBecomeMinMaxEdges) {
  Design d("d");
  const SeqGraphId gid = d.add_graph("g");
  SeqGraph& g = d.graph(gid);
  const OpId a = g.add_op(make_alu(AluOp::kAdd, "a"));
  const OpId b = g.add_op(make_alu(AluOp::kSub, "b"));
  g.add_dependency(a, b);
  g.add_constraint(TimingConstraint{a, b, 2, /*is_min=*/true});
  g.add_constraint(TimingConstraint{a, b, 5, /*is_min=*/false});
  const auto cgx = to_constraint_graph(g);
  EXPECT_EQ(cgx.backward_edge_count(), 1);
  int min_edges = 0;
  for (const auto& e : cgx.edges()) {
    if (e.kind == cg::EdgeKind::kMinConstraint) {
      ++min_edges;
      EXPECT_EQ(e.fixed_weight, 2);
    }
    if (e.kind == cg::EdgeKind::kMaxConstraint) EXPECT_EQ(e.fixed_weight, -5);
  }
  EXPECT_EQ(min_edges, 1);
}

TEST(ToConstraintGraph, UnboundedOpsBecomeAnchors) {
  Design d("d");
  const SeqGraphId gid = d.add_graph("g");
  SeqGraph& g = d.graph(gid);
  SeqOp wait;
  wait.kind = OpKind::kWait;
  wait.name = "wait";
  wait.delay = cg::Delay::unbounded();
  const OpId w = g.add_op(std::move(wait));
  const auto cgx = to_constraint_graph(g);
  EXPECT_TRUE(cgx.is_anchor(VertexId(w.value())));
  EXPECT_EQ(cgx.anchors().size(), 2u);  // source + wait
}

}  // namespace
}  // namespace relsched::seq

#include "base/small_set.hpp"

#include <gtest/gtest.h>

#include "base/ids.hpp"

namespace relsched {
namespace {

TEST(SmallSet, StartsEmpty) {
  SmallSet<int> s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.contains(1));
}

TEST(SmallSet, InsertKeepsSortedUnique) {
  SmallSet<int> s;
  EXPECT_TRUE(s.insert(5));
  EXPECT_TRUE(s.insert(1));
  EXPECT_TRUE(s.insert(3));
  EXPECT_FALSE(s.insert(3));  // duplicate
  EXPECT_EQ(s.items(), (std::vector<int>{1, 3, 5}));
}

TEST(SmallSet, InitializerListDeduplicates) {
  SmallSet<int> s{4, 2, 4, 1};
  EXPECT_EQ(s.items(), (std::vector<int>{1, 2, 4}));
}

TEST(SmallSet, EraseRemovesOnlyPresentElements) {
  SmallSet<int> s{1, 2, 3};
  EXPECT_TRUE(s.erase(2));
  EXPECT_FALSE(s.erase(2));
  EXPECT_EQ(s.items(), (std::vector<int>{1, 3}));
}

TEST(SmallSet, MergeReportsGrowth) {
  SmallSet<int> a{1, 3};
  SmallSet<int> b{3, 5};
  EXPECT_TRUE(a.merge(b));
  EXPECT_EQ(a.items(), (std::vector<int>{1, 3, 5}));
  EXPECT_FALSE(a.merge(b));  // already contained
}

TEST(SmallSet, SubsetSemantics) {
  SmallSet<int> a{1, 3};
  SmallSet<int> b{1, 2, 3};
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(SmallSet<int>{}.is_subset_of(a));
  EXPECT_TRUE(a.is_subset_of(a));
}

TEST(SmallSet, IntersectAndDifference) {
  SmallSet<int> a{1, 2, 3, 4};
  SmallSet<int> b{2, 4, 6};
  EXPECT_EQ(a.intersect(b).items(), (std::vector<int>{2, 4}));
  EXPECT_EQ(a.difference(b).items(), (std::vector<int>{1, 3}));
  EXPECT_EQ(b.difference(a).items(), (std::vector<int>{6}));
}

TEST(SmallSet, WorksWithStrongIds) {
  SmallSet<VertexId> s;
  s.insert(VertexId(7));
  s.insert(VertexId(2));
  EXPECT_TRUE(s.contains(VertexId(7)));
  EXPECT_FALSE(s.contains(VertexId(3)));
  EXPECT_EQ(s.items().front(), VertexId(2));
}

TEST(StrongId, InvalidAndComparisons) {
  EXPECT_FALSE(VertexId::invalid().is_valid());
  EXPECT_TRUE(VertexId(0).is_valid());
  EXPECT_LT(VertexId(1), VertexId(2));
  EXPECT_NE(VertexId(1), VertexId(2));
}

}  // namespace
}  // namespace relsched

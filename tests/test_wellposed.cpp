#include "wellposed/wellposed.hpp"

#include <gtest/gtest.h>

#include "certify/certify.hpp"
#include "testutil.hpp"

namespace relsched::wellposed {
namespace {

using relsched::testing::Fig2Graph;
using relsched::testing::Fig3aGraph;
using relsched::testing::Fig3bGraph;

TEST(Feasibility, PaperExampleIsFeasible) {
  Fig2Graph f;
  EXPECT_TRUE(is_feasible(f.g));
}

TEST(Feasibility, TightMaxConstraintMakesPositiveCycle) {
  // v0 -> v1 (delta 0*) -> v2 with delta(v1) = 3, max constraint u = 2
  // between v1 and v2: cycle v1 -> v2 -> v1 of weight 3 - 2 = +1.
  cg::ConstraintGraph g;
  const VertexId v0 = g.add_vertex("v0", cg::Delay::bounded(0));
  const VertexId v1 = g.add_vertex("v1", cg::Delay::bounded(3));
  const VertexId v2 = g.add_vertex("v2", cg::Delay::bounded(1));
  g.add_sequencing_edge(v0, v1);
  g.add_sequencing_edge(v1, v2);
  g.add_max_constraint(v1, v2, 2);
  EXPECT_FALSE(is_feasible(g));
  EXPECT_EQ(check(g).status, Status::kInfeasible);
}

TEST(Feasibility, UnboundedDelaysCountAsZero) {
  // Same shape but the gap vertex is unbounded: with delta = 0 the max
  // constraint is satisfiable, so the graph is *feasible* (Definition 6)
  // even though it is ill-posed.
  cg::ConstraintGraph g;
  const VertexId v0 = g.add_vertex("v0", cg::Delay::bounded(0));
  const VertexId a = g.add_vertex("a", cg::Delay::unbounded());
  const VertexId v2 = g.add_vertex("v2", cg::Delay::bounded(1));
  g.add_sequencing_edge(v0, a);
  g.add_sequencing_edge(a, v2);
  g.add_max_constraint(a, v2, 2);
  EXPECT_TRUE(is_feasible(g));
}

TEST(CheckWellposed, PaperExampleIsWellPosed) {
  Fig2Graph f;
  EXPECT_EQ(check(f.g).status, Status::kWellPosed);
}

TEST(CheckWellposed, Fig3aIsIllPosed) {
  Fig3aGraph f;
  const auto result = check(f.g);
  EXPECT_EQ(result.status, Status::kIllPosed);
  EXPECT_TRUE(result.violating_edge.is_valid());
}

TEST(CheckWellposed, Fig3bIsIllPosed) {
  Fig3bGraph f;
  EXPECT_EQ(check(f.g).status, Status::kIllPosed);
}

TEST(MakeWellposed, Fig3aCannotBeRepaired) {
  Fig3aGraph f;
  const auto result = make_wellposed(f.g);
  EXPECT_EQ(result.status, Status::kIllPosed);
}

TEST(MakeWellposed, Fig3bSerializesA2BeforeVi) {
  Fig3bGraph f;
  const auto result = make_wellposed(f.g);
  ASSERT_EQ(result.status, Status::kWellPosed);
  ASSERT_EQ(result.added_edges.size(), 1u);
  EXPECT_EQ(result.added_edges[0].first, f.a2);
  EXPECT_EQ(result.added_edges[0].second, f.vi);
  // The repaired graph (Fig 3(c)) must check clean.
  EXPECT_EQ(check(f.g).status, Status::kWellPosed);
}

TEST(MakeWellposed, WellPosedGraphIsUntouched) {
  Fig2Graph f;
  const int edges_before = f.g.edge_count();
  const auto result = make_wellposed(f.g);
  EXPECT_EQ(result.status, Status::kWellPosed);
  EXPECT_TRUE(result.added_edges.empty());
  EXPECT_EQ(f.g.edge_count(), edges_before);
}

TEST(MakeWellposed, FailureRollsTheGraphBack) {
  // One repairable violation (a2 missing at vi, Fig 3(b) style) plus an
  // unrepairable one (a max constraint out of the anchor a3 itself):
  // make_wellposed may serialize the first before it trips over the
  // second, but on failure the caller's graph must come back untouched
  // and the diag must replay against the restored graph with the
  // recorded serializing edges re-applied.
  cg::ConstraintGraph g;
  const VertexId v0 = g.add_vertex("v0", cg::Delay::bounded(0));
  const VertexId a1 = g.add_vertex("a1", cg::Delay::unbounded());
  const VertexId a2 = g.add_vertex("a2", cg::Delay::unbounded());
  const VertexId vi = g.add_vertex("vi", cg::Delay::bounded(1));
  const VertexId vj = g.add_vertex("vj", cg::Delay::bounded(1));
  const VertexId a3 = g.add_vertex("a3", cg::Delay::unbounded());
  const VertexId vk = g.add_vertex("vk", cg::Delay::bounded(1));
  g.add_sequencing_edge(v0, a1);
  g.add_sequencing_edge(v0, a2);
  g.add_sequencing_edge(a1, vi);
  g.add_sequencing_edge(a2, vj);
  g.add_sequencing_edge(vi, vj);
  g.add_max_constraint(vi, vj, 5);  // repairable: serialize a2 -> vi
  g.add_sequencing_edge(v0, a3);
  g.add_sequencing_edge(a3, vk);
  g.add_max_constraint(a3, vk, 5);  // unrepairable: a3 in its own window

  const cg::ConstraintGraph before = g;
  const auto result = make_wellposed(g);
  ASSERT_NE(result.status, Status::kWellPosed);
  EXPECT_EQ(g.edge_count(), before.edge_count());
  EXPECT_EQ(g.revision(), before.revision());
  EXPECT_EQ(g.to_dot(), before.to_dot());

  ASSERT_TRUE(result.diag.has_witness());
  cg::ConstraintGraph wg = g;
  for (const auto& [from, to] : result.added_edges) {
    wg.add_sequencing_edge(from, to);
  }
  EXPECT_EQ(certify::verify_witness(wg, result.diag), std::nullopt);
}

TEST(MakeWellposed, InfeasibleGraphIsRejected) {
  cg::ConstraintGraph g;
  const VertexId v0 = g.add_vertex("v0", cg::Delay::bounded(0));
  const VertexId v1 = g.add_vertex("v1", cg::Delay::bounded(3));
  const VertexId v2 = g.add_vertex("v2", cg::Delay::bounded(1));
  g.add_sequencing_edge(v0, v1);
  g.add_sequencing_edge(v1, v2);
  g.add_max_constraint(v1, v2, 2);
  EXPECT_EQ(make_wellposed(g).status, Status::kInfeasible);
}

TEST(MakeWellposed, ChainOfBackwardEdgesPropagatesAnchors) {
  // Backward-edge chain vj <- vk (two max constraints): anchors missing
  // at the head of one backward edge must propagate through the chain
  // (the paper's addEdge recursion; our fixed point).
  cg::ConstraintGraph g;
  const VertexId v0 = g.add_vertex("v0", cg::Delay::bounded(0));
  const VertexId a1 = g.add_vertex("a1", cg::Delay::unbounded());
  const VertexId a2 = g.add_vertex("a2", cg::Delay::unbounded());
  const VertexId vi = g.add_vertex("vi", cg::Delay::bounded(1));
  const VertexId vj = g.add_vertex("vj", cg::Delay::bounded(1));
  const VertexId vk = g.add_vertex("vk", cg::Delay::bounded(1));
  const VertexId vn = g.add_vertex("vn", cg::Delay::bounded(0));
  g.add_sequencing_edge(v0, a1);
  g.add_sequencing_edge(v0, a2);
  g.add_sequencing_edge(a1, vi);
  g.add_sequencing_edge(a2, vj);
  g.add_sequencing_edge(v0, vk);
  g.add_sequencing_edge(vi, vn);
  g.add_sequencing_edge(vj, vn);
  g.add_sequencing_edge(vk, vn);
  // Backward edge (vj -> vi) forces a2 into A(vi); the repaired A(vi)
  // must then propagate across backward edge (vi -> vk), forcing both
  // a1 and a2 into A(vk).
  g.add_max_constraint(vi, vj, 4);
  g.add_max_constraint(vk, vi, 4);
  const auto result = make_wellposed(g);
  ASSERT_EQ(result.status, Status::kWellPosed);
  EXPECT_EQ(check(g).status, Status::kWellPosed);
  const auto sets = anchors::find_anchor_sets(g);
  EXPECT_TRUE(sets[vi.index()].contains(a2));
  EXPECT_TRUE(sets[vk.index()].contains(a1));
  EXPECT_TRUE(sets[vk.index()].contains(a2));
}

TEST(MakeWellposed, RandomGraphsEndWellPosedOrDetectedIllPosed) {
  std::mt19937 rng(5);
  int repaired = 0;
  for (int trial = 0; trial < 60; ++trial) {
    relsched::testing::RandomGraphParams params;
    params.vertex_count = 16;
    params.unbounded_fraction = 0.3;
    params.max_constraints = 3;
    auto g = relsched::testing::random_constraint_graph(rng, params);
    if (!g.validate().empty()) continue;
    if (!is_feasible(g)) continue;
    const auto before = check(g).status;
    const auto result = make_wellposed(g);
    if (result.status == Status::kWellPosed) {
      EXPECT_EQ(check(g).status, Status::kWellPosed);
      if (before == Status::kIllPosed) ++repaired;
    } else {
      EXPECT_EQ(result.status, Status::kIllPosed);
    }
  }
  // The sweep must have exercised actual repairs.
  EXPECT_GT(repaired, 0);
}

}  // namespace
}  // namespace relsched::wellposed

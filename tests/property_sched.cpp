// Property-based tests of the scheduling theory, parameterized over
// generator seeds. Each seed produces a corpus of random constraint
// graphs; the properties are the paper's theorems:
//
//   P1 (Def 5):   a returned schedule satisfies every edge inequality
//                 for arbitrary delay profiles;
//   P2 (Thm 3):   offsets equal cone-restricted longest paths, i.e. the
//                 iterative algorithm agrees with the decomposed
//                 per-anchor scheduler;
//   P3 (Thm 8):   convergence within |Eb|+1 iterations;
//   P4 (minimality): no offset can be reduced while keeping a valid
//                 relative schedule;
//   P5 (Thms 4/6): restricting to relevant / irredundant anchor sets
//                 preserves start times for arbitrary profiles.
#include <gtest/gtest.h>

#include <random>

#include "sched/scheduler.hpp"
#include "testutil.hpp"
#include "wellposed/wellposed.hpp"

namespace relsched::sched {
namespace {

class ScheduleProperties : public ::testing::TestWithParam<unsigned> {
 protected:
  /// Yields well-posed scheduled graphs from the seed corpus.
  template <typename Fn>
  void for_each_scheduled(Fn&& fn, int trials = 80) {
    std::mt19937 rng(GetParam());
    int produced = 0;
    for (int trial = 0; trial < trials; ++trial) {
      relsched::testing::RandomGraphParams params;
      params.vertex_count = 8 + static_cast<int>(rng() % 18);
      params.unbounded_fraction = 0.15 + 0.2 * (rng() % 3);
      params.max_constraints = 1 + static_cast<int>(rng() % 4);
      auto g = relsched::testing::random_constraint_graph(rng, params);
      if (!g.validate().empty()) continue;
      if (wellposed::make_wellposed(g).status !=
          wellposed::Status::kWellPosed) {
        continue;
      }
      const auto analysis = anchors::AnchorAnalysis::compute(g);
      const auto result = schedule(g, analysis);
      if (!result.ok()) continue;
      ++produced;
      fn(g, analysis, result, rng);
    }
    EXPECT_GT(produced, 5) << "corpus too thin for seed " << GetParam();
  }
};

TEST_P(ScheduleProperties, P1_ScheduleSatisfiesAllProfiles) {
  for_each_scheduled([](const cg::ConstraintGraph& g,
                        const anchors::AnchorAnalysis&,
                        const ScheduleResult& result, std::mt19937& rng) {
    std::uniform_int_distribution<int> delay(0, 20);
    for (int p = 0; p < 8; ++p) {
      DelayProfile profile;
      for (VertexId a : g.anchors()) profile.set(a, delay(rng));
      EXPECT_EQ(find_violation(g, result.schedule, profile), std::nullopt);
    }
  });
}

TEST_P(ScheduleProperties, P2_IterativeAgreesWithDecomposed) {
  for_each_scheduled([](const cg::ConstraintGraph& g,
                        const anchors::AnchorAnalysis& analysis,
                        const ScheduleResult& result, std::mt19937&) {
    const auto reference = decomposed_schedule(g, analysis);
    for (int vi = 0; vi < g.vertex_count(); ++vi) {
      const VertexId v(vi);
      EXPECT_EQ(result.schedule.offsets(v), reference.offsets(v))
          << "vertex " << vi;
    }
  });
}

TEST_P(ScheduleProperties, P3_IterationBound) {
  for_each_scheduled([](const cg::ConstraintGraph& g,
                        const anchors::AnchorAnalysis&,
                        const ScheduleResult& result, std::mt19937&) {
    EXPECT_LE(result.iterations, g.backward_edge_count() + 1);
  });
}

TEST_P(ScheduleProperties, P4_NoOffsetCanBeReduced) {
  for_each_scheduled(
      [](const cg::ConstraintGraph& g, const anchors::AnchorAnalysis&,
         const ScheduleResult& result, std::mt19937& rng) {
        // Pick a few positive offsets, decrement each, and check the
        // mutated schedule violates some constraint under the all-zero
        // profile (minimum offsets are tight) or under some profile.
        std::vector<std::pair<VertexId, VertexId>> positive;
        for (int vi = 0; vi < g.vertex_count(); ++vi) {
          const VertexId v(vi);
          for (const auto& [a, sigma] : result.schedule.offsets(v).entries()) {
            if (sigma > 0) positive.emplace_back(v, a);
          }
        }
        if (positive.empty()) return;
        for (int k = 0; k < 3; ++k) {
          const auto& [v, a] = positive[rng() % positive.size()];
          RelativeSchedule mutated = result.schedule;
          mutated.offsets(v).set(a, *mutated.offset(v, a) - 1);
          bool violated = false;
          std::uniform_int_distribution<int> delay(0, 12);
          for (int p = 0; p < 12 && !violated; ++p) {
            DelayProfile profile;
            for (VertexId anchor : g.anchors()) {
              profile.set(anchor, p == 0 ? 0 : delay(rng));
            }
            violated = find_violation(g, mutated, profile).has_value();
          }
          // Note: lowering one offset can leave start times unchanged
          // when another anchor's term dominates for every profile we
          // try; but the *canonical* check below must fail: the offset
          // no longer equals the cone longest path, so some edge
          // inequality on offsets breaks for a suitable profile. We
          // assert the common case and tolerate domination.
          if (!violated) {
            // The mutated offset must at least be dominated: the start
            // time of v is unchanged for the all-zero profile.
            DelayProfile zero;
            EXPECT_EQ(mutated.start_times(g, zero),
                      result.schedule.start_times(g, zero));
          }
        }
      });
}

TEST_P(ScheduleProperties, P5_AnchorModeRestrictionPreservesStartTimes) {
  for_each_scheduled([](const cg::ConstraintGraph& g,
                        const anchors::AnchorAnalysis& analysis,
                        const ScheduleResult& result, std::mt19937& rng) {
    const auto relevant = restrict_schedule(result.schedule, analysis,
                                            anchors::AnchorMode::kRelevant);
    const auto irredundant = restrict_schedule(
        result.schedule, analysis, anchors::AnchorMode::kIrredundant);
    std::uniform_int_distribution<int> delay(0, 15);
    for (int p = 0; p < 6; ++p) {
      DelayProfile profile;
      for (VertexId a : g.anchors()) profile.set(a, delay(rng));
      const auto full = result.schedule.start_times(g, profile);
      EXPECT_EQ(relevant.start_times(g, profile), full);
      EXPECT_EQ(irredundant.start_times(g, profile), full);
    }
  });
}

TEST_P(ScheduleProperties, P6_SourceOffsetsAreScheduleLength) {
  // With all unbounded delays at zero, T(v) equals sigma_v0(v): the
  // relative schedule collapses to a traditional one.
  for_each_scheduled([](const cg::ConstraintGraph& g,
                        const anchors::AnchorAnalysis&,
                        const ScheduleResult& result, std::mt19937&) {
    DelayProfile zero;
    const auto start = result.schedule.start_times(g, zero);
    for (int vi = 1; vi < g.vertex_count(); ++vi) {
      const VertexId v(vi);
      const auto sigma = result.schedule.offset(v, g.source());
      if (sigma.has_value()) {
        EXPECT_GE(start[v.index()], *sigma);
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleProperties,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u));

}  // namespace
}  // namespace relsched::sched

// Parallel design-space explorer: the winner and every per-candidate
// product must be identical for any thread count (the headline
// determinism guarantee), forked candidates must match independent
// from-scratch sessions bit for bit, and the work-stealing pool must
// run every task exactly once.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "base/error.hpp"
#include "certify/certify.hpp"
#include "explore/explorer.hpp"
#include "testutil.hpp"
#include "wellposed/wellposed.hpp"

namespace relsched::explore {
namespace {

/// A random well-posed, schedulable graph to explore around.
cg::ConstraintGraph exploration_graph(unsigned seed) {
  std::mt19937 rng(seed);
  relsched::testing::RandomGraphParams params;
  params.vertex_count = 24;
  params.max_constraints = 3;
  for (int trial = 0; trial < 200; ++trial) {
    auto g = relsched::testing::random_constraint_graph(rng, params);
    if (!g.validate().empty()) continue;
    if (wellposed::make_wellposed(g).status != wellposed::Status::kWellPosed) {
      continue;
    }
    engine::SynthesisSession probe(g, {});
    if (probe.resolve().ok()) return g;
  }
  ADD_FAILURE() << "no schedulable random graph in 200 trials";
  return cg::ConstraintGraph("empty");
}

/// A design-space sweep: the unmodified baseline, per-constraint bound
/// perturbations, constraint removals, new constraints between the
/// source and the sink, and one multi-edit candidate tightening every
/// max constraint inside a single transaction. Some candidates are
/// deliberately aggressive enough to come back infeasible.
std::vector<Candidate> sweep_candidates(const cg::ConstraintGraph& g) {
  std::vector<Candidate> out;
  out.push_back({"baseline", {}});
  Candidate tighten_all{"tighten-all", {}};
  for (const cg::Edge& e : g.edges()) {
    if (e.kind == cg::EdgeKind::kSequencing) continue;
    const int bound = std::abs(e.fixed_weight);
    for (int delta : {-2, -1, 1, 2}) {
      Candidate c;
      c.label = "edge" + std::to_string(e.id.value()) + "/" +
                std::to_string(delta);
      c.edits.push_back(EditOp::set_bound(e.id, std::max(0, bound + delta)));
      out.push_back(std::move(c));
    }
    if (e.kind == cg::EdgeKind::kMaxConstraint) {
      out.push_back({"drop" + std::to_string(e.id.value()),
                     {EditOp::remove(e.id)}});
      tighten_all.edits.push_back(
          EditOp::set_bound(e.id, std::max(0, bound - 1)));
    }
  }
  if (!tighten_all.edits.empty()) out.push_back(std::move(tighten_all));
  const VertexId source(0);
  const VertexId sink(g.vertex_count() - 1);
  out.push_back({"min-span", {EditOp::add_min(source, sink, 1)}});
  out.push_back({"max-span", {EditOp::add_max(source, sink, 50)}});
  return out;
}

void expect_identical_results(const ExplorationResult& a,
                              const ExplorationResult& b,
                              const cg::ConstraintGraph& g) {
  EXPECT_EQ(a.winner, b.winner);
  ASSERT_EQ(a.candidates.size(), b.candidates.size());
  for (std::size_t i = 0; i < a.candidates.size(); ++i) {
    const CandidateResult& ca = a.candidates[i];
    const CandidateResult& cb = b.candidates[i];
    EXPECT_EQ(ca.index, cb.index);
    EXPECT_EQ(ca.feasible, cb.feasible) << ca.label;
    EXPECT_EQ(ca.score, cb.score) << ca.label;  // bit-identical, not "near"
    EXPECT_EQ(ca.error, cb.error) << ca.label;
    EXPECT_EQ(ca.products.schedule.status, cb.products.schedule.status)
        << ca.label;
    if (ca.feasible && cb.feasible) {
      for (int vi = 0; vi < g.vertex_count(); ++vi) {
        EXPECT_EQ(ca.products.schedule.schedule.offsets(VertexId(vi)),
                  cb.products.schedule.schedule.offsets(VertexId(vi)))
            << ca.label << ", v" << vi;
      }
    }
  }
}

TEST(ExplorerTest, DeterministicAcrossThreadCounts) {
  const cg::ConstraintGraph g = exploration_graph(42);
  const std::vector<Candidate> candidates = sweep_candidates(g);
  ASSERT_GT(candidates.size(), 8u);

  std::vector<ExplorationResult> results;
  for (int threads : {1, 2, 8}) {
    ExplorerOptions opts;
    opts.threads = threads;
    Explorer explorer(engine::SynthesisSession(g, {}), opts);
    EXPECT_EQ(explorer.threads(), threads);
    results.push_back(explorer.explore(candidates, min_latency()));
  }

  const ExplorationResult& ref = results.front();
  // The untouched baseline guarantees at least one feasible candidate.
  ASSERT_GE(ref.winner, 0);
  EXPECT_EQ(ref.best().index, ref.winner);
  for (std::size_t r = 1; r < results.size(); ++r) {
    expect_identical_results(ref, results[r], g);
  }
}

TEST(ExplorerTest, WinnerIsBestFeasibleScoreWithSmallestIndex) {
  const cg::ConstraintGraph g = exploration_graph(7);
  std::vector<Candidate> candidates = sweep_candidates(g);
  // Duplicate the first candidate at the end: an exact score tie that
  // must never displace the earlier index.
  candidates.push_back({"baseline-again", candidates.front().edits});

  ExplorerOptions opts;
  opts.threads = 4;
  Explorer explorer(engine::SynthesisSession(g, {}), opts);
  const ExplorationResult result = explorer.explore(candidates, min_latency());

  ASSERT_GE(result.winner, 0);
  int expected = -1;
  for (const CandidateResult& c : result.candidates) {
    if (!c.feasible) continue;
    if (expected < 0 ||
        c.score < result.candidates[static_cast<std::size_t>(expected)].score) {
      expected = c.index;
    }
  }
  EXPECT_EQ(result.winner, expected);
  const CandidateResult& front = result.candidates.front();
  const CandidateResult& dup = result.candidates.back();
  ASSERT_TRUE(front.feasible);
  ASSERT_TRUE(dup.feasible);
  EXPECT_EQ(front.score, dup.score);
  EXPECT_LT(result.winner, dup.index);  // the tie broke toward the front
}

TEST(ExplorerTest, ForkedCandidatesMatchIndependentSessions) {
  const cg::ConstraintGraph g = exploration_graph(1337);
  const std::vector<Candidate> candidates = sweep_candidates(g);
  ExplorerOptions opts;
  opts.threads = 4;
  Explorer explorer(engine::SynthesisSession(g, {}), opts);
  const ExplorationResult result = explorer.explore(candidates, min_latency());
  ASSERT_EQ(result.candidates.size(), candidates.size());

  const Objective latency = min_latency();
  for (const CandidateResult& c : result.candidates) {
    // Replay the candidate on a completely independent session (cold
    // resolve, no forking, no transaction): the explorer's warm forked
    // resolve must be bit-identical to it.
    engine::SynthesisSession fresh(g, {});
    bool api_error = false;
    try {
      for (const EditOp& op : candidates[static_cast<std::size_t>(c.index)].edits) {
        apply(fresh, op);
      }
    } catch (const ApiError&) {
      api_error = true;
    }
    if (api_error) {
      EXPECT_FALSE(c.feasible) << c.label;
      EXPECT_FALSE(c.error.empty()) << c.label;
      continue;
    }
    const engine::Products& cold = fresh.resolve();
    EXPECT_EQ(c.feasible, cold.ok()) << c.label;
    EXPECT_EQ(c.products.schedule.status, cold.schedule.status) << c.label;
    if (!c.feasible) continue;
    for (int vi = 0; vi < g.vertex_count(); ++vi) {
      EXPECT_EQ(c.products.schedule.schedule.offsets(VertexId(vi)),
                cold.schedule.schedule.offsets(VertexId(vi)))
          << c.label << ", v" << vi;
    }
    EXPECT_EQ(c.score, latency(fresh.graph(), cold)) << c.label;
    // Each candidate was one fork + one single-transaction warm resolve.
    EXPECT_EQ(c.stats.transactions, 1) << c.label;
  }
}

TEST(ExplorerTest, InfeasibleCandidatesCarryReplayableWitnesses) {
  // Tightening Fig 2's max constraint to u = 0 closes a positive cycle;
  // the candidate must come back infeasible with a witness that replays
  // against the candidate's edited graph (satellite of the certifying
  // pipeline: explorers surface per-candidate diagnostics).
  relsched::testing::Fig2Graph f;
  EdgeId max_edge = EdgeId::invalid();
  for (const cg::Edge& e : f.g.edges()) {
    if (e.kind == cg::EdgeKind::kMaxConstraint) max_edge = e.id;
  }
  ASSERT_TRUE(max_edge.is_valid());

  std::vector<Candidate> candidates;
  candidates.push_back({"baseline", {}});
  candidates.push_back({"too-tight", {EditOp::set_bound(max_edge, 0)}});
  Explorer explorer(engine::SynthesisSession(f.g, {}), {});
  const ExplorationResult result = explorer.explore(candidates, min_latency());

  EXPECT_TRUE(result.candidates[0].feasible);
  EXPECT_TRUE(result.candidates[0].diag.ok());
  const CandidateResult& bad = result.candidates[1];
  ASSERT_FALSE(bad.feasible);
  ASSERT_TRUE(bad.diag.has_witness()) << bad.error;
  cg::ConstraintGraph edited = f.g;
  edited.set_constraint_bound(max_edge, 0);
  EXPECT_EQ(certify::verify_witness(edited, bad.diag), std::nullopt);
}

TEST(ExplorerTest, BestThrowsWhenEverythingIsInfeasible) {
  ExplorationResult empty;
  EXPECT_THROW((void)empty.best(), ApiError);
}

TEST(ExplorerTest, EmptyCandidateListIsWellDefined) {
  relsched::testing::Fig2Graph fig;
  Explorer explorer(engine::SynthesisSession(std::move(fig.g), {}), {});
  const ExplorationResult result = explorer.explore({}, min_latency());
  EXPECT_EQ(result.winner, -1);
  EXPECT_TRUE(result.candidates.empty());
  EXPECT_FALSE(result.stopped_early);
  EXPECT_EQ(result.cancelled, 0);
}

TEST(ExplorerTest, DuplicateCandidatesTieBreakOnSmallestIndex) {
  relsched::testing::Fig2Graph fig;
  EdgeId max_edge = EdgeId::invalid();
  for (const cg::Edge& e : fig.g.edges()) {
    if (e.kind == cg::EdgeKind::kMaxConstraint) max_edge = e.id;
  }
  ASSERT_TRUE(max_edge.is_valid());
  // Three byte-identical candidates: identical scores, so the reduction
  // must pick index 0 -- and report identical products for all three.
  const Candidate dup{"dup", {EditOp::set_bound(max_edge, 3)}};
  Explorer explorer(engine::SynthesisSession(std::move(fig.g), {}), {});
  const ExplorationResult result =
      explorer.explore({dup, dup, dup}, min_latency());
  ASSERT_EQ(result.candidates.size(), 3u);
  EXPECT_EQ(result.winner, 0);
  for (const CandidateResult& c : result.candidates) {
    ASSERT_TRUE(c.feasible) << c.error;
    EXPECT_EQ(c.score, result.best().score);
  }
}

TEST(ExplorerTest, ExpiredDeadlineStopsBatchWithTimeoutPlaceholders) {
  const cg::ConstraintGraph g = exploration_graph(77);
  const std::vector<Candidate> candidates = sweep_candidates(g);
  ExplorerOptions opts;
  opts.threads = 2;
  opts.deadline = std::chrono::steady_clock::now() - std::chrono::seconds(1);
  Explorer explorer(engine::SynthesisSession(g, {}), opts);
  const ExplorationResult result = explorer.explore(candidates, min_latency());
  EXPECT_TRUE(result.stopped_early);
  EXPECT_EQ(result.winner, -1);
  ASSERT_EQ(result.candidates.size(), candidates.size());
  for (const CandidateResult& c : result.candidates) {
    EXPECT_FALSE(c.feasible);
    EXPECT_EQ(c.diag.code, certify::Code::kTimeout) << c.label;
  }
}

TEST(ExplorerTest, StepLimitTripsRetryAsColdThenReportsCancelled) {
  const cg::ConstraintGraph g = exploration_graph(78);
  const std::vector<Candidate> candidates = sweep_candidates(g);
  ExplorerOptions opts;
  opts.threads = 2;
  // A one-step budget cannot resolve anything: every candidate with
  // edits trips it warm, goes through the retry-as-cold pass, trips
  // again, and is reported cancelled (never silently mis-scored). The
  // zero-edit baseline needs no computation, so it survives and wins.
  opts.candidate_step_limit = 1;
  Explorer explorer(engine::SynthesisSession(g, {}), opts);
  const ExplorationResult result = explorer.explore(candidates, min_latency());
  const int edited = static_cast<int>(candidates.size()) - 1;
  EXPECT_EQ(result.winner, 0);  // the baseline
  EXPECT_EQ(result.cancelled, edited);
  EXPECT_EQ(result.retried, edited);
  for (const CandidateResult& c : result.candidates) {
    if (c.index == 0) {
      EXPECT_TRUE(c.feasible) << c.error;
      continue;
    }
    EXPECT_TRUE(c.cancelled) << c.label;
    EXPECT_TRUE(c.retried) << c.label;
    EXPECT_EQ(c.diag.code, certify::Code::kTimeout) << c.label;
  }
}

TEST(ExplorerTest, CheckpointResumeSkipsCompletedCandidates) {
  const std::string dir = ::testing::TempDir() + "relsched_explore_resume";
  std::remove(persist::explore_path(dir).c_str());
  ASSERT_TRUE(persist::ensure_dir(dir).ok());
  const cg::ConstraintGraph g = exploration_graph(79);
  const std::vector<Candidate> candidates = sweep_candidates(g);

  ExplorerOptions opts;
  opts.threads = 2;
  opts.checkpoint_dir = dir;
  opts.checkpoint_every = 4;
  Explorer first(engine::SynthesisSession(g, {}), opts);
  const ExplorationResult full = first.explore(candidates, min_latency());
  ASSERT_TRUE(full.checkpoint_error.ok()) << full.checkpoint_error.render();
  ASSERT_GE(full.winner, 0);

  // Same config, resume: every candidate loads from the checkpoint,
  // nothing recomputes, and the results are bit-identical.
  opts.resume = true;
  Explorer second(engine::SynthesisSession(g, {}), opts);
  const ExplorationResult resumed = second.explore(candidates, min_latency());
  ASSERT_TRUE(resumed.resume_error.ok()) << resumed.resume_error.render();
  EXPECT_EQ(resumed.resumed, static_cast<int>(candidates.size()));
  expect_identical_results(full, resumed, g);

  // A different candidate list must NOT match the stored checkpoint:
  // structured rejection, then full recomputation.
  std::vector<Candidate> other = candidates;
  other.pop_back();
  Explorer third(engine::SynthesisSession(g, {}), opts);
  const ExplorationResult rejected = third.explore(other, min_latency());
  EXPECT_EQ(rejected.resume_error.code, persist::ErrorCode::kStateMismatch);
  EXPECT_EQ(rejected.resumed, 0);
  ASSERT_EQ(rejected.candidates.size(), other.size());
  EXPECT_GE(rejected.winner, 0);

  // A corrupt checkpoint is rejected with a structured error, never
  // half-loaded.
  std::string bytes;
  ASSERT_TRUE(persist::read_file(persist::explore_path(dir), &bytes).ok());
  bytes[bytes.size() / 2] ^= 0x20;
  ASSERT_TRUE(
      persist::atomic_write_file(persist::explore_path(dir), bytes, false)
          .ok());
  Explorer fourth(engine::SynthesisSession(g, {}), opts);
  const ExplorationResult corrupt = fourth.explore(candidates, min_latency());
  EXPECT_FALSE(corrupt.resume_error.ok());
  EXPECT_EQ(corrupt.resumed, 0);
  expect_identical_results(full, corrupt, g);
}

TEST(WorkStealingPoolTest, RunsEveryTaskExactlyOnceAndIsReusable) {
  WorkStealingPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4);
  constexpr int kTasks = 500;
  std::vector<std::atomic<int>> hits(kTasks);
  pool.run(kTasks, [&](int i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
  });
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "task " << i;
  }
  // The pool is reusable: a second run on the same workers.
  pool.run(kTasks, [&](int i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
  });
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 2) << "task " << i;
  }
  EXPECT_GE(pool.steals(), 0);
}

TEST(WorkStealingPoolTest, EmptyRunAndThreadClamping) {
  WorkStealingPool pool(0);  // clamped to one worker
  EXPECT_EQ(pool.thread_count(), 1);
  pool.run(0, [](int) { std::abort(); });  // no tasks, no calls
  std::vector<int> order;
  pool.run(5, [&](int i) { order.push_back(i); });
  // One worker, round-robin seeding, FIFO pops: strict task order.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

// The sharing contract between the explorer's candidate batches and the
// anchor analysis running inside each candidate: a try_run() issued
// while a job is in flight -- here, from inside that job's own tasks --
// declines instead of deadlocking, and the caller stays sequential.
TEST(WorkStealingPoolTest, TryRunDeclinesWhileAJobIsInFlight) {
  WorkStealingPool pool(2);
  std::atomic<int> outer{0};
  std::atomic<int> declined{0};
  pool.run(8, [&](int) {
    outer.fetch_add(1, std::memory_order_relaxed);
    if (!pool.try_run(4, [](int) { std::abort(); })) {
      declined.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(outer.load(), 8);
  EXPECT_EQ(declined.load(), 8);

  // Idle again: try_run accepts and runs the whole batch.
  std::atomic<int> inner{0};
  EXPECT_TRUE(pool.try_run(
      4, [&](int) { inner.fetch_add(1, std::memory_order_relaxed); }));
  EXPECT_EQ(inner.load(), 4);
  // An empty batch trivially succeeds without touching the workers.
  EXPECT_TRUE(pool.try_run(0, [](int) { std::abort(); }));
}

// RELSCHED_THREADS overrides hardware_concurrency() through the strict
// base/env.hpp parsers; unparsable or out-of-range values warn and fall
// back to the hardware width.
TEST(WorkStealingPoolTest, DefaultThreadCountRespectsEnvOverride) {
  const unsigned hw = std::thread::hardware_concurrency();
  const int hardware = hw == 0 ? 1 : static_cast<int>(hw);

  ::setenv("RELSCHED_THREADS", "3", 1);
  EXPECT_EQ(WorkStealingPool::default_thread_count(), 3);
  ::setenv("RELSCHED_THREADS", "not-a-number", 1);
  EXPECT_EQ(WorkStealingPool::default_thread_count(), hardware);
  ::setenv("RELSCHED_THREADS", "0", 1);  // below the [1, 512] range
  EXPECT_EQ(WorkStealingPool::default_thread_count(), hardware);
  ::setenv("RELSCHED_THREADS", "100000", 1);  // above it
  EXPECT_EQ(WorkStealingPool::default_thread_count(), hardware);
  ::unsetenv("RELSCHED_THREADS");
  EXPECT_EQ(WorkStealingPool::default_thread_count(), hardware);
}

}  // namespace
}  // namespace relsched::explore

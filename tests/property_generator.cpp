// Properties of the synthetic mega-design generator and the
// struct-of-arrays anchor analysis it feeds.
//
//   1. Determinism: generate() is a pure function of its params -- the
//      same seed yields a bit-identical design (and graph_io text),
//      different seeds yield different designs.
//   2. Round-trip: generated designs survive to_text/from_text
//      unchanged.
//   3. Construction guarantees: every generated design validates,
//      is feasible, well-posed, and schedulable.
//   4. SoA-vs-oracle equivalence: the production bitset/flat-array
//      AnchorAnalysis matches the pre-refactor SmallSet reference
//      implementation (tests/reference_oracle.hpp) product for
//      product on generated designs.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "anchors/anchor_analysis.hpp"
#include "cg/graph_io.hpp"
#include "designs/generator.hpp"
#include "engine/session.hpp"
#include "reference_oracle.hpp"
#include "wellposed/wellposed.hpp"

namespace relsched {
namespace {

/// Parameter grid: sizes small enough for the O(|A| * |V|) oracle,
/// anchor densities high enough that anchors actually appear at those
/// sizes, widths from pure chains to wide parallel blocks.
std::vector<designs::GeneratorParams> param_grid() {
  std::vector<designs::GeneratorParams> grid;
  for (const int vertices : {40, 120, 250}) {
    for (const int width : {1, 4, 12}) {
      designs::GeneratorParams p;
      p.seed = 1000 + static_cast<std::uint64_t>(vertices) * 7 +
               static_cast<std::uint64_t>(width);
      p.vertices = vertices;
      p.width = width;
      p.anchor_density = 800;  // ~1 anchor per 12 vertices
      grid.push_back(p);
    }
  }
  return grid;
}

TEST(GeneratorProperties, SameSeedIsBitIdentical) {
  for (const designs::GeneratorParams& params : param_grid()) {
    const std::string first = cg::to_text(designs::generate(params));
    const std::string second = cg::to_text(designs::generate(params));
    EXPECT_EQ(first, second) << "seed " << params.seed;

    designs::GeneratorParams other = params;
    other.seed ^= 0x5555;
    EXPECT_NE(first, cg::to_text(designs::generate(other)))
        << "seed " << params.seed << " vs " << other.seed;
  }
}

TEST(GeneratorProperties, RoundTripsThroughGraphIo) {
  for (const designs::GeneratorParams& params : param_grid()) {
    const cg::ConstraintGraph g = designs::generate(params);
    const std::string text = cg::to_text(g);
    const auto parsed = cg::from_text(text);
    ASSERT_TRUE(parsed.ok()) << "seed " << params.seed << ": " << parsed.error;
    EXPECT_EQ(parsed.graph->vertex_count(), g.vertex_count());
    EXPECT_EQ(parsed.graph->edge_count(), g.edge_count());
    EXPECT_EQ(cg::to_text(*parsed.graph), text) << "seed " << params.seed;
  }
}

TEST(GeneratorProperties, GeneratedDesignsAreValidFeasibleWellPosed) {
  for (const designs::GeneratorParams& params : param_grid()) {
    cg::ConstraintGraph g = designs::generate(params);
    EXPECT_TRUE(g.validate().empty()) << "seed " << params.seed;
    const auto wp = wellposed::check(g);
    EXPECT_EQ(wp.status, wellposed::Status::kWellPosed)
        << "seed " << params.seed;
    engine::SessionOptions opts;
    opts.certify = true;
    engine::SynthesisSession session(std::move(g), opts);
    EXPECT_TRUE(session.resolve().ok()) << "seed " << params.seed;
  }
}

TEST(GeneratorProperties, SoAAnalysisMatchesReferenceOracle) {
  int designs_with_anchors = 0;
  for (const designs::GeneratorParams& params : param_grid()) {
    const cg::ConstraintGraph g = designs::generate(params);
    const anchors::AnchorAnalysis soa = anchors::AnchorAnalysis::compute(g);
    const testing::oracle::Analysis ref = testing::oracle::compute(g);
    ASSERT_EQ(soa.anchors(), ref.anchors) << "seed " << params.seed;
    if (ref.anchors.size() > 1) ++designs_with_anchors;

    for (int vi = 0; vi < g.vertex_count(); ++vi) {
      const VertexId v(vi);
      EXPECT_EQ(soa.anchor_set(v), ref.anchor_sets[v.index()])
          << "A(v" << vi << "), seed " << params.seed;
      EXPECT_EQ(soa.relevant_set(v), ref.relevant[v.index()])
          << "R(v" << vi << "), seed " << params.seed;
      EXPECT_EQ(soa.irredundant_set(v), ref.irredundant[v.index()])
          << "IR(v" << vi << "), seed " << params.seed;
      for (std::size_t ai = 0; ai < ref.anchors.size(); ++ai) {
        const VertexId a = ref.anchors[ai];
        EXPECT_EQ(soa.length(a, v), ref.length_rows[ai][v.index()])
            << "length(v" << a.value() << ", v" << vi << "), seed "
            << params.seed;
        EXPECT_EQ(soa.maximal_defining_path_length(a, v),
                  ref.defining_rows[ai][v.index()])
            << "defining(v" << a.value() << ", v" << vi << "), seed "
            << params.seed;
      }
      if (::testing::Test::HasFailure()) return;  // first divergence only
    }
  }
  // The grid must actually exercise multi-anchor designs, or the
  // equivalence above is vacuous.
  EXPECT_GT(designs_with_anchors, 5);
}

/// The SmallSet-based find_anchor_sets entry point was the refactor's
/// most exposed seam (the generator itself calls the bitset version);
/// pin the free function against the oracle too.
TEST(GeneratorProperties, FindAnchorSetsMatchesOracle) {
  for (const designs::GeneratorParams& params : param_grid()) {
    const cg::ConstraintGraph g = designs::generate(params);
    const anchors::AnchorSets sets = anchors::find_anchor_sets(g);
    const auto ref = testing::oracle::find_anchor_sets(g);
    for (int vi = 0; vi < g.vertex_count(); ++vi) {
      EXPECT_EQ(sets.view(VertexId(vi)), ref[static_cast<std::size_t>(vi)])
          << "A(v" << vi << "), seed " << params.seed;
    }
    if (::testing::Test::HasFailure()) return;
  }
}

}  // namespace
}  // namespace relsched

// Randomized property tests for the slack / criticality analyzer:
//
//   1. Perturb-and-recheck: every slack interval is exact in both
//      directions -- tightening a constraint by its slack leaves the
//      minimum schedule bit-identical (every OffsetMap equal);
//      tightening one past it changes the schedule or breaks the
//      graph. This is the analyzer's core soundness claim.
//   2. Every critical-subgraph extraction certifies, across all
//      verdicts the random population produces (ok / infeasible /
//      ill-posed), and stays within the full design's size.
//   3. IncrementalAnalyzer::reanalyze over random warm edit sequences
//      is JSON-identical to a fresh analyze() of the edited graph, and
//      actually exercises the cone path.
//   4. Fault-injection fuzz: with the engine's FaultInjector arming
//      every fault class, reanalyze never crashes, never contradicts
//      the certified products, and never drifts from a fresh analyze.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "analyze/analyze.hpp"
#include "analyze/incremental.hpp"
#include "engine/session.hpp"
#include "sched/scheduler.hpp"
#include "testutil.hpp"
#include "wellposed/wellposed.hpp"

namespace relsched {
namespace {

using testing::random_constraint_graph;
using testing::RandomGraphParams;

void random_warm_edit(std::mt19937& rng, engine::SynthesisSession& session) {
  const cg::ConstraintGraph& g = session.graph();
  const int n = g.vertex_count();
  std::vector<EdgeId> constraints;
  for (const cg::Edge& e : g.edges()) {
    if (e.kind != cg::EdgeKind::kSequencing) constraints.push_back(e.id);
  }
  const int choice = static_cast<int>(rng() % 4);
  if (choice == 0 && !constraints.empty()) {
    session.remove_constraint(constraints[rng() % constraints.size()]);
    return;
  }
  if (choice == 1 && !constraints.empty()) {
    const EdgeId e = constraints[rng() % constraints.size()];
    session.set_constraint_bound(e, static_cast<int>(rng() % 8));
    return;
  }
  const int to = 1 + static_cast<int>(rng() % (n - 1));
  const int from = static_cast<int>(rng() % to);
  if (choice == 2) {
    session.add_min_constraint(VertexId(from), VertexId(to),
                               static_cast<int>(rng() % 5));
  } else {
    session.add_max_constraint(VertexId(from), VertexId(to),
                               3 + static_cast<int>(rng() % 10));
  }
}

bool offsets_identical(const cg::ConstraintGraph& g,
                       const sched::ScheduleResult& a,
                       const sched::ScheduleResult& b) {
  for (const cg::Vertex& v : g.vertices()) {
    if (!(a.schedule.offsets(v.id) == b.schedule.offsets(v.id))) return false;
  }
  return true;
}

TEST(PropertyAnalyzeSlack, PerturbAndRecheckBothDirections) {
  std::mt19937 rng(20260808);
  int tested_within = 0, tested_past = 0, tested = 0;
  for (int attempt = 0; attempt < 4000 && tested < 120; ++attempt) {
    RandomGraphParams params;
    params.vertex_count = 8 + static_cast<int>(rng() % 10);
    params.max_constraints = 3;
    cg::ConstraintGraph g = random_constraint_graph(rng, params);
    if (wellposed::make_wellposed(g).status != wellposed::Status::kWellPosed) {
      continue;
    }
    const auto baseline = sched::schedule(g);
    if (!baseline.ok()) continue;
    const analyze::Report report = analyze::analyze(g);
    ASSERT_TRUE(report.ok()) << report.message;
    if (report.slacks.empty()) continue;
    ++tested;

    for (const analyze::ConstraintSlack& s : report.slacks) {
      ASSERT_GE(s.slack, 0) << analyze::render_text(report, g, 0);
      const bool is_max = s.kind == cg::EdgeKind::kMaxConstraint;

      // Within the slack: the minimum schedule must not move. (Max
      // bounds cannot go below zero, so clamp the probe.)
      const graph::Weight within =
          is_max ? std::min<graph::Weight>(s.slack, s.bound) : s.slack;
      if (within > 0) {
        cg::ConstraintGraph tightened = g;
        tightened.set_constraint_bound(
            s.edge, static_cast<int>(is_max ? s.bound - within
                                            : s.bound + within));
        const auto after = sched::schedule(tightened);
        ASSERT_TRUE(after.ok())
            << "graph " << g.name() << ": tightening " << within
            << " within slack " << s.slack << " broke schedulability";
        ASSERT_TRUE(offsets_identical(g, baseline, after))
            << "graph " << g.name() << ": schedule moved within slack";
        ++tested_within;
      }

      // One past the slack: the schedule moves or the graph breaks.
      const graph::Weight past = s.slack + 1;
      if (!is_max || past <= s.bound) {
        cg::ConstraintGraph tightened = g;
        tightened.set_constraint_bound(
            s.edge,
            static_cast<int>(is_max ? s.bound - past : s.bound + past));
        const auto after = sched::schedule(tightened);
        ASSERT_TRUE(!after.ok() || !offsets_identical(g, baseline, after))
            << "graph " << g.name()
            << ": schedule bit-identical one past slack " << s.slack;
        ++tested_past;
      }
    }
  }
  // The properties must have held over a real population.
  ASSERT_GE(tested, 60);
  ASSERT_GT(tested_within, 100);
  ASSERT_GT(tested_past, 100);
}

TEST(PropertyAnalyzeExtract, EveryExtractionCertifies) {
  std::mt19937 rng(97531);
  int ok = 0, infeasible = 0, illposed = 0;
  for (int attempt = 0; attempt < 600; ++attempt) {
    RandomGraphParams params;
    params.vertex_count = 8 + static_cast<int>(rng() % 12);
    params.max_constraints = 1 + static_cast<int>(rng() % 3);
    cg::ConstraintGraph g = random_constraint_graph(rng, params);
    // Half the population goes through make_wellposed (mostly kOk
    // verdicts), half stays raw (ill-posed verdicts too); every third
    // graph gets a positive cycle forced in (the random generator
    // keeps its max constraints feasible on purpose).
    if (attempt % 2 == 0) {
      (void)wellposed::make_wellposed(g);
    }
    if (attempt % 4 == 0) {
      for (const cg::Edge& e : g.edges()) {
        if (e.kind != cg::EdgeKind::kSequencing) continue;
        const cg::Vertex& tail = g.vertex(e.from);
        if (e.from == g.source() || !tail.delay.is_bounded() ||
            tail.delay.cycles() < 1) {
          continue;
        }
        // Separation >= delta(tail) >= 1, bound 0: a positive cycle.
        g.add_max_constraint(e.from, e.to, 0);
        break;
      }
    }
    const analyze::Report report = analyze::analyze(g);
    if (report.status == analyze::Status::kInvalid) continue;
    const analyze::Extraction ex = analyze::extract_critical(g, report);
    ASSERT_TRUE(ex.certified)
        << analyze::to_string(report.status) << ": "
        << ex.certification_error;
    ASSERT_LE(ex.subgraph.vertex_count(), ex.full_vertices);
    ASSERT_LE(ex.subgraph.edge_count(), ex.full_edges);
    switch (report.status) {
      case analyze::Status::kOk:
        ++ok;
        break;
      case analyze::Status::kInfeasible:
        ++infeasible;
        break;
      case analyze::Status::kIllPosed:
        ++illposed;
        break;
      case analyze::Status::kInvalid:
        break;
    }
  }
  // All three verdicts must have been exercised for the certification
  // claim to mean anything.
  ASSERT_GT(ok, 50);
  ASSERT_GT(infeasible, 10);
  ASSERT_GT(illposed, 10);
}

TEST(PropertyAnalyzeIncremental, ReanalyzeMatchesFreshUnderRandomEdits) {
  std::mt19937 rng(6060);
  long long cone_analyses = 0;
  for (int trial = 0; trial < 40; ++trial) {
    RandomGraphParams params;
    params.vertex_count = 8 + static_cast<int>(rng() % 8);
    params.max_constraints = 2;
    cg::ConstraintGraph g = random_constraint_graph(rng, params);
    if (wellposed::make_wellposed(g).status != wellposed::Status::kWellPosed) {
      continue;
    }
    engine::SynthesisSession session(std::move(g));
    analyze::IncrementalAnalyzer analyzer;
    for (int step = 0; step < 12; ++step) {
      random_warm_edit(rng, session);
      const analyze::Report& incremental = analyzer.reanalyze(session);
      const engine::Products& products = session.products();
      const analyze::Report fresh = analyze::analyze(
          session.graph(), products.ok() ? &products.analysis : nullptr);
      ASSERT_EQ(analyze::to_json(incremental, session.graph()),
                analyze::to_json(fresh, session.graph()))
          << "trial " << trial << " step " << step
          << " warm=" << session.last_resolve_was_warm();
    }
    cone_analyses += analyzer.cone_analyses();
  }
  // The equality must have exercised the cone path, not just full
  // fallbacks.
  ASSERT_GT(cone_analyses, 20);
}

TEST(PropertyAnalyzeFuzz, FaultInjectionNeverCrashesOrContradictsCertify) {
  std::mt19937 rng(24681357);
  const engine::FaultInjector::Kind kinds[] = {
      engine::FaultInjector::Kind::kCorruptPotential,
      engine::FaultInjector::Kind::kFlipDirtyBit,
      engine::FaultInjector::Kind::kDropJournalEntry,
      engine::FaultInjector::Kind::kTruncateAnchorRow,
  };
  for (int trial = 0; trial < 60; ++trial) {
    RandomGraphParams params;
    params.vertex_count = 7 + static_cast<int>(rng() % 8);
    cg::ConstraintGraph g = random_constraint_graph(rng, params);
    if (wellposed::make_wellposed(g).status != wellposed::Status::kWellPosed) {
      continue;
    }
    engine::SessionOptions options;
    options.certify = true;  // faults must be caught, not believed
    engine::SynthesisSession session(std::move(g), options);
    analyze::IncrementalAnalyzer analyzer;
    analyzer.reanalyze(session);
    for (int step = 0; step < 6; ++step) {
      session.arm_fault({kinds[rng() % 4], rng()});
      random_warm_edit(rng, session);
      const analyze::Report& report = analyzer.reanalyze(session);
      // The analyze verdict must agree with ground truth on the
      // graph's health, fault or no fault.
      const bool healthy =
          wellposed::is_feasible(session.graph()) &&
          wellposed::check(session.graph()).status ==
              wellposed::Status::kWellPosed;
      ASSERT_EQ(report.ok(), healthy)
          << analyze::render_text(report, session.graph(), 0);
      const engine::Products& products = session.products();
      const analyze::Report fresh = analyze::analyze(
          session.graph(), products.ok() ? &products.analysis : nullptr);
      ASSERT_EQ(analyze::to_json(report, session.graph()),
                analyze::to_json(fresh, session.graph()));
    }
  }
}

}  // namespace
}  // namespace relsched

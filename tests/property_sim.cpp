// Differential testing of the whole frontend-to-simulator pipeline:
// random structured programs are generated as a tiny AST, rendered to
// HardwareC source, pushed through compile -> synthesize -> simulate,
// and the final variable values are compared against a direct
// reference interpretation of the same AST.
//
// This cross-checks the lexer, parser, lowering (dataflow dependency
// extraction, parallel blocks, loop/cond hierarchy), binding,
// scheduling, and the simulator's value semantics in one sweep.
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <sstream>
#include <vector>

#include "driver/synthesis.hpp"
#include "hdl/lower.hpp"
#include "sim/simulator.hpp"

namespace relsched {
namespace {

constexpr int kVarCount = 5;
constexpr std::int64_t kMask = 0xFFFF;  // all variables are 16-bit

// ---- Tiny program AST --------------------------------------------------------

struct RExpr {
  enum class Kind { kNum, kVar, kBin } kind = Kind::kNum;
  std::int64_t num = 0;
  int var = 0;
  char op = '+';
  char op2 = 0;  // second char for two-character operators
  std::unique_ptr<RExpr> lhs, rhs;
};

struct RStmt {
  enum class Kind { kAssign, kSwap, kIf, kLoop } kind = Kind::kAssign;
  int var = 0;                        // assign target / swap first var
  int var2 = 0;                       // swap second var
  std::unique_ptr<RExpr> expr;        // assign rhs / if condition
  int loop_count = 0;                 // loop iterations
  int loop_var = 0;                   // loop counter variable index
  std::vector<std::unique_ptr<RStmt>> body;
  std::vector<std::unique_ptr<RStmt>> else_body;
};

// ---- Generator -----------------------------------------------------------------

class ProgramGen {
 public:
  explicit ProgramGen(unsigned seed) : rng_(seed) {}

  std::vector<std::unique_ptr<RStmt>> gen_block(int depth, int len) {
    std::vector<std::unique_ptr<RStmt>> block;
    for (int i = 0; i < len; ++i) block.push_back(gen_stmt(depth));
    return block;
  }

 private:
  std::unique_ptr<RExpr> gen_expr(int depth) {
    auto e = std::make_unique<RExpr>();
    const int pick = static_cast<int>(rng_() % (depth > 0 ? 6 : 2));
    if (pick <= 0) {
      e->kind = RExpr::Kind::kNum;
      e->num = static_cast<std::int64_t>(rng_() % 300);
    } else if (pick == 1) {
      e->kind = RExpr::Kind::kVar;
      e->var = static_cast<int>(rng_() % kVarCount);
    } else {
      e->kind = RExpr::Kind::kBin;
      static const std::pair<char, char> kOps[] = {
          {'+', 0},   {'-', 0},   {'*', 0},   {'&', 0},  {'|', 0},
          {'^', 0},   {'<', '<'}, {'>', '>'}, {'=', '='}, {'!', '='},
          {'<', 0},   {'<', '='}, {'>', 0},   {'>', '='}, {'/', 0},
          {'%', 0},
      };
      const auto& op = kOps[rng_() % (sizeof(kOps) / sizeof(kOps[0]))];
      e->op = op.first;
      e->op2 = op.second;
      e->lhs = gen_expr(depth - 1);
      if (e->op == '<' && e->op2 == '<') {
        // keep shift amounts small and constant
        e->rhs = std::make_unique<RExpr>();
        e->rhs->kind = RExpr::Kind::kNum;
        e->rhs->num = static_cast<std::int64_t>(rng_() % 4);
      } else if (e->op == '>' && e->op2 == '>') {
        e->rhs = std::make_unique<RExpr>();
        e->rhs->kind = RExpr::Kind::kNum;
        e->rhs->num = static_cast<std::int64_t>(rng_() % 4);
      } else {
        e->rhs = gen_expr(depth - 1);
      }
    }
    return e;
  }

  std::unique_ptr<RStmt> gen_stmt(int depth) {
    auto s = std::make_unique<RStmt>();
    const int pick = static_cast<int>(rng_() % (depth > 0 ? 8 : 5));
    if (pick <= 3) {
      s->kind = RStmt::Kind::kAssign;
      s->var = static_cast<int>(rng_() % kVarCount);
      s->expr = gen_expr(2);
    } else if (pick == 4) {
      s->kind = RStmt::Kind::kSwap;
      s->var = static_cast<int>(rng_() % kVarCount);
      s->var2 = static_cast<int>(rng_() % kVarCount);
      if (s->var2 == s->var) s->var2 = (s->var + 1) % kVarCount;
    } else if (pick <= 6) {
      s->kind = RStmt::Kind::kIf;
      s->expr = gen_expr(2);
      s->body = gen_block(depth - 1, 1 + static_cast<int>(rng_() % 2));
      if (rng_() % 2 == 0) {
        s->else_body = gen_block(depth - 1, 1);
      }
    } else {
      s->kind = RStmt::Kind::kLoop;
      s->loop_count = 1 + static_cast<int>(rng_() % 4);
      // One counter per nesting level: a nested loop must never clobber
      // its enclosing loop's counter, or neither terminates.
      s->loop_var = depth - 1;
      s->body = gen_block(depth - 1, 1 + static_cast<int>(rng_() % 2));
    }
    return s;
  }

  std::mt19937 rng_;
};

// ---- Rendering to HardwareC -------------------------------------------------------

void render_expr(const RExpr& e, std::ostream& os) {
  switch (e.kind) {
    case RExpr::Kind::kNum:
      os << e.num;
      return;
    case RExpr::Kind::kVar:
      os << "x" << e.var;
      return;
    case RExpr::Kind::kBin:
      os << "(";
      render_expr(*e.lhs, os);
      os << " " << e.op;
      if (e.op2 != 0) os << e.op2;
      os << " ";
      render_expr(*e.rhs, os);
      os << ")";
      return;
  }
}

void render_block(const std::vector<std::unique_ptr<RStmt>>& block,
                  std::ostream& os);

void render_stmt(const RStmt& s, std::ostream& os) {
  switch (s.kind) {
    case RStmt::Kind::kAssign:
      os << "x" << s.var << " = ";
      render_expr(*s.expr, os);
      os << ";\n";
      return;
    case RStmt::Kind::kSwap:
      os << "< x" << s.var << " = x" << s.var2 << "; x" << s.var2 << " = x"
         << s.var << "; >\n";
      return;
    case RStmt::Kind::kIf:
      os << "if (";
      render_expr(*s.expr, os);
      os << ") {\n";
      render_block(s.body, os);
      os << "}";
      if (!s.else_body.empty()) {
        os << " else {\n";
        render_block(s.else_body, os);
        os << "}";
      }
      os << "\n";
      return;
    case RStmt::Kind::kLoop:
      os << "c" << s.loop_var << " = " << s.loop_count << ";\n";
      os << "while (c" << s.loop_var << " != 0) {\n";
      render_block(s.body, os);
      os << "c" << s.loop_var << " = c" << s.loop_var << " - 1;\n}\n";
      return;
  }
}

void render_block(const std::vector<std::unique_ptr<RStmt>>& block,
                  std::ostream& os) {
  for (const auto& s : block) render_stmt(*s, os);
}

std::string render_program(const std::vector<std::unique_ptr<RStmt>>& block) {
  std::ostringstream os;
  os << "process fuzz (";
  for (int i = 0; i < kVarCount; ++i) os << (i ? ", " : "") << "o" << i;
  os << ") {\n";
  for (int i = 0; i < kVarCount; ++i) os << "out port o" << i << "[16];\n";
  os << "boolean ";
  for (int i = 0; i < kVarCount; ++i) os << (i ? ", " : "") << "x" << i << "[16]";
  os << ";\nboolean c0[8], c1[8], c2[8];\n";
  for (int i = 0; i < kVarCount; ++i) os << "x" << i << " = " << 3 * i + 1 << ";\n";
  render_block(block, os);
  for (int i = 0; i < kVarCount; ++i) os << "write o" << i << " = x" << i << ";\n";
  os << "}\n";
  return os.str();
}

// ---- Reference interpreter -----------------------------------------------------------

struct RefState {
  std::int64_t x[kVarCount] = {};
  std::int64_t c[3] = {};
};

std::int64_t ref_expr(const RExpr& e, const RefState& st) {
  switch (e.kind) {
    case RExpr::Kind::kNum:
      return e.num;
    case RExpr::Kind::kVar:
      return st.x[e.var];
    case RExpr::Kind::kBin: {
      const std::int64_t a = ref_expr(*e.lhs, st);
      const std::int64_t b = ref_expr(*e.rhs, st);
      if (e.op == '+' && e.op2 == 0) return a + b;
      if (e.op == '-' && e.op2 == 0) return a - b;
      if (e.op == '*' && e.op2 == 0) return a * b;
      if (e.op == '&' && e.op2 == 0) return a & b;
      if (e.op == '|' && e.op2 == 0) return a | b;
      if (e.op == '^' && e.op2 == 0) return a ^ b;
      if (e.op == '<' && e.op2 == '<') return b >= 63 ? 0 : a << b;
      if (e.op == '>' && e.op2 == '>') return b >= 63 ? 0 : a >> b;
      if (e.op == '=' && e.op2 == '=') return a == b ? 1 : 0;
      if (e.op == '!' && e.op2 == '=') return a != b ? 1 : 0;
      if (e.op == '<' && e.op2 == '=') return a <= b ? 1 : 0;
      if (e.op == '>' && e.op2 == '=') return a >= b ? 1 : 0;
      if (e.op == '<') return a < b ? 1 : 0;
      if (e.op == '>') return a > b ? 1 : 0;
      if (e.op == '/') return b == 0 ? 0 : a / b;
      if (e.op == '%') return b == 0 ? 0 : a % b;
      ADD_FAILURE() << "unknown op";
      return 0;
    }
  }
  return 0;
}

void ref_block(const std::vector<std::unique_ptr<RStmt>>& block, RefState& st);

void ref_stmt(const RStmt& s, RefState& st) {
  switch (s.kind) {
    case RStmt::Kind::kAssign:
      st.x[s.var] = ref_expr(*s.expr, st) & kMask;
      return;
    case RStmt::Kind::kSwap:
      std::swap(st.x[s.var], st.x[s.var2]);
      return;
    case RStmt::Kind::kIf:
      if (ref_expr(*s.expr, st) != 0) {
        ref_block(s.body, st);
      } else {
        ref_block(s.else_body, st);
      }
      return;
    case RStmt::Kind::kLoop:
      st.c[s.loop_var] = s.loop_count;
      while (st.c[s.loop_var] != 0) {
        ref_block(s.body, st);
        st.c[s.loop_var] = (st.c[s.loop_var] - 1) & 0xFF;
      }
      return;
  }
}

void ref_block(const std::vector<std::unique_ptr<RStmt>>& block, RefState& st) {
  for (const auto& s : block) ref_stmt(*s, st);
}

// ---- The property -------------------------------------------------------------------

class SimDifferential : public ::testing::TestWithParam<unsigned> {};

TEST_P(SimDifferential, PipelineMatchesReferenceInterpreter) {
  ProgramGen gen(GetParam());
  const auto program = gen.gen_block(/*depth=*/2, /*len=*/6);
  const std::string source = render_program(program);
  SCOPED_TRACE(source);

  // Reference execution.
  RefState ref;
  for (int i = 0; i < kVarCount; ++i) ref.x[i] = 3 * i + 1;
  ref_block(program, ref);

  // Pipeline execution.
  auto compiled = hdl::compile(source);
  ASSERT_TRUE(compiled.ok()) << compiled.diagnostics.to_string();
  ASSERT_EQ(compiled.designs.size(), 1u);
  seq::Design& design = compiled.designs.front();
  const auto result = driver::synthesize(design);
  ASSERT_TRUE(result.ok()) << result.message;
  sim::Simulator simulator(design, result, sim::Stimulus{});
  const auto run = simulator.run();
  ASSERT_FALSE(run.timed_out);

  for (int i = 0; i < kVarCount; ++i) {
    const PortId port = *design.find_port("o" + std::to_string(i));
    ASSERT_FALSE(run.port_writes.at(port).empty());
    EXPECT_EQ(run.port_writes.at(port).back().second, ref.x[i])
        << "variable x" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimDifferential,
                         ::testing::Range(1000u, 1030u));

}  // namespace
}  // namespace relsched

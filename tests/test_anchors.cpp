#include "anchors/anchor_analysis.hpp"

#include <gtest/gtest.h>

#include "testutil.hpp"

namespace relsched::anchors {
namespace {

using relsched::testing::Fig2Graph;

/// Feasibility without pulling in the wellposed library: no positive
/// cycle reachable from the source with unbounded weights set to 0.
bool graph_is_feasible(const cg::ConstraintGraph& g) {
  return !graph::longest_paths_from(g.project_full(), g.source().value())
              .positive_cycle;
}

TEST(FindAnchorSets, MatchesTable2OfThePaper) {
  Fig2Graph f;
  const auto sets = find_anchor_sets(f.g);
  EXPECT_TRUE(sets[f.v0.index()].empty());
  EXPECT_EQ(sets[f.a.index()], (AnchorSet{f.v0}));
  EXPECT_EQ(sets[f.v1.index()], (AnchorSet{f.v0}));
  EXPECT_EQ(sets[f.v2.index()], (AnchorSet{f.v0}));
  EXPECT_EQ(sets[f.v3.index()], (AnchorSet{f.v0, f.a}));
  EXPECT_EQ(sets[f.v4.index()], (AnchorSet{f.v0, f.a}));
}

TEST(FindAnchorSets, SourceInEverySetOfPolarGraph) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const auto g = relsched::testing::random_constraint_graph(rng, {});
    if (!g.validate().empty()) continue;
    const auto sets = find_anchor_sets(g);
    for (int vi = 1; vi < g.vertex_count(); ++vi) {
      EXPECT_TRUE(sets[static_cast<std::size_t>(vi)].contains(g.source()))
          << "vertex " << vi;
    }
    EXPECT_TRUE(sets[g.source().index()].empty());
  }
}

TEST(FindAnchorSets, ForwardEdgesSatisfyContainment) {
  // By the definition of anchor sets, A(tail) subset-of A(head) union
  // {tail} holds along every forward edge.
  std::mt19937 rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const auto g = relsched::testing::random_constraint_graph(rng, {});
    const auto sets = find_anchor_sets(g);
    for (const auto& e : g.edges()) {
      if (!cg::is_forward(e.kind)) continue;
      EXPECT_TRUE(sets[e.from.index()].is_subset_of(sets[e.to.index()]));
    }
  }
}

TEST(AnchorAnalysis, RelevantSetsOfFig2) {
  Fig2Graph f;
  const auto a = AnchorAnalysis::compute(f.g);
  // v3: v0 relevant via v0->v1->v2->v3 (one unbounded edge, the first);
  //     a relevant via the single unbounded edge a->v3.
  EXPECT_EQ(a.relevant_set(f.v3), (AnchorSet{f.v0, f.a}));
  // v2 is only reachable from v0 (its anchor set is {v0}).
  EXPECT_EQ(a.relevant_set(f.v2), (AnchorSet{f.v0}));
  // a itself: only v0.
  EXPECT_EQ(a.relevant_set(f.a), (AnchorSet{f.v0}));
}

TEST(AnchorAnalysis, IrredundantSetsOfFig2) {
  Fig2Graph f;
  const auto a = AnchorAnalysis::compute(f.g);
  // length(v0,v3) = 3 > length(v0,a) + length(a,v3) = 0: v0 stays.
  EXPECT_EQ(a.irredundant_set(f.v3), (AnchorSet{f.v0, f.a}));
  EXPECT_EQ(a.irredundant_set(f.v4), (AnchorSet{f.v0, f.a}));
}

TEST(AnchorAnalysis, CascadedAnchorIsDropped) {
  // Fig 4 of the paper: a chain v0 -> a -> b -> vi of anchors makes both
  // v0 and a redundant for vi (b dominates).
  cg::ConstraintGraph g;
  const VertexId v0 = g.add_vertex("v0", cg::Delay::bounded(0));
  const VertexId a = g.add_vertex("a", cg::Delay::unbounded());
  const VertexId b = g.add_vertex("b", cg::Delay::unbounded());
  const VertexId vi = g.add_vertex("vi", cg::Delay::bounded(1));
  g.add_sequencing_edge(v0, a);
  g.add_sequencing_edge(a, b);
  g.add_sequencing_edge(b, vi);
  const auto an = AnchorAnalysis::compute(g);
  EXPECT_EQ(an.anchor_set(vi), (AnchorSet{v0, a, b}));
  // Only b has a defining path to vi; v0's and a's paths hit another
  // unbounded edge first.
  EXPECT_EQ(an.relevant_set(vi), (AnchorSet{b}));
  EXPECT_EQ(an.irredundant_set(vi), (AnchorSet{b}));
}

TEST(AnchorAnalysis, Fig8RedundantVersusIrredundant) {
  // Fig 8(a): anchor a has a side path a -> v1 -> v3 whose length (2)
  // beats the path through anchor b (0): a is irredundant for v3.
  {
    cg::ConstraintGraph g;
    const VertexId v0 = g.add_vertex("v0", cg::Delay::bounded(0));
    const VertexId a = g.add_vertex("a", cg::Delay::unbounded());
    const VertexId v1 = g.add_vertex("v1", cg::Delay::bounded(2));
    const VertexId b = g.add_vertex("b", cg::Delay::unbounded());
    const VertexId v3 = g.add_vertex("v3", cg::Delay::bounded(1));
    g.add_sequencing_edge(v0, a);
    g.add_sequencing_edge(a, v1);
    g.add_sequencing_edge(v1, v3);
    g.add_sequencing_edge(a, b);
    g.add_sequencing_edge(b, v3);
    const auto an = AnchorAnalysis::compute(g);
    EXPECT_TRUE(an.irredundant_set(v3).contains(a));
    EXPECT_TRUE(an.irredundant_set(v3).contains(b));
  }
  // Fig 8(b): the side path is shorter than the path through b
  // (which carries bounded weight 3 after b): a becomes redundant.
  {
    cg::ConstraintGraph g;
    const VertexId v0 = g.add_vertex("v0", cg::Delay::bounded(0));
    const VertexId a = g.add_vertex("a", cg::Delay::unbounded());
    const VertexId v1 = g.add_vertex("v1", cg::Delay::bounded(1));
    const VertexId b = g.add_vertex("b", cg::Delay::unbounded());
    const VertexId v2 = g.add_vertex("v2", cg::Delay::bounded(3));
    const VertexId v3 = g.add_vertex("v3", cg::Delay::bounded(1));
    g.add_sequencing_edge(v0, a);
    g.add_sequencing_edge(a, v1);
    g.add_sequencing_edge(v1, v3);  // length via side path: 1 + 1 = 2
    g.add_sequencing_edge(a, b);
    g.add_sequencing_edge(b, v2);
    g.add_sequencing_edge(v2, v3);  // length after b: 0 + 3 = 3
    const auto an = AnchorAnalysis::compute(g);
    EXPECT_TRUE(an.relevant_set(v3).contains(a));
    EXPECT_FALSE(an.irredundant_set(v3).contains(a));
    EXPECT_TRUE(an.irredundant_set(v3).contains(b));
  }
}

TEST(AnchorAnalysis, IrredundantSubsetOfRelevantSubsetOfFullOnWellPosed) {
  // Theorem 5 / Lemma 4 (requires well-posedness; generator graphs with
  // slack max constraints are usually well-posed -- skip those that are
  // not by checking containment of R in A first).
  std::mt19937 rng(23);
  int checked = 0;
  for (int trial = 0; trial < 120; ++trial) {
    const auto g = relsched::testing::random_constraint_graph(rng, {});
    if (!g.validate().empty()) continue;
    if (!graph_is_feasible(g)) continue;
    const auto an = AnchorAnalysis::compute(g);
    bool well_posed = true;
    for (const auto& e : g.edges()) {
      if (cg::is_forward(e.kind)) continue;
      if (!an.anchor_set(e.from).is_subset_of(an.anchor_set(e.to))) {
        well_posed = false;
      }
    }
    if (!well_posed) continue;
    ++checked;
    for (int vi = 0; vi < g.vertex_count(); ++vi) {
      const VertexId v(vi);
      EXPECT_TRUE(an.irredundant_set(v).is_subset_of(an.relevant_set(v)));
      EXPECT_TRUE(an.relevant_set(v).is_subset_of(an.anchor_set(v)));
    }
  }
  EXPECT_GT(checked, 5);  // the sweep must actually exercise graphs
}

TEST(AnchorAnalysis, LengthsMatchLongestPaths) {
  Fig2Graph f;
  const auto an = AnchorAnalysis::compute(f.g);
  EXPECT_EQ(an.length(f.v0, f.v3), 3);
  EXPECT_EQ(an.length(f.a, f.v3), 0);
  EXPECT_EQ(an.length(f.v0, f.v4), 8);
  EXPECT_EQ(an.length(f.a, f.v4), 5);
  EXPECT_EQ(an.length(f.a, f.v1), graph::kNegInf);  // no path a -> v1
}

TEST(AnchorAnalysis, EveryNonSourceVertexHasARelevantAnchor) {
  std::mt19937 rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    const auto g = relsched::testing::random_constraint_graph(rng, {});
    if (!g.validate().empty()) continue;
    if (!graph_is_feasible(g)) continue;
    const auto an = AnchorAnalysis::compute(g);
    for (int vi = 1; vi < g.vertex_count(); ++vi) {
      EXPECT_FALSE(an.relevant_set(VertexId(vi)).empty()) << "vertex " << vi;
      EXPECT_FALSE(an.irredundant_set(VertexId(vi)).empty()) << "vertex " << vi;
    }
  }
}

}  // namespace
}  // namespace relsched::anchors

// Property tests of the graph kernel against brute-force oracles on
// small random graphs.
#include <gtest/gtest.h>

#include <random>

#include "graph/algorithms.hpp"
#include "graph/digraph.hpp"

namespace relsched::graph {
namespace {

Digraph random_digraph(std::mt19937& rng, int n, double edge_prob,
                       int min_w, int max_w) {
  Digraph g(n);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_int_distribution<int> weight(min_w, max_w);
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      if (u != v && unit(rng) < edge_prob) g.add_arc(u, v, weight(rng));
    }
  }
  return g;
}

Digraph random_dag(std::mt19937& rng, int n, double edge_prob, int min_w,
                   int max_w) {
  Digraph g(n);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_int_distribution<int> weight(min_w, max_w);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (unit(rng) < edge_prob) g.add_arc(u, v, weight(rng));
    }
  }
  return g;
}

/// Brute-force longest path by DFS over simple paths (exponential; only
/// for tiny graphs). Returns kNegInf when unreachable.
Weight brute_longest(const Digraph& g, int from, int to,
                     std::vector<bool>& on_path) {
  if (from == to) return 0;
  Weight best = kNegInf;
  on_path[static_cast<std::size_t>(from)] = true;
  for (int arc_idx : g.out_arcs(from)) {
    const Arc& arc = g.arc(arc_idx);
    if (on_path[static_cast<std::size_t>(arc.to)]) continue;
    const Weight rest = brute_longest(g, arc.to, to, on_path);
    if (rest != kNegInf) best = std::max(best, arc.weight + rest);
  }
  on_path[static_cast<std::size_t>(from)] = false;
  return best;
}

class GraphKernelProperties : public ::testing::TestWithParam<unsigned> {};

TEST_P(GraphKernelProperties, DagLongestPathMatchesBruteForce) {
  std::mt19937 rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    const Digraph g = random_dag(rng, 8, 0.4, -3, 6);
    const auto topo = topological_order(g);
    ASSERT_TRUE(topo.has_value());
    const auto dist = dag_longest_paths_from(g, 0, *topo);
    for (int v = 0; v < g.node_count(); ++v) {
      std::vector<bool> on_path(static_cast<std::size_t>(g.node_count()),
                                false);
      EXPECT_EQ(dist[static_cast<std::size_t>(v)], brute_longest(g, 0, v, on_path))
          << "node " << v;
    }
  }
}

TEST_P(GraphKernelProperties, BellmanFordMatchesBruteForceWithoutPositiveCycles) {
  // Nonpositive weights cannot form positive cycles, so longest *walks*
  // equal longest simple paths and the brute force is a valid oracle.
  std::mt19937 rng(GetParam() + 1000);
  for (int trial = 0; trial < 25; ++trial) {
    const Digraph g = random_digraph(rng, 7, 0.3, -4, 0);
    const auto lp = longest_paths_from(g, 0);
    ASSERT_FALSE(lp.positive_cycle);
    for (int v = 0; v < g.node_count(); ++v) {
      std::vector<bool> on_path(static_cast<std::size_t>(g.node_count()),
                                false);
      EXPECT_EQ(lp.dist[static_cast<std::size_t>(v)],
                brute_longest(g, 0, v, on_path))
          << "node " << v;
    }
  }
}

TEST_P(GraphKernelProperties, PositiveCycleDetectionMatchesCycleSearch) {
  // Oracle: a positive cycle reachable from node 0 exists iff some
  // closed walk improves on itself -- approximate with per-node
  // brute-force: any node u reachable from 0 with a simple cycle
  // through u of positive total weight.
  std::mt19937 rng(GetParam() + 2000);
  for (int trial = 0; trial < 20; ++trial) {
    const Digraph g = random_digraph(rng, 6, 0.3, -2, 3);
    const auto lp = longest_paths_from(g, 0);
    const auto reach = reachable_from(g, 0);
    bool oracle = false;
    for (int u = 0; u < g.node_count() && !oracle; ++u) {
      if (!reach[static_cast<std::size_t>(u)]) continue;
      // Longest simple cycle through u: max over out-arcs (u,v) of
      // w(u,v) + longest simple path v -> u.
      for (int arc_idx : g.out_arcs(u)) {
        const Arc& arc = g.arc(arc_idx);
        std::vector<bool> on_path(static_cast<std::size_t>(g.node_count()),
                                  false);
        on_path[static_cast<std::size_t>(u)] = false;
        const Weight back = brute_longest(g, arc.to, u, on_path);
        if (back != kNegInf && arc.weight + back > 0) {
          oracle = true;
          break;
        }
      }
    }
    EXPECT_EQ(lp.positive_cycle, oracle) << "trial " << trial;
  }
}

TEST_P(GraphKernelProperties, ReachabilityMatchesClosure) {
  std::mt19937 rng(GetParam() + 3000);
  for (int trial = 0; trial < 20; ++trial) {
    const Digraph g = random_digraph(rng, 9, 0.25, 0, 1);
    const auto closure = transitive_closure(g);
    for (int u = 0; u < g.node_count(); ++u) {
      for (int v = 0; v < g.node_count(); ++v) {
        // reaching() is the transpose of reachable_from().
        EXPECT_EQ(closure[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)],
                  reaching(g, v)[static_cast<std::size_t>(u)]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphKernelProperties,
                         ::testing::Values(10u, 20u, 30u));

}  // namespace
}  // namespace relsched::graph

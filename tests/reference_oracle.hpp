// Pre-refactor reference implementations of the anchor analysis.
//
// These are the SmallSet-and-vector algorithms the anchors library
// shipped before the struct-of-arrays/bitset refactor, kept verbatim as
// an independent oracle: property_generator.cpp recomputes every
// analysis product with them and requires the production BitMatrix
// implementation to match bit for bit on generated designs. They are
// deliberately naive -- O(|A| * |V|) sets, per-anchor Bellman-Ford --
// and must stay that way: an oracle sharing the production layout
// would share its bugs.
//
// Test-only; never linked into the library.
#pragma once

#include <algorithm>
#include <vector>

#include "base/error.hpp"
#include "base/small_set.hpp"
#include "cg/constraint_graph.hpp"
#include "graph/algorithms.hpp"

namespace relsched::testing::oracle {

using AnchorSet = SmallSet<VertexId>;

/// findAnchorSet (paper §IV-A): dataflow in topological order; A(v) is
/// the union over forward in-edges (u, v) of A(u), plus {u} when the
/// edge carries the unbounded weight delta(u).
inline std::vector<AnchorSet> find_anchor_sets(const cg::ConstraintGraph& g) {
  const graph::Digraph forward = g.project_forward();
  const auto topo = graph::topological_order(forward);
  RELSCHED_CHECK(topo.has_value(), "oracle requires an acyclic Gf");

  std::vector<AnchorSet> sets(static_cast<std::size_t>(g.vertex_count()));
  for (int node : *topo) {
    const VertexId v(node);
    for (EdgeId eid : g.in_edges(v)) {
      const cg::Edge& e = g.edge(eid);
      if (!cg::is_forward(e.kind)) continue;
      sets[v.index()].merge(sets[e.from.index()]);
      if (g.weight(eid).unbounded) sets[v.index()].insert(e.from);
    }
  }
  return sets;
}

/// relevantAnchor (paper §IV-D): from each anchor, follow its unbounded
/// out-edges once, then propagate along bounded-weight edges of the
/// full graph, adding the anchor to R(v) of every vertex visited.
inline std::vector<AnchorSet> relevant_sets(const cg::ConstraintGraph& g) {
  std::vector<AnchorSet> relevant(static_cast<std::size_t>(g.vertex_count()));
  for (VertexId anchor : g.anchors()) {
    std::vector<bool> traversed(static_cast<std::size_t>(g.vertex_count()),
                                false);
    std::vector<VertexId> stack;
    for (EdgeId eid : g.out_edges(anchor)) {
      if (g.weight(eid).unbounded) stack.push_back(g.edge(eid).to);
    }
    traversed[anchor.index()] = true;
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      if (traversed[v.index()]) continue;
      traversed[v.index()] = true;
      relevant[v.index()].insert(anchor);
      for (EdgeId eid : g.out_edges(v)) {
        if (g.weight(eid).unbounded) continue;
        stack.push_back(g.edge(eid).to);
      }
    }
  }
  return relevant;
}

/// Cone-restricted longest paths from `anchor` (Theorem 3): longest
/// paths within the subgraph induced by {anchor} union
/// {v : anchor in A(v)}, unbounded weights 0; kNegInf outside the cone.
inline std::vector<graph::Weight> cone_longest_paths(
    const cg::ConstraintGraph& g, VertexId anchor,
    const std::vector<AnchorSet>& anchor_sets) {
  const int n = g.vertex_count();
  std::vector<int> cone_index(static_cast<std::size_t>(n), -1);
  std::vector<VertexId> cone_vertices;
  for (int vi = 0; vi < n; ++vi) {
    const VertexId v(vi);
    if (v == anchor || anchor_sets[v.index()].contains(anchor)) {
      cone_index[v.index()] = static_cast<int>(cone_vertices.size());
      cone_vertices.push_back(v);
    }
  }
  graph::Digraph cone(static_cast<int>(cone_vertices.size()));
  for (const cg::Edge& e : g.edges()) {
    const int from = cone_index[e.from.index()];
    const int to = cone_index[e.to.index()];
    if (from < 0 || to < 0) continue;
    cone.add_arc(from, to, g.weight(e.id).value);
  }
  auto lp = graph::longest_paths_from(cone, cone_index[anchor.index()]);
  RELSCHED_CHECK(!lp.positive_cycle, "oracle requires a feasible graph");
  std::vector<graph::Weight> dist(static_cast<std::size_t>(n),
                                  graph::kNegInf);
  for (std::size_t i = 0; i < cone_vertices.size(); ++i) {
    dist[cone_vertices[i].index()] = lp.dist[i];
  }
  return dist;
}

/// Maximal defining-path lengths from `anchor` (Definition 8):
/// Bellman-Ford on the bounded-edge subgraph, seeded at the heads of
/// the anchor's unbounded out-edges with distance 0.
inline std::vector<graph::Weight> defining_path_lengths(
    const cg::ConstraintGraph& g, VertexId anchor) {
  const int n = g.vertex_count();
  std::vector<graph::Weight> dist(static_cast<std::size_t>(n),
                                  graph::kNegInf);
  for (EdgeId eid : g.out_edges(anchor)) {
    if (g.weight(eid).unbounded) {
      dist[g.edge(eid).to.index()] =
          std::max<graph::Weight>(dist[g.edge(eid).to.index()], 0);
    }
  }
  for (int pass = 0; pass < n; ++pass) {
    bool changed = false;
    for (const cg::Edge& e : g.edges()) {
      if (e.from == anchor) continue;
      const cg::EdgeWeight w = g.weight(e.id);
      if (w.unbounded) continue;
      const graph::Weight candidate =
          graph::saturating_add(dist[e.from.index()], w.value);
      if (candidate > dist[e.to.index()]) {
        dist[e.to.index()] = candidate;
        changed = true;
      }
    }
    if (!changed) break;
  }
  dist[anchor.index()] = graph::kNegInf;
  return dist;
}

/// The whole reference analysis for one graph: every product the
/// production AnchorAnalysis::compute() derives, via the pre-refactor
/// algorithms.
struct Analysis {
  std::vector<VertexId> anchors;
  std::vector<AnchorSet> anchor_sets;
  std::vector<AnchorSet> relevant;
  std::vector<AnchorSet> irredundant;
  /// Per anchor (indexed like `anchors`): cone-restricted longest
  /// paths (== length(a, v)) and maximal defining-path lengths.
  std::vector<std::vector<graph::Weight>> length_rows;
  std::vector<std::vector<graph::Weight>> defining_rows;
};

/// minimumAnchor (paper §IV-D): x in R(v) is redundant if some relevant
/// anchor r in R(v) with x in A(r) satisfies
///   length(x, v) <= length(x, r) + length(r, v).
inline Analysis compute(const cg::ConstraintGraph& g) {
  Analysis a;
  a.anchors = g.anchors();
  a.anchor_sets = find_anchor_sets(g);
  a.relevant = relevant_sets(g);
  std::vector<int> anchor_pos(static_cast<std::size_t>(g.vertex_count()), -1);
  for (std::size_t i = 0; i < a.anchors.size(); ++i) {
    anchor_pos[a.anchors[i].index()] = static_cast<int>(i);
    a.length_rows.push_back(cone_longest_paths(g, a.anchors[i], a.anchor_sets));
    a.defining_rows.push_back(defining_path_lengths(g, a.anchors[i]));
  }
  const auto length = [&](VertexId anchor, VertexId v) {
    return a.length_rows[static_cast<std::size_t>(anchor_pos[anchor.index()])]
                        [v.index()];
  };
  a.irredundant.resize(static_cast<std::size_t>(g.vertex_count()));
  for (int vi = 0; vi < g.vertex_count(); ++vi) {
    const VertexId v(vi);
    for (VertexId x : a.relevant[v.index()]) {
      bool redundant = false;
      for (VertexId r : a.relevant[v.index()]) {
        if (r == x) continue;
        if (!a.anchor_sets[r.index()].contains(x)) continue;
        if (length(x, r) == graph::kNegInf ||
            length(r, v) == graph::kNegInf) {
          continue;
        }
        if (length(x, v) <= length(x, r) + length(r, v)) {
          redundant = true;
          break;
        }
      }
      if (!redundant) a.irredundant[v.index()].insert(x);
    }
  }
  return a;
}

}  // namespace relsched::testing::oracle

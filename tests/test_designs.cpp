#include "designs/designs.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "driver/report.hpp"
#include "driver/stats.hpp"
#include "driver/synthesis.hpp"
#include "sched/scheduler.hpp"

namespace relsched::designs {
namespace {

TEST(Suite, HasAllEightPaperDesigns) {
  const auto& suite = benchmark_suite();
  ASSERT_EQ(suite.size(), 8u);
  EXPECT_EQ(suite[0].name, "traffic");
  EXPECT_EQ(suite[1].name, "length");
  EXPECT_EQ(suite[2].name, "gcd");
  EXPECT_EQ(suite[3].name, "frisc");
  EXPECT_EQ(suite[4].name, "daio_phase");
  EXPECT_EQ(suite[5].name, "daio_rx");
  EXPECT_EQ(suite[6].name, "dct_a");
  EXPECT_EQ(suite[7].name, "dct_b");
}

TEST(Suite, AllDesignsCompileAndSynthesize) {
  for (const BenchmarkDesign& d : benchmark_suite()) {
    SCOPED_TRACE(d.name);
    auto design = build(d.name);
    const auto result = driver::synthesize(design);
    EXPECT_TRUE(result.ok()) << d.name << ": " << result.message;
    if (!result.ok()) continue;
    const auto stats = driver::compute_stats(result);
    EXPECT_GT(stats.total_vertices, 0);
    EXPECT_GT(stats.total_anchors, 0);
    // The headline claim of Table III: irredundant anchor sets are
    // smaller than the full sets.
    EXPECT_LE(stats.sum_irredundant, stats.sum_full);
    EXPECT_LE(stats.sum_max_offset_min, stats.sum_max_offset_full);
  }
}

TEST(Suite, GcdHasTheExactSamplingConstraint) {
  auto design = build("gcd");
  const auto result = driver::synthesize(design);
  ASSERT_TRUE(result.ok()) << result.message;
  // Find the root graph's two tagged reads and check their start
  // offsets are exactly one cycle apart.
  const auto& gs = result.for_graph(design.root());
  const seq::SeqGraph& root = design.graph(design.root());
  ASSERT_EQ(root.constraints().size(), 2u);
  const OpId read_y = root.constraints()[0].from;
  const OpId read_x = root.constraints()[0].to;
  // Offsets are relative to the *wait loop* anchor (the reads follow
  // the restart loop), so compare offsets w.r.t. a common anchor.
  bool compared = false;
  for (const auto& [a, sy] : gs.schedule.schedule.offsets(VertexId(read_y.value())).entries()) {
    const auto sx = gs.schedule.schedule.offset(VertexId(read_x.value()), a);
    if (sx.has_value()) {
      EXPECT_EQ(*sx - sy, 1) << "anchor " << a;
      compared = true;
    }
  }
  EXPECT_TRUE(compared);
}

TEST(Suite, FriscIsTheLargestDesign) {
  auto frisc = build("frisc");
  const auto frisc_result = driver::synthesize(frisc);
  ASSERT_TRUE(frisc_result.ok());
  const auto frisc_stats = driver::compute_stats(frisc_result);
  for (const BenchmarkDesign& d : benchmark_suite()) {
    if (d.name == "frisc") continue;
    auto design = build(d.name);
    const auto result = driver::synthesize(design);
    ASSERT_TRUE(result.ok());
    EXPECT_LT(driver::compute_stats(result).total_vertices,
              frisc_stats.total_vertices)
        << d.name;
  }
  // Paper scale: frisc has |V| = 188, |A| = 34. Ours should be within
  // the same order of magnitude.
  EXPECT_GT(frisc_stats.total_vertices, 80);
  EXPECT_GT(frisc_stats.total_anchors, 15);
}

TEST(Fig2, MatchesTestutilConstruction) {
  const auto g = fig2_graph();
  EXPECT_EQ(g.vertex_count(), 6);
  EXPECT_EQ(g.backward_edge_count(), 1);
  const auto result = sched::schedule(g);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.schedule.offset(VertexId(5), VertexId(0)), 8);
}

TEST(Fig10, ReproducesThePublishedTraceExactly) {
  const auto g = fig10_graph();
  sched::ScheduleOptions opts;
  opts.record_trace = true;
  const auto result = sched::schedule(g, opts);
  ASSERT_TRUE(result.ok()) << result.message;
  EXPECT_EQ(result.iterations, 3);  // "terminates ... in the third iteration"
  ASSERT_EQ(result.trace.size(), 3u);

  const VertexId v0(0), a(1), v2(3), v3(4), v5(6), v7(8);

  // Iteration 1, compute column.
  const auto& it1 = result.trace[0];
  EXPECT_EQ(it1.after_compute.offset(a, v0), 1);
  EXPECT_EQ(it1.after_compute.offset(v2, v0), 2);
  EXPECT_EQ(it1.after_compute.offset(v2, a), 1);
  EXPECT_EQ(it1.after_compute.offset(v3, v0), 5);
  EXPECT_EQ(it1.after_compute.offset(v7, v0), 12);
  EXPECT_EQ(it1.after_compute.offset(v7, a), 5);
  // Three violated backward edges, readjusted as printed.
  EXPECT_EQ(it1.violated_backward_edges, 3);
  EXPECT_EQ(it1.after_readjust.offset(a, v0), 2);
  EXPECT_EQ(it1.after_readjust.offset(v2, v0), 4);
  EXPECT_EQ(it1.after_readjust.offset(v2, a), 3);
  EXPECT_EQ(it1.after_readjust.offset(v5, v0), 6);

  // Iteration 2: one violation remains; v2 moves to (5,3).
  const auto& it2 = result.trace[1];
  EXPECT_EQ(it2.after_compute.offset(v3, v0), 6);
  EXPECT_EQ(it2.after_compute.offset(v7, a), 6);
  EXPECT_EQ(it2.violated_backward_edges, 1);
  EXPECT_EQ(it2.after_readjust.offset(v2, v0), 5);
  EXPECT_EQ(it2.after_readjust.offset(v2, a), 3);

  // Final (third) compute: the published last column.
  const auto& fin = result.schedule;
  EXPECT_EQ(fin.offset(a, v0), 2);
  EXPECT_EQ(fin.offset(v2, v0), 5);
  EXPECT_EQ(fin.offset(v2, a), 3);
  EXPECT_EQ(fin.offset(v3, v0), 6);
  EXPECT_EQ(fin.offset(v3, a), 4);
  EXPECT_EQ(fin.offset(v7, v0), 12);
  EXPECT_EQ(fin.offset(v7, a), 6);
}

TEST(Fig10, WellPosedAndVerifiable) {
  const auto g = fig10_graph();
  const auto result = sched::schedule(g);
  ASSERT_TRUE(result.ok());
  for (int da = 0; da <= 10; da += 2) {
    sched::DelayProfile profile;
    profile.set(VertexId(1), da);
    EXPECT_EQ(sched::find_violation(g, result.schedule, profile), std::nullopt)
        << "delta(a)=" << da;
  }
}

TEST(Report, GcdReportRenders) {
  auto design = build("gcd");
  const auto result = driver::synthesize(design);
  ASSERT_TRUE(result.ok());
  std::ostringstream os;
  driver::print_design_report(os, design, result);
  EXPECT_NE(os.str().find("gcd"), std::string::npos);
  EXPECT_NE(os.str().find("root"), std::string::npos);
}

}  // namespace
}  // namespace relsched::designs

#include "bind/binder.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/digraph.hpp"
#include "seq/design.hpp"

namespace relsched::bind {
namespace {

using seq::AluOp;
using seq::OpKind;
using seq::SeqOp;

SeqOp alu(AluOp op, std::string name) {
  SeqOp s;
  s.kind = OpKind::kAlu;
  s.alu = op;
  s.name = std::move(name);
  return s;
}

TEST(ResourceLibrary, StandardCoversAllAluOps) {
  const auto lib = ResourceLibrary::standard();
  for (int i = 0; i <= static_cast<int>(AluOp::kShr); ++i) {
    EXPECT_TRUE(lib.module_for(static_cast<AluOp>(i)).is_valid())
        << "op " << i;
  }
}

TEST(ResourceLibrary, AdderIsOneCycleMultiplierSlower) {
  const auto lib = ResourceLibrary::standard();
  const auto add = lib.type(lib.module_for(AluOp::kAdd));
  const auto mul = lib.type(lib.module_for(AluOp::kMul));
  EXPECT_EQ(add.delay_cycles, 1);
  EXPECT_GT(mul.delay_cycles, add.delay_cycles);
  EXPECT_GT(mul.area, add.area);
}

TEST(Binder, AssignsDelaysByKind) {
  seq::Design d("d");
  seq::SeqGraph& g = d.graph(d.add_graph("g"));
  const OpId a = g.add_op(alu(AluOp::kAdd, "a"));
  const OpId m = g.add_op(alu(AluOp::kMul, "m"));
  SeqOp rd;
  rd.kind = OpKind::kRead;
  rd.name = "rd";
  rd.port = PortId(0);
  const OpId r = g.add_op(std::move(rd));
  SeqOp lp;
  lp.kind = OpKind::kLoop;
  lp.name = "loop";
  const OpId l = g.add_op(std::move(lp));

  const auto lib = ResourceLibrary::standard();
  bind_graph(g, lib);
  EXPECT_EQ(g.op(a).delay, cg::Delay::bounded(1));
  EXPECT_EQ(g.op(m).delay, cg::Delay::bounded(2));
  EXPECT_EQ(g.op(r).delay, cg::Delay::bounded(1));
  EXPECT_TRUE(g.op(l).delay.is_unbounded());
  EXPECT_EQ(g.op(g.source()).delay, cg::Delay::bounded(0));
}

TEST(Binder, SerializesBeyondInstanceLimit) {
  seq::Design d("d");
  seq::SeqGraph& g = d.graph(d.add_graph("g"));
  // Four independent adds, one adder: must end up fully serialized.
  for (int i = 0; i < 4; ++i) g.add_op(alu(AluOp::kAdd, "add" + std::to_string(i)));
  BindingOptions opts;
  opts.instance_limits["adder"] = 1;
  const auto result = bind_graph(g, ResourceLibrary::standard(), opts);
  EXPECT_EQ(result.serializations.size(), 3u);
  // All bindings on instance 0.
  for (const OpBinding& b : result.bindings) EXPECT_EQ(b.instance, 0);
}

TEST(Binder, UnlimitedInstancesAddNoSerialization) {
  seq::Design d("d");
  seq::SeqGraph& g = d.graph(d.add_graph("g"));
  for (int i = 0; i < 4; ++i) g.add_op(alu(AluOp::kAdd, "add" + std::to_string(i)));
  BindingOptions opts;
  opts.instance_limits["adder"] = 0;  // unlimited
  const auto result = bind_graph(g, ResourceLibrary::standard(), opts);
  EXPECT_TRUE(result.serializations.empty());
}

TEST(Binder, SerializationNeverCreatesCycles) {
  seq::Design d("d");
  seq::SeqGraph& g = d.graph(d.add_graph("g"));
  // A diamond of adds plus extra independent ones.
  std::vector<OpId> ops;
  for (int i = 0; i < 8; ++i) {
    ops.push_back(g.add_op(alu(AluOp::kAdd, "a" + std::to_string(i))));
  }
  g.add_dependency(ops[0], ops[1]);
  g.add_dependency(ops[0], ops[2]);
  g.add_dependency(ops[1], ops[3]);
  g.add_dependency(ops[2], ops[3]);
  g.add_dependency(ops[4], ops[5]);
  BindingOptions opts;
  opts.instance_limits["adder"] = 2;
  bind_graph(g, ResourceLibrary::standard(), opts);
  graph::Digraph dg(g.op_count());
  for (const auto& [from, to] : g.dependencies()) {
    dg.add_arc(from.value(), to.value(), 0);
  }
  EXPECT_TRUE(graph::is_acyclic(dg));
}

TEST(Binder, SerializationRespectsExistingOrder) {
  seq::Design d("d");
  seq::SeqGraph& g = d.graph(d.add_graph("g"));
  const OpId a = g.add_op(alu(AluOp::kAdd, "a"));
  const OpId b = g.add_op(alu(AluOp::kAdd, "b"));
  g.add_dependency(a, b);
  BindingOptions opts;
  opts.instance_limits["adder"] = 1;
  const auto result = bind_graph(g, ResourceLibrary::standard(), opts);
  // a -> b already ordered; no duplicate serializing edge.
  EXPECT_TRUE(result.serializations.empty());
}

TEST(Binder, PortAccessesKeepProgramOrder) {
  seq::Design d("d");
  const PortId p = d.add_port("bus", 8, seq::PortDirection::kIn);
  seq::SeqGraph& g = d.graph(d.add_graph("g"));
  SeqOp r1;
  r1.kind = OpKind::kRead;
  r1.name = "r1";
  r1.port = p;
  SeqOp r2 = r1;
  r2.name = "r2";
  const OpId o1 = g.add_op(std::move(r1));
  const OpId o2 = g.add_op(std::move(r2));
  const auto result = bind_graph(g, ResourceLibrary::standard());
  ASSERT_EQ(result.serializations.size(), 1u);
  EXPECT_EQ(result.serializations[0].first, o1);
  EXPECT_EQ(result.serializations[0].second, o2);
}

TEST(Binder, AreaAccountsAllocatedInstances) {
  seq::Design d("d");
  seq::SeqGraph& g = d.graph(d.add_graph("g"));
  g.add_op(alu(AluOp::kAdd, "a"));
  g.add_op(alu(AluOp::kAdd, "b"));
  g.add_op(alu(AluOp::kMul, "m"));
  BindingOptions opts;
  opts.instance_limits["adder"] = 2;
  const auto lib = ResourceLibrary::standard();
  const auto result = bind_graph(g, lib, opts);
  const int adder_area = lib.type(lib.module_for(AluOp::kAdd)).area;
  const int mul_area = lib.type(lib.module_for(AluOp::kMul)).area;
  EXPECT_EQ(result.total_area, 2 * adder_area + mul_area);
}

}  // namespace
}  // namespace relsched::bind

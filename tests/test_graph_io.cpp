#include "cg/graph_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "designs/generator.hpp"
#include "sched/scheduler.hpp"
#include "testutil.hpp"

namespace relsched::cg {
namespace {

using relsched::testing::Fig2Graph;

/// Unique scratch path for one binary-format test; removed on
/// destruction.
struct TempBinaryFile {
  std::string path;

  explicit TempBinaryFile(const std::string& name)
      : path(::testing::TempDir() + "relsched_graph_io_" + name + ".cgb") {}
  ~TempBinaryFile() { std::remove(path.c_str()); }
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void spill(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

TEST(GraphIo, RoundTripPreservesStructure) {
  Fig2Graph f;
  const std::string text = to_text(f.g);
  const auto parsed = from_text(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const ConstraintGraph& g2 = *parsed.graph;
  EXPECT_EQ(g2.name(), f.g.name());
  ASSERT_EQ(g2.vertex_count(), f.g.vertex_count());
  ASSERT_EQ(g2.edge_count(), f.g.edge_count());
  for (int i = 0; i < f.g.vertex_count(); ++i) {
    EXPECT_EQ(g2.vertex(VertexId(i)).name, f.g.vertex(VertexId(i)).name);
    EXPECT_EQ(g2.vertex(VertexId(i)).delay, f.g.vertex(VertexId(i)).delay);
  }
  for (int i = 0; i < f.g.edge_count(); ++i) {
    const Edge& a = f.g.edge(EdgeId(i));
    const Edge& b = g2.edge(EdgeId(i));
    EXPECT_EQ(a.from, b.from);
    EXPECT_EQ(a.to, b.to);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.fixed_weight, b.fixed_weight);
  }
}

TEST(GraphIo, RoundTripPreservesSchedule) {
  Fig2Graph f;
  const auto parsed = from_text(to_text(f.g));
  ASSERT_TRUE(parsed.ok());
  const auto original = sched::schedule(f.g);
  const auto reparsed = sched::schedule(*parsed.graph);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(reparsed.ok());
  for (int i = 0; i < f.g.vertex_count(); ++i) {
    EXPECT_EQ(original.schedule.offsets(VertexId(i)),
              reparsed.schedule.offsets(VertexId(i)));
  }
}

TEST(GraphIo, ParsesHandWrittenGraph) {
  const auto parsed = from_text(R"(
# a tiny example
graph demo
vertex v0 0
vertex a unbounded
vertex v1 3
seq v0 a
seq a v1
min v0 v1 2
max v0 v1 9
)");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const ConstraintGraph& g = *parsed.graph;
  EXPECT_EQ(g.vertex_count(), 3);
  EXPECT_EQ(g.edge_count(), 4);
  EXPECT_TRUE(g.vertex(VertexId(1)).delay.is_unbounded());
  EXPECT_EQ(g.backward_edge_count(), 1);
}

TEST(GraphIo, ErrorsNameTheLine) {
  EXPECT_NE(from_text("graph g\nvertex v0 0\nseq v0 missing\n").error.find(
                "line 3"),
            std::string::npos);
  EXPECT_FALSE(from_text("vertex v0 0\n").ok());          // missing header
  EXPECT_FALSE(from_text("graph g\nvertex v0 -2\n").ok());  // bad delay
  EXPECT_FALSE(from_text("graph g\nbogus a b\n").ok());     // bad keyword
  EXPECT_FALSE(from_text("").ok());                         // empty
  EXPECT_FALSE(
      from_text("graph g\nvertex v 0\nvertex v 0\n").ok());  // duplicate
  EXPECT_FALSE(
      from_text("graph g\nvertex a 0\nvertex b 0\nmin a b -1\n").ok());
}

TEST(GraphIo, CommentsAndBlankLinesIgnored)
{
  const auto parsed = from_text(
      "graph g   # name\n\n# full-line comment\nvertex v0 0\n");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.graph->vertex_count(), 1);
}

// Property: for generated designs across seeds and shapes, writing the
// binary format and loading it back yields a graph whose text
// rendering is byte-identical to the original's -- the binary format
// preserves edge order and user orientation exactly.
TEST(GraphIoBinary, RoundTripMatchesTextOnGeneratedDesigns) {
  const std::uint64_t seeds[] = {1, 7, 42, 90};
  for (const std::uint64_t seed : seeds) {
    designs::GeneratorParams params;
    params.seed = seed;
    params.vertices = 300 + static_cast<int>(seed % 3) * 150;
    params.anchor_density = 150;
    auto g = designs::generate(params);

    TempBinaryFile file("roundtrip_" + std::to_string(seed));
    ASSERT_EQ(write_binary_file(g, file.path), "") << "seed " << seed;
    EXPECT_TRUE(is_binary_graph_file(file.path));
    const auto loaded = read_binary_file(file.path);
    ASSERT_TRUE(loaded.ok()) << "seed " << seed << ": " << loaded.error;
    EXPECT_EQ(to_text(*loaded.graph), to_text(g)) << "seed " << seed;
  }
}

TEST(GraphIoBinary, RoundTripPreservesSchedule) {
  Fig2Graph f;
  TempBinaryFile file("fig2");
  ASSERT_EQ(write_binary_file(f.g, file.path), "");
  const auto loaded = read_binary_file(file.path);
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  const auto original = sched::schedule(f.g);
  const auto reparsed = sched::schedule(*loaded.graph);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(reparsed.ok());
  for (int i = 0; i < f.g.vertex_count(); ++i) {
    EXPECT_EQ(original.schedule.offsets(VertexId(i)),
              reparsed.schedule.offsets(VertexId(i)));
  }
}

// Corruption is reported through ParseResult::error, never loaded: a
// flipped payload byte trips the checksum, truncation and trailing
// garbage are length errors, and a bad magic or version never reaches
// the payload.
TEST(GraphIoBinary, RejectsCorruption) {
  Fig2Graph f;
  TempBinaryFile file("corrupt");
  ASSERT_EQ(write_binary_file(f.g, file.path), "");
  const std::string pristine = slurp(file.path);
  ASSERT_GT(pristine.size(), 16u);

  // Sanity: the pristine bytes load.
  ASSERT_TRUE(read_binary_file(file.path).ok());

  // One flipped payload byte: checksum mismatch.
  std::string bytes = pristine;
  bytes[bytes.size() / 2] ^= 0x01;
  spill(file.path, bytes);
  EXPECT_FALSE(read_binary_file(file.path).ok());

  // Truncation anywhere: never loads.
  spill(file.path, pristine.substr(0, pristine.size() - 3));
  EXPECT_FALSE(read_binary_file(file.path).ok());
  spill(file.path, pristine.substr(0, 10));
  EXPECT_FALSE(read_binary_file(file.path).ok());

  // Trailing garbage after the checksum: rejected, not ignored.
  spill(file.path, pristine + "xx");
  EXPECT_FALSE(read_binary_file(file.path).ok());

  // Bad magic / unknown version.
  bytes = pristine;
  bytes[0] ^= 0x01;
  spill(file.path, bytes);
  EXPECT_FALSE(read_binary_file(file.path).ok());
  EXPECT_FALSE(is_binary_graph_file(file.path));
  bytes = pristine;
  bytes[8] ^= 0x01;  // version word follows the 8-byte magic
  spill(file.path, bytes);
  EXPECT_FALSE(read_binary_file(file.path).ok());

  // Missing file and a text-format file: sniff says no, reader errors.
  EXPECT_FALSE(is_binary_graph_file(file.path + ".does-not-exist"));
  EXPECT_FALSE(read_binary_file(file.path + ".does-not-exist").ok());
  spill(file.path, to_text(f.g));
  EXPECT_FALSE(is_binary_graph_file(file.path));
  EXPECT_FALSE(read_binary_file(file.path).ok());
}

}  // namespace
}  // namespace relsched::cg

#include "cg/graph_io.hpp"

#include <gtest/gtest.h>

#include "sched/scheduler.hpp"
#include "testutil.hpp"

namespace relsched::cg {
namespace {

using relsched::testing::Fig2Graph;

TEST(GraphIo, RoundTripPreservesStructure) {
  Fig2Graph f;
  const std::string text = to_text(f.g);
  const auto parsed = from_text(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const ConstraintGraph& g2 = *parsed.graph;
  EXPECT_EQ(g2.name(), f.g.name());
  ASSERT_EQ(g2.vertex_count(), f.g.vertex_count());
  ASSERT_EQ(g2.edge_count(), f.g.edge_count());
  for (int i = 0; i < f.g.vertex_count(); ++i) {
    EXPECT_EQ(g2.vertex(VertexId(i)).name, f.g.vertex(VertexId(i)).name);
    EXPECT_EQ(g2.vertex(VertexId(i)).delay, f.g.vertex(VertexId(i)).delay);
  }
  for (int i = 0; i < f.g.edge_count(); ++i) {
    const Edge& a = f.g.edge(EdgeId(i));
    const Edge& b = g2.edge(EdgeId(i));
    EXPECT_EQ(a.from, b.from);
    EXPECT_EQ(a.to, b.to);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.fixed_weight, b.fixed_weight);
  }
}

TEST(GraphIo, RoundTripPreservesSchedule) {
  Fig2Graph f;
  const auto parsed = from_text(to_text(f.g));
  ASSERT_TRUE(parsed.ok());
  const auto original = sched::schedule(f.g);
  const auto reparsed = sched::schedule(*parsed.graph);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(reparsed.ok());
  for (int i = 0; i < f.g.vertex_count(); ++i) {
    EXPECT_EQ(original.schedule.offsets(VertexId(i)),
              reparsed.schedule.offsets(VertexId(i)));
  }
}

TEST(GraphIo, ParsesHandWrittenGraph) {
  const auto parsed = from_text(R"(
# a tiny example
graph demo
vertex v0 0
vertex a unbounded
vertex v1 3
seq v0 a
seq a v1
min v0 v1 2
max v0 v1 9
)");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const ConstraintGraph& g = *parsed.graph;
  EXPECT_EQ(g.vertex_count(), 3);
  EXPECT_EQ(g.edge_count(), 4);
  EXPECT_TRUE(g.vertex(VertexId(1)).delay.is_unbounded());
  EXPECT_EQ(g.backward_edge_count(), 1);
}

TEST(GraphIo, ErrorsNameTheLine) {
  EXPECT_NE(from_text("graph g\nvertex v0 0\nseq v0 missing\n").error.find(
                "line 3"),
            std::string::npos);
  EXPECT_FALSE(from_text("vertex v0 0\n").ok());          // missing header
  EXPECT_FALSE(from_text("graph g\nvertex v0 -2\n").ok());  // bad delay
  EXPECT_FALSE(from_text("graph g\nbogus a b\n").ok());     // bad keyword
  EXPECT_FALSE(from_text("").ok());                         // empty
  EXPECT_FALSE(
      from_text("graph g\nvertex v 0\nvertex v 0\n").ok());  // duplicate
  EXPECT_FALSE(
      from_text("graph g\nvertex a 0\nvertex b 0\nmin a b -1\n").ok());
}

TEST(GraphIo, CommentsAndBlankLinesIgnored)
{
  const auto parsed = from_text(
      "graph g   # name\n\n# full-line comment\nvertex v0 0\n");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.graph->vertex_count(), 1);
}

}  // namespace
}  // namespace relsched::cg

// Whole-design simulations of the benchmark suite, including a frisc
// CPU system test against a reactive memory model (sim::Environment).
#include <gtest/gtest.h>

#include <map>

#include "designs/designs.hpp"
#include "driver/synthesis.hpp"
#include "sim/simulator.hpp"

namespace relsched::sim {
namespace {

struct Synthesized {
  seq::Design design;
  driver::SynthesisResult result;

  explicit Synthesized(const char* name) : design(designs::build(name)) {
    result = driver::synthesize(design);
    EXPECT_TRUE(result.ok()) << name << ": " << result.message;
  }
};

// ---- traffic -----------------------------------------------------------------

TEST(SuiteSim, TrafficSwitchesLightsOnEvents) {
  Synthesized s("traffic");
  Stimulus stim;
  stim.set(s.design, "cars", 6, 1);
  stim.set(s.design, "timeout", 20, 1);
  Simulator sim(s.design, s.result, stim);
  const auto r = sim.run();
  ASSERT_FALSE(r.timed_out);
  const PortId hl = *s.design.find_port("hl");
  const PortId fl = *s.design.find_port("fl");
  // Highway green before cars arrive, red after.
  EXPECT_EQ(r.output_at(hl, 5), 0);
  EXPECT_EQ(r.output_at(hl, r.end_cycle), 2);
  // Farm goes green after cars, red again after the timeout.
  EXPECT_EQ(r.output_at(fl, 10), 0);
  EXPECT_EQ(r.output_at(fl, r.end_cycle), 2);
  // The farm-green phase must not end before the timeout fires.
  for (const auto& [cycle, value] : r.port_writes.at(fl)) {
    if (value == 2) EXPECT_GE(cycle, 20);
  }
}

// ---- length ------------------------------------------------------------------

TEST(SuiteSim, LengthMeasuresWiderPulsesAsLarger) {
  Synthesized s("length");
  std::int64_t narrow = -1, wide = -1;
  for (const int width : {4, 20}) {
    Stimulus stim;
    stim.set(s.design, "pulse", 3, 1);
    stim.set(s.design, "pulse", 3 + width, 0);
    Simulator sim(s.design, s.result, stim);
    const auto r = sim.run();
    ASSERT_FALSE(r.timed_out);
    const auto& writes = r.port_writes.at(*s.design.find_port("len"));
    ASSERT_EQ(writes.size(), 1u);
    (width == 4 ? narrow : wide) = writes[0].second;
  }
  EXPECT_GT(narrow, 0);
  EXPECT_GT(wide, narrow);
}

// ---- daio phase decoder ---------------------------------------------------------

TEST(SuiteSim, DaioPhaseClassifiesIntervals) {
  Synthesized s("daio_phase");
  Stimulus stim;
  stim.set(s.design, "run", 0, 1);
  // A biphase-ish input: short intervals (toggle fast).
  int level = 1;
  for (graph::Weight c = 2; c < 120; c += 6) {
    stim.set(s.design, "din", c, level);
    level ^= 1;
  }
  stim.set(s.design, "run", 120, 0);
  Simulator sim(s.design, s.result, stim);
  SimOptions opts;
  opts.max_cycles = 20000;
  const auto r = sim.run(opts);
  ASSERT_FALSE(r.timed_out);
  // Some bits must have been emitted with valid pulses.
  const auto it = r.port_writes.find(*s.design.find_port("bit_valid"));
  ASSERT_NE(it, r.port_writes.end());
  int pulses = 0;
  for (const auto& [cycle, value] : it->second) {
    if (value == 1) ++pulses;
  }
  EXPECT_GT(pulses, 2);
}

// ---- dct phase A ------------------------------------------------------------------

TEST(SuiteSim, DctAEmitsEightCoefficientsPerRow) {
  Synthesized s("dct_a");
  Stimulus stim;
  stim.set(s.design, "run", 0, 1);
  stim.set(s.design, "run", 1, 0);  // exactly one row sweep
  stim.set(s.design, "yready", 0, 1);
  stim.set(s.design, "xin", 0, 3);
  // xvalid toggles forever with period 8.
  for (graph::Weight c = 0; c < 4000; c += 8) {
    stim.set(s.design, "xvalid", c + 4, 1);
    stim.set(s.design, "xvalid", c + 8, 0);
  }
  Simulator sim(s.design, s.result, stim);
  SimOptions opts;
  opts.max_cycles = 50000;
  const auto r = sim.run(opts);
  ASSERT_FALSE(r.timed_out);
  const auto& yout = r.port_writes.at(*s.design.find_port("yout"));
  EXPECT_EQ(yout.size(), 8u);  // 8 coefficients for the single row
  int valid_pulses = 0;
  for (const auto& [cycle, value] :
       r.port_writes.at(*s.design.find_port("yvalid"))) {
    if (value == 1) ++valid_pulses;
  }
  EXPECT_EQ(valid_pulses, 8);
  EXPECT_TRUE(r.all_constraints_satisfied());
}

// ---- daio receiver -----------------------------------------------------------

TEST(SuiteSim, DaioRxAssemblesOneBlockOfSubframes) {
  Synthesized s("daio_rx");
  Stimulus stim;
  stim.set(s.design, "run", 0, 1);
  stim.set(s.design, "run", 10, 0);  // exactly one block
  stim.set(s.design, "preamble", 1, 1);
  stim.set(s.design, "preamble", 3, 0);
  stim.set(s.design, "bit_in", 0, 0);  // all-zero bits: even parity
  // bit_valid toggles with period 4 for the whole block.
  for (graph::Weight c = 6; c < 4000; c += 4) {
    stim.set(s.design, "bit_valid", c, 1);
    stim.set(s.design, "bit_valid", c + 2, 0);
  }
  Simulator sim(s.design, s.result, stim);
  SimOptions opts;
  opts.max_cycles = 60000;
  const auto r = sim.run(opts);
  ASSERT_FALSE(r.timed_out);
  // Eight subframes, all with good parity: eight frame_sync pulses and
  // no parity errors.
  int sync_pulses = 0;
  for (const auto& [cycle, value] :
       r.port_writes.at(*s.design.find_port("frame_sync"))) {
    if (value == 1) ++sync_pulses;
  }
  EXPECT_EQ(sync_pulses, 8);
  EXPECT_EQ(r.port_writes.count(*s.design.find_port("parity_err")), 0u);
  // The channel-status register was emitted once (all zeros).
  const auto& status = r.port_writes.at(*s.design.find_port("status_out"));
  ASSERT_EQ(status.size(), 1u);
  EXPECT_EQ(status[0].second, 0);
  // The exact-2-cycle frame_sync window held on every subframe.
  EXPECT_TRUE(r.all_constraints_satisfied());
}

// ---- dct phase B ------------------------------------------------------------------

TEST(SuiteSim, DctBEmitsConstrainedValidPulses) {
  Synthesized s("dct_b");
  Stimulus stim;
  stim.set(s.design, "run", 0, 1);
  stim.set(s.design, "run", 1, 0);
  stim.set(s.design, "dready", 0, 1);
  stim.set(s.design, "cin", 0, 5);
  for (graph::Weight c = 0; c < 6000; c += 8) {
    stim.set(s.design, "cvalid", c + 4, 1);
    stim.set(s.design, "cvalid", c + 8, 0);
  }
  Simulator sim(s.design, s.result, stim);
  SimOptions opts;
  opts.max_cycles = 80000;
  const auto r = sim.run(opts);
  ASSERT_FALSE(r.timed_out);
  int dvalid_pulses = 0;
  for (const auto& [cycle, value] :
       r.port_writes.at(*s.design.find_port("dvalid"))) {
    if (value == 1) ++dvalid_pulses;
  }
  EXPECT_GE(dvalid_pulses, 8);  // one per coefficient (plus zero marker)
  int col_done = 0;
  for (const auto& [cycle, value] :
       r.port_writes.at(*s.design.find_port("col_done"))) {
    if (value == 1) ++col_done;
  }
  EXPECT_EQ(col_done, 1);
  // The 1..2-cycle dout-to-dvalid window held on every coefficient.
  EXPECT_TRUE(r.all_constraints_satisfied());
}

// ---- frisc with a reactive memory model ---------------------------------------------

/// Memory + handshake agent for the frisc CPU: responds to rd/wr with
/// ready two cycles after the strobe rises, serves ibus from a small
/// RAM, and commits stores when wr rises.
class MemoryModel : public Environment {
 public:
  MemoryModel(const seq::Design& design, std::map<int, std::int64_t> image)
      : mem_(std::move(image)) {
    ibus_ = *design.find_port("ibus");
    ready_ = *design.find_port("ready");
    addr_ = *design.find_port("addr");
    rd_ = *design.find_port("rd");
    wr_ = *design.find_port("wr");
    obus_ = *design.find_port("obus");
  }

  void on_port_write(PortId port, graph::Weight cycle,
                     std::int64_t value) override {
    timeline_[port].emplace_back(cycle, value);
    if (port == wr_ && value != 0) {
      // Commit the store: latest addr/obus values as of this cycle.
      mem_[static_cast<int>(level(addr_, cycle))] = level(obus_, cycle);
      ++stores_;
    }
    if (port == rd_ && value != 0) ++loads_;
  }

  std::optional<std::int64_t> drive(PortId port, graph::Weight cycle) override {
    if (port == ready_) {
      // Ready two cycles after either strobe rose (and still high).
      return (strobe_age(rd_, cycle) >= 2 || strobe_age(wr_, cycle) >= 2) ? 1
                                                                          : 0;
    }
    if (port == ibus_) {
      const auto it = mem_.find(static_cast<int>(level(addr_, cycle)));
      return it == mem_.end() ? 0 : it->second;
    }
    return std::nullopt;
  }

  [[nodiscard]] std::int64_t mem(int address) const {
    const auto it = mem_.find(address);
    return it == mem_.end() ? 0 : it->second;
  }
  [[nodiscard]] int stores() const { return stores_; }
  [[nodiscard]] int loads() const { return loads_; }

 private:
  [[nodiscard]] std::int64_t level(PortId port, graph::Weight cycle) const {
    const auto it = timeline_.find(port);
    if (it == timeline_.end()) return 0;
    std::int64_t value = 0;
    graph::Weight best = -1;
    for (const auto& [c, v] : it->second) {
      if (c <= cycle && c >= best) {
        best = c;
        value = v;
      }
    }
    return value;
  }

  /// Cycles since `port` last rose to nonzero, or -1 when currently low.
  [[nodiscard]] graph::Weight strobe_age(PortId port,
                                         graph::Weight cycle) const {
    const auto it = timeline_.find(port);
    if (it == timeline_.end()) return -1;
    graph::Weight rise = -1;
    std::int64_t current = 0;
    for (const auto& [c, v] : it->second) {
      if (c > cycle) break;
      if (v != 0 && current == 0) rise = c;
      current = v;
    }
    return current != 0 && rise >= 0 ? cycle - rise : -1;
  }

  std::map<int, std::int64_t> mem_;
  std::map<PortId, std::vector<std::pair<graph::Weight, std::int64_t>>>
      timeline_;
  PortId ibus_, ready_, addr_, rd_, wr_, obus_;
  int stores_ = 0;
  int loads_ = 0;
};

constexpr int kLdi = 0, kLd = 1, kSt = 2, kAddi = 3, kSubi = 4, kJmp = 10,
              kJz = 11, kMuli = 12, kOut = 14, kHalt = 15;

std::int64_t instr(int opcode, int operand = 0) {
  return (static_cast<std::int64_t>(opcode) << 12) | operand;
}

TEST(SuiteSim, FriscExecutesStraightLineProgram) {
  Synthesized s("frisc");
  MemoryModel memory(s.design, {
                                   {0, instr(kLdi, 5)},
                                   {1, instr(kAddi, 3)},
                                   {2, instr(kSt, 100)},
                                   {3, instr(kMuli, 6)},
                                   {4, instr(kOut)},
                                   {5, instr(kHalt)},
                               });
  Simulator sim(s.design, s.result, Stimulus{});
  sim.set_environment(&memory);
  SimOptions opts;
  opts.max_cycles = 100000;
  const auto r = sim.run(opts);
  ASSERT_FALSE(r.timed_out);
  EXPECT_EQ(memory.mem(100), 8);  // 5 + 3 stored
  // OUT drove acc = 8 * 6 = 48 on obus.
  const auto& obus = r.port_writes.at(*s.design.find_port("obus"));
  ASSERT_FALSE(obus.empty());
  EXPECT_EQ(obus.back().second, 48);
  EXPECT_EQ(memory.stores(), 2);  // ST + OUT both strobe wr
}

TEST(SuiteSim, FriscLoadsFromMemory) {
  Synthesized s("frisc");
  MemoryModel memory(s.design, {
                                   {0, instr(kLd, 200)},
                                   {1, instr(kAddi, 1)},
                                   {2, instr(kSt, 201)},
                                   {3, instr(kHalt)},
                                   {200, 41},
                               });
  Simulator sim(s.design, s.result, Stimulus{});
  sim.set_environment(&memory);
  SimOptions opts;
  opts.max_cycles = 100000;
  const auto r = sim.run(opts);
  ASSERT_FALSE(r.timed_out);
  EXPECT_EQ(memory.mem(201), 42);
}

TEST(SuiteSim, FriscCountdownLoopWithBranches) {
  // acc = 3; do { acc -= 1 } while (acc != 0); store acc.
  Synthesized s("frisc");
  MemoryModel memory(s.design, {
                                   {0, instr(kLdi, 3)},
                                   {1, instr(kSubi, 1)},
                                   {2, instr(kJz, 4)},
                                   {3, instr(kJmp, 1)},
                                   {4, instr(kSt, 300)},
                                   {5, instr(kHalt)},
                               });
  Simulator sim(s.design, s.result, Stimulus{});
  sim.set_environment(&memory);
  SimOptions opts;
  opts.max_cycles = 200000;
  const auto r = sim.run(opts);
  ASSERT_FALSE(r.timed_out);
  EXPECT_EQ(memory.mem(300), 0);
  // Three SUB iterations => the loop body fetched repeatedly: at least
  // 10 instruction fetches happened (each fetch strobes rd once).
  EXPECT_GE(memory.loads(), 10);
}

}  // namespace
}  // namespace relsched::sim

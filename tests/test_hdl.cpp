#include "hdl/lower.hpp"

#include <gtest/gtest.h>

#include "hdl/lexer.hpp"
#include "hdl/parser.hpp"

namespace relsched::hdl {
namespace {

// ---- Lexer -----------------------------------------------------------------

TEST(Lexer, TokenizesOperatorsAndKeywords) {
  DiagnosticSink sink;
  const auto tokens =
      lex("process while <= >> != && x 42 0x2A 0b101010", sink);
  ASSERT_FALSE(sink.has_errors());
  ASSERT_EQ(tokens.size(), 11u);  // 10 tokens + eof
  EXPECT_EQ(tokens[0].kind, TokenKind::kProcess);
  EXPECT_EQ(tokens[1].kind, TokenKind::kWhile);
  EXPECT_EQ(tokens[2].kind, TokenKind::kLe);
  EXPECT_EQ(tokens[3].kind, TokenKind::kShr);
  EXPECT_EQ(tokens[4].kind, TokenKind::kNe);
  EXPECT_EQ(tokens[5].kind, TokenKind::kAmpAmp);
  EXPECT_EQ(tokens[6].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[6].text, "x");
  EXPECT_EQ(tokens[7].number, 42);
  EXPECT_EQ(tokens[8].number, 42);   // hex
  EXPECT_EQ(tokens[9].number, 42);   // binary
  EXPECT_EQ(tokens[10].kind, TokenKind::kEof);
}

TEST(Lexer, SkipsBothCommentStyles) {
  DiagnosticSink sink;
  const auto tokens = lex("a // line\n /* block\n comment */ b", sink);
  ASSERT_FALSE(sink.has_errors());
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(Lexer, TracksLineAndColumn) {
  DiagnosticSink sink;
  const auto tokens = lex("a\n  b", sink);
  EXPECT_EQ(tokens[0].loc.line, 1);
  EXPECT_EQ(tokens[1].loc.line, 2);
  EXPECT_EQ(tokens[1].loc.column, 3);
}

TEST(Lexer, ReportsUnterminatedComment) {
  DiagnosticSink sink;
  lex("a /* never closed", sink);
  EXPECT_TRUE(sink.has_errors());
}

TEST(Lexer, ReportsUnknownCharacter) {
  DiagnosticSink sink;
  lex("a $ b", sink);
  EXPECT_TRUE(sink.has_errors());
}

// ---- Parser ----------------------------------------------------------------

std::optional<Program> parse_ok(std::string_view src) {
  DiagnosticSink sink;
  auto program = parse(src, sink);
  EXPECT_FALSE(sink.has_errors()) << sink.to_string();
  return program;
}

TEST(Parser, MinimalProcess) {
  auto program = parse_ok("process p () { }");
  ASSERT_TRUE(program.has_value());
  ASSERT_EQ(program->processes.size(), 1u);
  EXPECT_EQ(program->processes[0].name, "p");
}

TEST(Parser, DeclarationsAndWidths) {
  auto program = parse_ok(R"(
    process p (a, b) {
      in port a[8], flag;
      out port b[16];
      boolean x[4], y;
      tag t1, t2;
    })");
  ASSERT_TRUE(program.has_value());
  const auto& proc = program->processes[0];
  ASSERT_EQ(proc.ports.size(), 3u);
  EXPECT_EQ(proc.ports[0].width, 8);
  EXPECT_EQ(proc.ports[1].width, 1);
  EXPECT_FALSE(proc.ports[2].is_input);
  ASSERT_EQ(proc.vars.size(), 2u);
  EXPECT_EQ(proc.vars[0].width, 4);
  ASSERT_EQ(proc.tags.size(), 2u);
}

TEST(Parser, ExpressionPrecedence) {
  auto program = parse_ok(R"(
    process p () {
      boolean x[8];
      x = 1 + 2 * 3;
    })");
  ASSERT_TRUE(program.has_value());
  const Stmt& assign = *program->processes[0].body[0];
  ASSERT_EQ(assign.kind, Stmt::Kind::kAssign);
  // Root must be '+' with '*' nested on the right.
  EXPECT_EQ(assign.expr->binary_op, BinaryOp::kAdd);
  EXPECT_EQ(assign.expr->rhs->binary_op, BinaryOp::kMul);
}

TEST(Parser, ComparisonInsideParallelBlockDisambiguated) {
  auto program = parse_ok(R"(
    process p () {
      boolean x[8], y[8];
      < y = x; x = y; >
      x = x < y;
    })");
  ASSERT_TRUE(program.has_value());
  EXPECT_EQ(program->processes[0].body[0]->kind, Stmt::Kind::kParallel);
  EXPECT_EQ(program->processes[0].body[1]->expr->binary_op, BinaryOp::kLt);
}

TEST(Parser, TaggedStatementsAndConstraints) {
  auto program = parse_ok(R"(
    process p (i) {
      in port i[8];
      boolean x[8], y[8];
      tag a, b;
      constraint mintime from a to b = 1 cycles;
      constraint maxtime from a to b = 3 cycles;
      a: x = read(i);
      b: y = read(i);
    })");
  ASSERT_TRUE(program.has_value());
  const auto& body = program->processes[0].body;
  ASSERT_EQ(body.size(), 4u);
  EXPECT_EQ(body[0]->kind, Stmt::Kind::kConstraint);
  EXPECT_TRUE(body[0]->constraint_is_min);
  EXPECT_FALSE(body[1]->constraint_is_min);
  EXPECT_EQ(body[1]->cycles, 3);
  EXPECT_EQ(body[2]->tag, "a");
  EXPECT_EQ(body[3]->tag, "b");
}

TEST(Parser, ControlFlowNests) {
  auto program = parse_ok(R"(
    process p (c) {
      in port c;
      boolean x[8];
      while (c) {
        if (x == 0) x = 1; else x = 2;
        repeat { x = x - 1; } until (x == 0);
      }
      wait (c);
      wait (!c);
    })");
  ASSERT_TRUE(program.has_value());
  EXPECT_EQ(program->processes[0].body[0]->kind, Stmt::Kind::kWhile);
  EXPECT_EQ(program->processes[0].body[1]->kind, Stmt::Kind::kWait);
}

TEST(Parser, ErrorOnMissingSemicolon) {
  DiagnosticSink sink;
  EXPECT_FALSE(parse("process p () { boolean x; x = 1 }", sink).has_value());
  EXPECT_TRUE(sink.has_errors());
}

// ---- Lowering --------------------------------------------------------------

TEST(Lower, SimpleAssignChainHasRawDeps) {
  auto design = compile_single(R"(
    process p () {
      boolean x[8], y[8];
      x = 1;
      y = x + 2;
    })");
  const seq::SeqGraph& g = design.graph(design.root());
  // ops: source, sink, assign x, alu add, assign y.
  ASSERT_EQ(g.op_count(), 5);
  // RAW: assign-x -> add, add -> assign-y.
  bool raw_found = false;
  for (const auto& [from, to] : g.dependencies()) {
    if (g.op(from).kind == seq::OpKind::kAssign &&
        g.op(to).kind == seq::OpKind::kAlu) {
      raw_found = true;
    }
  }
  EXPECT_TRUE(raw_found);
}

TEST(Lower, WarDependencyOrdersReadBeforeOverwrite) {
  auto design = compile_single(R"(
    process p () {
      boolean x[8], y[8];
      x = 1;
      y = x;
      x = 2;
    })");
  const seq::SeqGraph& g = design.graph(design.root());
  // The second write of x must depend on the reader (assign y reads x).
  OpId first_x, y_assign, second_x;
  for (const auto& op : g.ops()) {
    if (op.kind != seq::OpKind::kAssign) continue;
    if (op.name.rfind("x=", 0) == 0) {
      if (!first_x.is_valid()) {
        first_x = op.id;
      } else {
        second_x = op.id;
      }
    }
    if (op.name.rfind("y=", 0) == 0) y_assign = op.id;
  }
  ASSERT_TRUE(first_x.is_valid() && y_assign.is_valid() && second_x.is_valid());
  bool war = false;
  bool waw = false;
  for (const auto& [from, to] : g.dependencies()) {
    if (from == y_assign && to == second_x) war = true;
    if (from == first_x && to == second_x) waw = true;
  }
  EXPECT_TRUE(war);
  EXPECT_TRUE(waw);
}

TEST(Lower, ParallelSwapHasNoCrossDeps) {
  auto design = compile_single(R"(
    process p () {
      boolean x[8], y[8];
      x = 1;
      y = 2;
      < y = x; x = y; >
    })");
  const seq::SeqGraph& g = design.graph(design.root());
  OpId swap_y, swap_x;  // the two assigns inside the parallel block
  int xa = 0, ya = 0;
  for (const auto& op : g.ops()) {
    if (op.kind != seq::OpKind::kAssign) continue;
    if (op.name.rfind("x=", 0) == 0 && ++xa == 2) swap_x = op.id;
    if (op.name.rfind("y=", 0) == 0 && ++ya == 2) swap_y = op.id;
  }
  ASSERT_TRUE(swap_x.is_valid() && swap_y.is_valid());
  for (const auto& [from, to] : g.dependencies()) {
    EXPECT_FALSE(from == swap_y && to == swap_x);
    EXPECT_FALSE(from == swap_x && to == swap_y);
  }
}

TEST(Lower, ParallelDoubleWriteRejected) {
  const auto result = compile(R"(
    process p () {
      boolean x[8];
      < x = 1; x = 2; >
    })");
  EXPECT_FALSE(result.ok());
}

TEST(Lower, WhileBecomesLoopWithCondGraph) {
  auto design = compile_single(R"(
    process p (c) {
      in port c;
      boolean x[8];
      while (x < 8) {
        x = x + 1;
      }
    })");
  ASSERT_EQ(design.graph_count(), 3);  // root + cond + body
  const seq::SeqGraph& root = design.graph(design.root());
  const seq::SeqOp* loop = nullptr;
  for (const auto& op : root.ops()) {
    if (op.kind == seq::OpKind::kLoop) loop = &op;
  }
  ASSERT_NE(loop, nullptr);
  EXPECT_TRUE(loop->body.is_valid());
  EXPECT_TRUE(loop->cond_body.is_valid());
  EXPECT_EQ(loop->condition.kind, seq::Operand::Kind::kOpResult);
  EXPECT_EQ(design.graph(loop->body).loop_test(), seq::LoopTest::kPreTest);
}

TEST(Lower, PortInExpressionSynthesizesRead) {
  auto design = compile_single(R"(
    process p (c) {
      in port c;
      boolean x[8];
      while (c)
        ;
      x = 1;
    })");
  const seq::SeqOp* loop = nullptr;
  for (const auto& op : design.graph(design.root()).ops()) {
    if (op.kind == seq::OpKind::kLoop) loop = &op;
  }
  ASSERT_NE(loop, nullptr);
  const seq::SeqGraph& cond = design.graph(loop->cond_body);
  bool has_read = false;
  for (const auto& op : cond.ops()) {
    if (op.kind == seq::OpKind::kRead) has_read = true;
  }
  EXPECT_TRUE(has_read);
}

TEST(Lower, LoopInheritsChildUsageDependencies) {
  auto design = compile_single(R"(
    process p () {
      boolean x[8], y[8];
      x = 5;
      while (x != 0) {
        x = x - 1;
      }
      y = x;
    })");
  const seq::SeqGraph& root = design.graph(design.root());
  OpId init_x, loop_op, y_assign;
  for (const auto& op : root.ops()) {
    if (op.kind == seq::OpKind::kAssign && op.name.rfind("x=", 0) == 0) {
      init_x = op.id;
    }
    if (op.kind == seq::OpKind::kLoop) loop_op = op.id;
    if (op.kind == seq::OpKind::kAssign && op.name.rfind("y=", 0) == 0) {
      y_assign = op.id;
    }
  }
  ASSERT_TRUE(init_x.is_valid() && loop_op.is_valid() && y_assign.is_valid());
  bool init_to_loop = false, loop_to_read = false;
  for (const auto& [from, to] : root.dependencies()) {
    if (from == init_x && to == loop_op) init_to_loop = true;
    if (from == loop_op && to == y_assign) loop_to_read = true;
  }
  EXPECT_TRUE(init_to_loop);
  EXPECT_TRUE(loop_to_read);
}

TEST(Lower, WaitFencesPriorPortWrites) {
  // The awaited signal may be a device's response to earlier writes:
  // every prior port write must be a dependency predecessor of the wait.
  auto design = compile_single(R"(
    process p (ack, req, other) {
      in port ack;
      out port req, other;
      write req = 1;
      write other = 1;
      wait (ack);
      write req = 0;
    })");
  const seq::SeqGraph& g = design.graph(design.root());
  OpId wait_op, req1, other1;
  for (const auto& op : g.ops()) {
    if (op.kind == seq::OpKind::kWait) wait_op = op.id;
    if (op.kind == seq::OpKind::kWrite && op.name.rfind("write_req", 0) == 0 &&
        !req1.is_valid()) {
      req1 = op.id;
    }
    if (op.kind == seq::OpKind::kWrite && op.name.rfind("write_other", 0) == 0) {
      other1 = op.id;
    }
  }
  ASSERT_TRUE(wait_op.is_valid() && req1.is_valid() && other1.is_valid());
  bool req_fenced = false, other_fenced = false;
  for (const auto& [from, to] : g.dependencies()) {
    if (from == req1 && to == wait_op) req_fenced = true;
    if (from == other1 && to == wait_op) other_fenced = true;
  }
  EXPECT_TRUE(req_fenced);
  EXPECT_TRUE(other_fenced);
}

TEST(Lower, LoopFencesPriorPortWrites) {
  auto design = compile_single(R"(
    process p (busy, go) {
      in port busy;
      out port go;
      write go = 1;
      while (busy)
        ;
      write go = 0;
    })");
  const seq::SeqGraph& g = design.graph(design.root());
  OpId loop_op, go1;
  for (const auto& op : g.ops()) {
    if (op.kind == seq::OpKind::kLoop) loop_op = op.id;
    if (op.kind == seq::OpKind::kWrite && !go1.is_valid()) go1 = op.id;
  }
  ASSERT_TRUE(loop_op.is_valid() && go1.is_valid());
  bool fenced = false;
  for (const auto& [from, to] : g.dependencies()) {
    if (from == go1 && to == loop_op) fenced = true;
  }
  EXPECT_TRUE(fenced);
}

TEST(Lower, ConstraintsAttachToTaggedOps) {
  auto design = compile_single(R"(
    process p (i, j) {
      in port i[8], j[8];
      boolean x[8], y[8];
      tag a, b;
      constraint mintime from a to b = 1 cycles;
      constraint maxtime from a to b = 1 cycles;
      a: y = read(j);
      b: x = read(i);
    })");
  const seq::SeqGraph& root = design.graph(design.root());
  ASSERT_EQ(root.constraints().size(), 2u);
  const auto& c = root.constraints()[0];
  // The tag binds to the first op of the statement: the read.
  EXPECT_EQ(root.op(c.from).kind, seq::OpKind::kRead);
  EXPECT_EQ(root.op(c.to).kind, seq::OpKind::kRead);
}

TEST(Lower, SemanticErrors) {
  EXPECT_FALSE(compile("process p () { x = 1; }").ok());  // unknown var
  EXPECT_FALSE(compile(R"(
    process p (o) { out port o[8]; boolean x[8]; x = read(o); })")
                   .ok());  // read of out port
  EXPECT_FALSE(compile(R"(
    process p (i) { in port i[8]; write i = 1; })")
                   .ok());  // write to in port
  EXPECT_FALSE(compile(R"(
    process p (i) { in port i[8]; boolean x[8]; i = 1; })")
                   .ok());  // assign to port
  EXPECT_FALSE(compile(R"(
    process p () {
      boolean x[8];
      tag a;
      constraint mintime from a to a = 1 cycles;
      x = 1;
    })")
                   .ok());  // unbound tag
}

TEST(Lower, ProcedureSharedAcrossCallSites) {
  auto design = compile_single(R"(
    process p (o) {
      out port o[8];
      boolean x[8];
      proc bump {
        x = x + 1;
      }
      x = 0;
      call bump;
      call bump;
      write o = x;
    })");
  // One proc graph, shared by two call ops.
  int call_ops = 0;
  SeqGraphId proc_graph = SeqGraphId::invalid();
  for (const auto& op : design.graph(design.root()).ops()) {
    if (op.kind == seq::OpKind::kCall) {
      ++call_ops;
      if (proc_graph.is_valid()) {
        EXPECT_EQ(op.body, proc_graph);  // same callee graph
      }
      proc_graph = op.body;
    }
  }
  EXPECT_EQ(call_ops, 2);
  ASSERT_TRUE(proc_graph.is_valid());
  EXPECT_EQ(design.graph(proc_graph).name(), "proc_bump");
  // Dataflow through the calls: x=0 -> call -> call -> write (the call
  // op inherits the procedure's variable usage).
  const seq::SeqGraph& root = design.graph(design.root());
  int call_deps = 0;
  for (const auto& [from, to] : root.dependencies()) {
    if (root.op(to).kind == seq::OpKind::kCall ||
        root.op(from).kind == seq::OpKind::kCall) {
      ++call_deps;
    }
  }
  EXPECT_GE(call_deps, 3);
}

TEST(Lower, RecursiveProcedureRejected) {
  EXPECT_FALSE(compile(R"(
    process p () {
      boolean x[8];
      proc loop_forever {
        x = x + 1;
        call loop_forever;
      }
      call loop_forever;
    })")
                   .ok());
}

TEST(Lower, UnknownProcedureRejected) {
  EXPECT_FALSE(compile("process p () { call nope; }").ok());
}

TEST(Lower, MultipleProcessesYieldMultipleDesigns) {
  const auto result = compile(R"(
    process p1 () { boolean x[8]; x = 1; }
    process p2 () { boolean y[8]; y = 2; }
  )");
  ASSERT_TRUE(result.ok()) << result.diagnostics.to_string();
  ASSERT_EQ(result.designs.size(), 2u);
  EXPECT_EQ(result.designs[0].name(), "p1");
  EXPECT_EQ(result.designs[1].name(), "p2");
}

}  // namespace
}  // namespace relsched::hdl

// Cross-layer co-simulation: run the behavioral simulator on the gcd
// design, extract the *actual* anchor completion times of the root
// graph from the trace (including the data-dependent restart loop), and
// verify the generated control network fires every operation at exactly
// the cycles the behavioral simulation observed.
//
// This closes the loop between three layers that were each verified in
// isolation: relative schedule evaluation, the simulator's live start
// times, and the structural control hardware.
#include <gtest/gtest.h>

#include <map>

#include "ctrl/control.hpp"
#include "designs/designs.hpp"
#include "driver/synthesis.hpp"
#include "sim/simulator.hpp"

namespace relsched {
namespace {

TEST(CoSim, GcdControlNetworkMatchesBehavioralTrace) {
  seq::Design design = designs::build("gcd");
  const auto synthesis = driver::synthesize(design);
  ASSERT_TRUE(synthesis.ok()) << synthesis.message;

  sim::Stimulus stim;
  stim.set(design, "restart", 0, 1);
  stim.set(design, "restart", 5, 0);
  stim.set(design, "xin", 0, 36);
  stim.set(design, "yin", 0, 24);
  sim::Simulator simulator(design, synthesis, stim);
  sim::SimOptions opts;
  opts.record_op_events = true;
  const auto run = simulator.run(opts);
  ASSERT_FALSE(run.timed_out);

  // Collect per-op start/finish cycles of the *root* graph's first
  // activation from the trace.
  const SeqGraphId root = design.root();
  std::map<OpId, graph::Weight> start, finish;
  for (const auto& e : run.events) {
    if (e.graph != root || !e.op.is_valid()) continue;
    if (e.kind == sim::TraceEvent::Kind::kStart && start.count(e.op) == 0) {
      start[e.op] = e.cycle;
    }
    if (e.kind == sim::TraceEvent::Kind::kFinish && finish.count(e.op) == 0) {
      finish[e.op] = e.cycle;
    }
  }
  ASSERT_FALSE(start.empty());

  const auto& gs = synthesis.for_graph(root);
  const cg::ConstraintGraph& g = gs.constraint_graph;

  for (const auto style :
       {ctrl::ControlStyle::kCounter, ctrl::ControlStyle::kShiftRegister}) {
    ctrl::ControlOptions copts;
    copts.style = style;
    copts.mode = anchors::AnchorMode::kIrredundant;
    const auto unit =
        ctrl::generate_control(g, gs.analysis, gs.schedule.schedule, copts);

    // Anchor completion (done) cycles from the behavioral trace: the
    // source completes at activation (cycle 0); unbounded ops complete
    // at their observed finish cycle.
    std::vector<graph::Weight> done(static_cast<std::size_t>(g.vertex_count()),
                                    -1);
    done[g.source().index()] = 0;
    for (VertexId a : g.anchors()) {
      if (a == g.source()) continue;
      const auto it = finish.find(OpId(a.value()));
      ASSERT_NE(it, finish.end()) << "anchor " << a << " never finished";
      done[a.index()] = it->second;
    }

    const auto enables = ctrl::simulate_control(unit, g, done, run.end_cycle + 8);
    for (const auto& [op, cycle] : start) {
      if (op == design.graph(root).source()) continue;
      EXPECT_EQ(enables[static_cast<std::size_t>(op.value())], cycle)
          << ctrl::to_string(style) << " op "
          << design.graph(root).op(op).name;
    }
  }
}

TEST(CoSim, TrafficControlNetworkMatchesBehavioralTrace) {
  seq::Design design = designs::build("traffic");
  const auto synthesis = driver::synthesize(design);
  ASSERT_TRUE(synthesis.ok());

  sim::Stimulus stim;
  stim.set(design, "cars", 9, 1);
  stim.set(design, "timeout", 17, 1);
  sim::Simulator simulator(design, synthesis, stim);
  const auto run = simulator.run();
  ASSERT_FALSE(run.timed_out);

  const SeqGraphId root = design.root();
  std::map<OpId, graph::Weight> start, finish;
  for (const auto& e : run.events) {
    if (e.graph != root || !e.op.is_valid()) continue;
    if (e.kind == sim::TraceEvent::Kind::kStart && start.count(e.op) == 0) {
      start[e.op] = e.cycle;
    }
    if (e.kind == sim::TraceEvent::Kind::kFinish && finish.count(e.op) == 0) {
      finish[e.op] = e.cycle;
    }
  }

  const auto& gs = synthesis.for_graph(root);
  const cg::ConstraintGraph& g = gs.constraint_graph;
  const auto unit = ctrl::generate_control(g, gs.analysis,
                                           gs.schedule.schedule, {});
  std::vector<graph::Weight> done(static_cast<std::size_t>(g.vertex_count()),
                                  -1);
  done[g.source().index()] = 0;
  for (VertexId a : g.anchors()) {
    if (a == g.source()) continue;
    done[a.index()] = finish.at(OpId(a.value()));
  }
  const auto enables = ctrl::simulate_control(unit, g, done, run.end_cycle + 8);
  for (const auto& [op, cycle] : start) {
    if (op == design.graph(root).source()) continue;
    EXPECT_EQ(enables[static_cast<std::size_t>(op.value())], cycle)
        << design.graph(root).op(op).name;
  }
}

}  // namespace
}  // namespace relsched

// Tests of the maximal-defining-path API (Definitions 8-10) and its
// consistency with the relevant-anchor computation (Definition 9: an
// anchor is relevant iff a defining path exists).
#include <gtest/gtest.h>

#include <random>

#include "anchors/anchor_analysis.hpp"
#include "testutil.hpp"
#include "wellposed/wellposed.hpp"

namespace relsched::anchors {
namespace {

using relsched::testing::Fig2Graph;

TEST(DefiningPaths, Fig2Lengths) {
  Fig2Graph f;
  const auto an = AnchorAnalysis::compute(f.g);
  // v0's defining paths: v0 -> v1 -> v2 -> v3 -> v4 (lengths exclude
  // delta(v0)): |rho*(v0, v1)| = 0, v2: 2, v3: 3, v4: 8.
  EXPECT_EQ(an.maximal_defining_path_length(f.v0, f.v1), 0);
  EXPECT_EQ(an.maximal_defining_path_length(f.v0, f.v2), 2);
  EXPECT_EQ(an.maximal_defining_path_length(f.v0, f.v3), 3);
  EXPECT_EQ(an.maximal_defining_path_length(f.v0, f.v4), 8);
  // a's defining paths: a -> v3 (0), a -> v3 -> v4 (5).
  EXPECT_EQ(an.maximal_defining_path_length(f.a, f.v3), 0);
  EXPECT_EQ(an.maximal_defining_path_length(f.a, f.v4), 5);
  // No defining path from a to v1.
  EXPECT_EQ(an.maximal_defining_path_length(f.a, f.v1), graph::kNegInf);
}

TEST(DefiningPaths, StopsAtSecondUnboundedEdge) {
  // v0 -> a -> b -> vi: v0's defining paths end at a (the a -> b edge
  // is unbounded), so vi has no defining path from v0.
  cg::ConstraintGraph g;
  const VertexId v0 = g.add_vertex("v0", cg::Delay::bounded(0));
  const VertexId a = g.add_vertex("a", cg::Delay::unbounded());
  const VertexId b = g.add_vertex("b", cg::Delay::unbounded());
  const VertexId vi = g.add_vertex("vi", cg::Delay::bounded(1));
  g.add_sequencing_edge(v0, a);
  g.add_sequencing_edge(a, b);
  g.add_sequencing_edge(b, vi);
  const auto an = AnchorAnalysis::compute(g);
  EXPECT_EQ(an.maximal_defining_path_length(v0, a), 0);
  EXPECT_EQ(an.maximal_defining_path_length(v0, b), graph::kNegInf);
  EXPECT_EQ(an.maximal_defining_path_length(v0, vi), graph::kNegInf);
  EXPECT_EQ(an.maximal_defining_path_length(b, vi), 0);
}

TEST(DefiningPaths, FollowsBackwardEdges) {
  // Defining paths run in the *full* graph: a bounded backward edge can
  // extend them (the paper's Fig 5(b) discussion).
  cg::ConstraintGraph g;
  const VertexId v0 = g.add_vertex("v0", cg::Delay::bounded(0));
  const VertexId a = g.add_vertex("a", cg::Delay::unbounded());
  const VertexId vj = g.add_vertex("vj", cg::Delay::bounded(1));
  const VertexId vi = g.add_vertex("vi", cg::Delay::bounded(1));
  const VertexId vn = g.add_vertex("vn", cg::Delay::bounded(0));
  g.add_sequencing_edge(v0, a);
  g.add_sequencing_edge(v0, vi);
  g.add_sequencing_edge(a, vj);
  g.add_sequencing_edge(vj, vn);
  g.add_sequencing_edge(vi, vn);
  // max constraint vi -> vj (u = 3) adds backward edge (vj -> vi, -3):
  // a defining path a -> vj -> vi of length 0 + (-3) = -3 exists.
  g.add_max_constraint(vi, vj, 3);
  const auto an = AnchorAnalysis::compute(g);
  EXPECT_EQ(an.maximal_defining_path_length(a, vi), -3);
  EXPECT_TRUE(an.relevant_set(vi).contains(a));
}

class DefiningPathConsistency : public ::testing::TestWithParam<unsigned> {};

TEST_P(DefiningPathConsistency, RelevantIffDefiningPathExists) {
  // Definition 9 cross-check: the DFS-based relevant computation and
  // the Bellman-Ford-based defining-path lengths must agree exactly.
  std::mt19937 rng(GetParam());
  int checked = 0;
  for (int trial = 0; trial < 30; ++trial) {
    auto g = relsched::testing::random_constraint_graph(rng, {});
    if (!g.validate().empty()) continue;
    if (!wellposed::is_feasible(g)) continue;
    const auto an = AnchorAnalysis::compute(g);
    ++checked;
    for (int vi = 0; vi < g.vertex_count(); ++vi) {
      const VertexId v(vi);
      for (VertexId a : an.anchors()) {
        if (a == v) continue;
        const bool relevant = an.relevant_set(v).contains(a);
        const bool has_path =
            an.maximal_defining_path_length(a, v) != graph::kNegInf;
        EXPECT_EQ(relevant, has_path)
            << "anchor " << a << " vertex " << v << " seed " << GetParam();
      }
    }
  }
  EXPECT_GT(checked, 5);
}

TEST_P(DefiningPathConsistency, DefiningPathNeverExceedsConeLongestPath) {
  // |rho*(a, v)| <= length(a, v) = sigma_a^min(v) whenever both exist
  // (the defining path is one of the paths the longest path ranges
  // over, within the cone).
  std::mt19937 rng(GetParam() + 17);
  for (int trial = 0; trial < 30; ++trial) {
    auto g = relsched::testing::random_constraint_graph(rng, {});
    if (!g.validate().empty()) continue;
    if (wellposed::make_wellposed(g).status != wellposed::Status::kWellPosed) {
      continue;
    }
    const auto an = AnchorAnalysis::compute(g);
    for (int vi = 0; vi < g.vertex_count(); ++vi) {
      const VertexId v(vi);
      for (VertexId a : an.relevant_set(v)) {
        const auto defining = an.maximal_defining_path_length(a, v);
        const auto cone = an.length(a, v);
        if (defining == graph::kNegInf || cone == graph::kNegInf) continue;
        EXPECT_LE(defining, cone) << "anchor " << a << " vertex " << v;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DefiningPathConsistency,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace relsched::anchors

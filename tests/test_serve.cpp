// The serve layer: wire-protocol JSON round-trips and framing, then
// the full daemon loop over a real AF_UNIX socket -- session reuse,
// forced eviction + transparent restore (digest-stable), admission
// shedding, poison-request quarantine, graceful shutdown, client io
// timeouts, snapshot faults during eviction, and WAL-streaming
// replication to a hot standby (including promote failover and
// injected-divergence healing).
#include <gtest/gtest.h>
#include <dirent.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <thread>

#include "base/fault_fs.hpp"
#include "cg/graph_io.hpp"
#include "engine/session.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "testutil.hpp"

namespace relsched::serve {
namespace {

/// Null-safe field access: absent keys read as JSON null instead of
/// dereferencing nullptr, so a bad reply fails the EXPECT, not the
/// process.
const Json& field(const Json& reply, const char* key) {
  static const Json kNull;
  const Json* value = reply.get(key);
  return value != nullptr ? *value : kNull;
}

TEST(Json, BuilderRenderParseRoundTrip) {
  Json request = Json::object();
  request.set("op", Json::string("edit"));
  request.set("count", Json::number(42LL));
  request.set("flag", Json::boolean(true));
  request.set("nothing", Json::null());
  Json items = Json::array();
  items.push(Json::number(1LL));
  items.push(Json::string("two"));
  request.set("items", std::move(items));

  const std::string text = request.render();
  std::string error;
  std::optional<Json> parsed = Json::parse(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(field(*parsed, "op").as_string(), "edit");
  EXPECT_EQ(field(*parsed, "count").as_int(), 42);
  EXPECT_TRUE(field(*parsed, "flag").as_bool());
  ASSERT_EQ(field(*parsed, "items").size(), 2u);
  EXPECT_EQ(field(*parsed, "items").at(1)->as_string(), "two");
  EXPECT_EQ(parsed->get("missing"), nullptr);
  // Render -> parse -> render is a fixed point (insertion order).
  EXPECT_EQ(parsed->render(), text);
}

TEST(Json, StringEscapesSurviveRoundTrip) {
  const std::string hairy =
      std::string("line\nbreak\ttab \"quote\" \\ ") + '\x01' + " control";
  Json v = Json::object();
  v.set("s", Json::string(hairy));
  std::string error;
  std::optional<Json> parsed = Json::parse(v.render(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(field(*parsed, "s").as_string(), hairy);

  // \uXXXX escapes, including a surrogate pair, decode to UTF-8.
  std::optional<Json> u =
      Json::parse(R"({"s":"a\u00e9\ud83d\ude00z"})", &error);
  ASSERT_TRUE(u.has_value()) << error;
  EXPECT_EQ(field(*u, "s").as_string(), "a\xc3\xa9\xf0\x9f\x98\x80z");
}

TEST(Json, MalformedInputsRejectedWithError) {
  const char* bad[] = {
      "",
      "{",
      "{\"a\":}",
      "{\"a\":1,}",
      "[1 2]",
      "{\"a\":\"unterminated}",
      "tru",
      "{\"a\":1} trailing",
      R"({"s":"\ud800"})",  // lone high surrogate
  };
  for (const char* text : bad) {
    std::string error;
    EXPECT_FALSE(Json::parse(text, &error).has_value()) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(Json, DepthCapRejectsDeepNesting) {
  std::string deep;
  for (int i = 0; i < kMaxJsonDepth + 1; ++i) deep += '[';
  deep += '1';
  for (int i = 0; i < kMaxJsonDepth + 1; ++i) deep += ']';
  std::string error;
  EXPECT_FALSE(Json::parse(deep, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(Framing, RoundTripOversizeAndCleanEof) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

  const std::string payload = R"({"op":"ping"})";
  ASSERT_TRUE(write_frame(fds[0], payload));
  std::string got, error;
  ASSERT_TRUE(read_frame(fds[1], &got, &error)) << error;
  EXPECT_EQ(got, payload);

  // An oversized length prefix is a protocol violation, not an OOM.
  const std::uint32_t huge = kMaxFrameBytes + 1;
  char prefix[4];
  std::memcpy(prefix, &huge, 4);
  ASSERT_EQ(::write(fds[0], prefix, 4), 4);
  EXPECT_FALSE(read_frame(fds[1], &got, &error));
  EXPECT_FALSE(error.empty());

  // Closing the peer reads as clean EOF: false with an empty error.
  ::close(fds[0]);
  error = "sentinel";
  EXPECT_FALSE(read_frame(fds[1], &got, &error));
  EXPECT_TRUE(error.empty());
  ::close(fds[1]);
}

// ---- End-to-end daemon tests ----------------------------------------------

/// A server on a real unix socket plus a helper to call it; the server
/// thread is stopped via Server::shutdown() and joined in the
/// destructor.
struct LiveServer {
  ServerOptions options;
  std::unique_ptr<Server> server;
  std::thread thread;
  std::string root;

  explicit LiveServer(int max_live = 64, int max_connections = 16,
                      std::function<void(ServerOptions&)> tweak = {}) {
    root = ::testing::TempDir() + "relsched_serve_XXXXXX";
    EXPECT_NE(::mkdtemp(root.data()), nullptr);
    options.socket_path = root + "/sock";
    options.state_dir = root + "/state";
    options.max_live_sessions = max_live;
    options.max_connections = max_connections;
    options.certify = false;
    if (tweak) tweak(options);
    server = std::make_unique<Server>(options);
    std::string error;
    EXPECT_TRUE(server->start(&error)) << error;
    thread = std::thread([this] { server->serve_forever(); });
  }

  ~LiveServer() {
    server->shutdown();
    if (thread.joinable()) thread.join();
  }

  Json call(Client& client, const Json& request) {
    Json reply;
    std::string error;
    EXPECT_TRUE(client.call_with_backoff(request, &reply,
                                         std::chrono::seconds(10), &error))
        << error;
    return reply;
  }

  Client connect() {
    Client client;
    std::string error;
    EXPECT_TRUE(
        client.connect(options.socket_path, std::chrono::seconds(5), &error))
        << error;
    return client;
  }
};

Json open_request(const std::string& design_text) {
  Json request = Json::object();
  request.set("op", Json::string("open"));
  request.set("design_text", Json::string(design_text));
  return request;
}

Json resolve_request(const std::string& sid) {
  Json request = Json::object();
  request.set("op", Json::string("resolve"));
  request.set("session", Json::string(sid));
  return request;
}

Json one_edit_request(const std::string& sid, Json edit) {
  Json request = Json::object();
  request.set("op", Json::string("edit"));
  request.set("session", Json::string(sid));
  Json edits = Json::array();
  edits.push(std::move(edit));
  request.set("edits", std::move(edits));
  return request;
}

Json add_min_edit(int from, int to, long long cycles) {
  Json edit = Json::object();
  edit.set("kind", Json::string("add_min"));
  edit.set("from", Json::number(static_cast<long long>(from)));
  edit.set("to", Json::number(static_cast<long long>(to)));
  edit.set("cycles", Json::number(cycles));
  return edit;
}

TEST(ServeEndToEnd, OpenEditResolveAgreeWithLocalOracle) {
  LiveServer live;
  Client client = live.connect();

  testing::Fig2Graph fig;
  const std::string design = cg::to_text(fig.g);
  Json opened = live.call(client, open_request(design));
  ASSERT_TRUE(field(opened, "ok").as_bool()) << opened.render();
  const std::string sid = field(opened, "session").as_string();
  const long long base = field(opened, "base_revision").as_int();
  EXPECT_EQ(field(opened, "revision").as_int(), base);

  Json edited = live.call(
      client,
      one_edit_request(sid, add_min_edit(fig.v0.value(), fig.v4.value(), 4)));
  ASSERT_TRUE(field(edited, "ok").as_bool()) << edited.render();
  EXPECT_EQ(field(edited, "revision").as_int(), base + 1);
  EXPECT_EQ(field(edited, "status").as_string(), "scheduled");

  // The oracle: same design, same edit, no server.
  testing::Fig2Graph oracle_fig;
  engine::SessionOptions oracle_options;
  oracle_options.certify = false;
  oracle_options.threads = 1;
  engine::SynthesisSession oracle(std::move(oracle_fig.g), oracle_options);
  oracle.add_min_constraint(fig.v0, fig.v4, 4);
  const engine::Products& products = oracle.resolve();
  char expected[17];
  std::snprintf(expected, sizeof expected, "%016llx",
                static_cast<unsigned long long>(products_digest(products)));
  EXPECT_EQ(field(edited, "digest").as_string(), expected);

  Json resolved = live.call(client, resolve_request(sid));
  ASSERT_TRUE(field(resolved, "ok").as_bool()) << resolved.render();
  EXPECT_EQ(field(resolved, "digest").as_string(), expected);
}

TEST(ServeEndToEnd, EvictionAndRestoreKeepDigestsStable) {
  // max_live_sessions = 1: opening the second design must evict the
  // first; touching the first again restores it from its snapshot.
  LiveServer live(/*max_live=*/1);
  Client client = live.connect();

  testing::Fig2Graph fig;
  testing::Fig3bGraph other;

  Json opened_a = live.call(client, open_request(cg::to_text(fig.g)));
  ASSERT_TRUE(field(opened_a, "ok").as_bool()) << opened_a.render();
  const std::string sid_a = field(opened_a, "session").as_string();
  Json edited = live.call(
      client,
      one_edit_request(sid_a,
                       add_min_edit(fig.v0.value(), fig.v4.value(), 4)));
  ASSERT_TRUE(field(edited, "ok").as_bool()) << edited.render();
  const std::string digest = field(edited, "digest").as_string();
  const long long revision = field(edited, "revision").as_int();

  Json opened_b = live.call(client, open_request(cg::to_text(other.g)));
  ASSERT_TRUE(field(opened_b, "ok").as_bool()) << opened_b.render();

  // Touching A again transparently restores it: same revision (no edit
  // was lost) and the bit-identical digest.
  Json resolved = live.call(client, resolve_request(sid_a));
  ASSERT_TRUE(field(resolved, "ok").as_bool()) << resolved.render();
  EXPECT_EQ(field(resolved, "revision").as_int(), revision);
  EXPECT_EQ(field(resolved, "digest").as_string(), digest);

  Json stats = Json::object();
  stats.set("op", Json::string("stats"));
  Json counters = live.call(client, stats);
  EXPECT_GE(field(counters, "evictions").as_int(), 1);
  EXPECT_GE(field(counters, "restores").as_int(), 1);
  EXPECT_EQ(field(counters, "restore_cold_rebuilds").as_int(), 0);
  EXPECT_EQ(field(counters, "quarantined_sessions").as_int(), 0);
}

TEST(ServeEndToEnd, ExplicitEvictThenEditResumesFromRevision) {
  LiveServer live;
  Client client = live.connect();
  testing::Fig2Graph fig;
  Json opened = live.call(client, open_request(cg::to_text(fig.g)));
  ASSERT_TRUE(field(opened, "ok").as_bool()) << opened.render();
  const std::string sid = field(opened, "session").as_string();
  const long long base = field(opened, "base_revision").as_int();

  Json e1 = live.call(
      client,
      one_edit_request(sid, add_min_edit(fig.v0.value(), fig.v4.value(), 4)));
  ASSERT_TRUE(field(e1, "ok").as_bool()) << e1.render();

  Json evict = Json::object();
  evict.set("op", Json::string("evict"));
  evict.set("session", Json::string(sid));
  Json evicted = live.call(client, evict);
  ASSERT_TRUE(field(evicted, "ok").as_bool()) << evicted.render();

  Json e2 = live.call(
      client,
      one_edit_request(sid, add_min_edit(fig.v1.value(), fig.v3.value(), 1)));
  ASSERT_TRUE(field(e2, "ok").as_bool()) << e2.render();
  // Revision arithmetic continues across the evict/restore boundary:
  // nothing acknowledged was lost.
  EXPECT_EQ(field(e2, "revision").as_int(), base + 2);
}

TEST(ServeEndToEnd, PoisonEditQuarantinesButKeepsServing) {
  LiveServer live;
  Client client = live.connect();
  testing::Fig2Graph fig;
  Json opened = live.call(client, open_request(cg::to_text(fig.g)));
  ASSERT_TRUE(field(opened, "ok").as_bool()) << opened.render();
  const std::string sid = field(opened, "session").as_string();

  // remove_constraint on a sequencing edge passes the range checks but
  // violates an engine invariant (ApiError): a poison request.
  Json poison = Json::object();
  poison.set("kind", Json::string("remove_constraint"));
  poison.set("edge", Json::number(0LL));
  Json reply = live.call(client, one_edit_request(sid, std::move(poison)));
  EXPECT_FALSE(field(reply, "ok").as_bool());
  EXPECT_EQ(field(reply, "code").as_string(), kCodeBadRequest);
  EXPECT_TRUE(field(reply, "quarantined").as_bool());

  // The session is quarantined -- pinned live, certified cold -- but
  // healthy requests still work.
  Json per_session = Json::object();
  per_session.set("op", Json::string("stats"));
  per_session.set("session", Json::string(sid));
  Json sstats = live.call(client, per_session);
  EXPECT_TRUE(field(sstats, "quarantined").as_bool()) << sstats.render();

  Json edited = live.call(
      client,
      one_edit_request(sid, add_min_edit(fig.v0.value(), fig.v4.value(), 4)));
  ASSERT_TRUE(field(edited, "ok").as_bool()) << edited.render();
  EXPECT_EQ(field(edited, "status").as_string(), "scheduled");

  // A quarantined session cannot be explicitly evicted: its snapshot
  // line is not trusted.
  Json evict = Json::object();
  evict.set("op", Json::string("evict"));
  evict.set("session", Json::string(sid));
  Json evicted = live.call(client, evict);
  EXPECT_FALSE(field(evicted, "ok").as_bool());
  EXPECT_EQ(field(evicted, "code").as_string(), kCodeBadRequest);
}

TEST(ServeEndToEnd, UnknownSessionAndMalformedRequestsRejected) {
  LiveServer live;
  Client client = live.connect();

  Json reply = live.call(client, resolve_request("00000000deadbeef"));
  EXPECT_FALSE(field(reply, "ok").as_bool());
  EXPECT_EQ(field(reply, "code").as_string(), kCodeUnknownSession);

  Json nonsense = Json::object();
  nonsense.set("op", Json::string("frobnicate"));
  reply = live.call(client, nonsense);
  EXPECT_FALSE(field(reply, "ok").as_bool());
  EXPECT_EQ(field(reply, "code").as_string(), kCodeBadRequest);

  // Out-of-range edit operands are rejected before any state changes.
  testing::Fig2Graph fig;
  Json opened = live.call(client, open_request(cg::to_text(fig.g)));
  ASSERT_TRUE(field(opened, "ok").as_bool()) << opened.render();
  const std::string sid = field(opened, "session").as_string();
  const long long revision = field(opened, "revision").as_int();
  reply = live.call(client, one_edit_request(sid, add_min_edit(0, 999, 1)));
  EXPECT_FALSE(field(reply, "ok").as_bool());
  EXPECT_EQ(field(reply, "code").as_string(), kCodeBadRequest);
  reply = live.call(client, resolve_request(sid));
  EXPECT_EQ(field(reply, "revision").as_int(), revision);
}

TEST(ServeEndToEnd, ConnectionCapShedsWithRetryAfter) {
  LiveServer live(/*max_live=*/64, /*max_connections=*/1);
  Client first = live.connect();
  Json ping = Json::object();
  ping.set("op", Json::string("ping"));
  Json reply = live.call(first, ping);
  EXPECT_TRUE(field(reply, "ok").as_bool());

  // The second concurrent connection gets one RETRY_AFTER reply and is
  // hung up on -- shedding, not queueing.
  Client second;
  std::string error;
  ASSERT_TRUE(second.connect(live.options.socket_path,
                             std::chrono::seconds(5), &error))
      << error;
  Json shed;
  ASSERT_TRUE(second.call(ping, &shed, &error)) << error;
  EXPECT_FALSE(field(shed, "ok").as_bool());
  EXPECT_EQ(field(shed, "code").as_string(), kCodeRetryAfter);
  EXPECT_GT(field(shed, "retry_after_ms").as_int(), 0);
}

TEST(ServeEndToEnd, StateSurvivesServerRestart) {
  std::string root = ::testing::TempDir() + "relsched_restart_XXXXXX";
  ASSERT_NE(::mkdtemp(root.data()), nullptr);
  testing::Fig2Graph fig;
  const std::string design = cg::to_text(fig.g);
  std::string digest;
  long long revision = 0;

  ServerOptions options;
  options.socket_path = root + "/sock";
  options.state_dir = root + "/state";
  options.certify = false;
  {
    Server server(options);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    std::thread thread([&server] { server.serve_forever(); });
    Client client;
    ASSERT_TRUE(
        client.connect(options.socket_path, std::chrono::seconds(5), &error))
        << error;
    Json opened, edited;
    ASSERT_TRUE(client.call(open_request(design), &opened, &error)) << error;
    ASSERT_TRUE(field(opened, "ok").as_bool()) << opened.render();
    const std::string sid = field(opened, "session").as_string();
    ASSERT_TRUE(client.call(
        one_edit_request(sid, add_min_edit(fig.v0.value(), fig.v4.value(), 4)),
        &edited, &error))
        << error;
    ASSERT_TRUE(field(edited, "ok").as_bool()) << edited.render();
    digest = field(edited, "digest").as_string();
    revision = field(edited, "revision").as_int();
    // The "shutdown" op (not just Server::shutdown) drains and
    // checkpoints every live session.
    Json bye = Json::object();
    bye.set("op", Json::string("shutdown"));
    Json ignored;
    (void)client.call(bye, &ignored, &error);
    thread.join();
  }
  {
    // A brand-new server on the same state dir: the reopened session
    // resumes at the acknowledged revision with the same digest.
    Server server(options);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    std::thread thread([&server] { server.serve_forever(); });
    Client client;
    ASSERT_TRUE(
        client.connect(options.socket_path, std::chrono::seconds(5), &error))
        << error;
    Json opened, resolved;
    ASSERT_TRUE(client.call(open_request(design), &opened, &error)) << error;
    ASSERT_TRUE(field(opened, "ok").as_bool()) << opened.render();
    EXPECT_TRUE(field(opened, "restored").as_bool()) << opened.render();
    EXPECT_EQ(field(opened, "revision").as_int(), revision);
    ASSERT_TRUE(client.call(
        resolve_request(field(opened, "session").as_string()), &resolved,
        &error))
        << error;
    EXPECT_EQ(field(resolved, "digest").as_string(), digest);
    server.shutdown();
    thread.join();
  }
}

// ---- Client io timeouts ---------------------------------------------------

TEST(ServeClient, IoTimeoutSurfacesStructuredErrorAndClosesConnection) {
  // A listener that accepts nothing and answers nothing: the unix
  // socket backlog lets connect() succeed, then the daemon "hangs".
  std::string root = ::testing::TempDir() + "relsched_mute_XXXXXX";
  ASSERT_NE(::mkdtemp(root.data()), nullptr);
  const std::string path = root + "/sock";
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  ASSERT_EQ(::listen(fd, 4), 0);

  Client client;
  client.set_io_timeout(std::chrono::milliseconds(100));
  std::string error;
  ASSERT_TRUE(client.connect(path, std::chrono::seconds(2), &error)) << error;

  Json ping = Json::object();
  ping.set("op", Json::string("ping"));
  Json reply;
  EXPECT_FALSE(client.call(ping, &reply, &error));
  // The structured prefix distinguishes a hung daemon from a dead one,
  // and a blown deadline poisons the connection (a late reply would
  // desynchronize the framing).
  EXPECT_EQ(error.rfind(Client::kTimeoutPrefix, 0), 0u) << error;
  EXPECT_FALSE(client.connected());
  ::close(fd);
}

// ---- Snapshot faults during eviction --------------------------------------

/// Disarms the process-wide fault injector even when a test assertion
/// bails out early, so later tests never run against a faulty "disk".
struct ScopedFaults {
  explicit ScopedFaults(const base::FaultFsConfig& config) {
    base::fault_fs().arm(config);
  }
  ~ScopedFaults() { base::fault_fs().disarm(); }
};

/// Fails the test if any "*.tmp.*" leftover exists under `dir`.
void expect_no_stranded_temps(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;  // dir may legitimately not exist yet
  while (const dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    EXPECT_EQ(name.find(".tmp."), std::string::npos)
        << "leaked temp file: " << dir << "/" << name;
    if (entry->d_type == DT_DIR) expect_no_stranded_temps(dir + "/" + name);
  }
  ::closedir(d);
}

TEST(ServeEndToEnd, SnapshotFaultsDuringEvictionKeepSessionLive) {
  // kAlways WAL sync: the edit below reaches disk at its own commit
  // point, so the armed fault schedules hit only the snapshot write
  // inside the eviction checkpoint, not a deferred WAL flush.
  LiveServer live(/*max_live=*/64, /*max_connections=*/16,
                  [](ServerOptions& o) {
                    o.wal.sync = persist::WalOptions::Sync::kAlways;
                  });
  Client client = live.connect();
  testing::Fig2Graph fig;
  Json opened = live.call(client, open_request(cg::to_text(fig.g)));
  ASSERT_TRUE(field(opened, "ok").as_bool()) << opened.render();
  const std::string sid = field(opened, "session").as_string();
  Json edited = live.call(
      client,
      one_edit_request(sid, add_min_edit(fig.v0.value(), fig.v4.value(), 4)));
  ASSERT_TRUE(field(edited, "ok").as_bool()) << edited.render();
  const std::string digest = field(edited, "digest").as_string();
  const long long revision = field(edited, "revision").as_int();

  Json evict = Json::object();
  evict.set("op", Json::string("evict"));
  evict.set("session", Json::string(sid));
  {
    // Torn-rename disk: the snapshot temp writes fine but can never be
    // published. The eviction must fail structurally instead of
    // dropping state that never reached disk.
    base::FaultFsConfig config;
    config.seed = 7;
    config.rename_per10k = 10000;
    ScopedFaults faults(config);
    Json refused = live.call(client, evict);
    EXPECT_FALSE(field(refused, "ok").as_bool()) << refused.render();
    EXPECT_EQ(field(refused, "code").as_string(), kCodeIo);
  }
  {
    // Disk full: every write fails hard before the temp even fills.
    base::FaultFsConfig config;
    config.seed = 7;
    config.write_per10k = 10000;
    config.write_enospc_per10k = 10000;
    ScopedFaults faults(config);
    Json refused = live.call(client, evict);
    EXPECT_FALSE(field(refused, "ok").as_bool()) << refused.render();
    EXPECT_EQ(field(refused, "code").as_string(), kCodeIo);
  }

  // The session survived both failed checkpoints -- still live, still
  // at the acknowledged revision, digest bit-identical -- and neither
  // abort stranded a temp file anywhere under the state dir.
  Json resolved = live.call(client, resolve_request(sid));
  ASSERT_TRUE(field(resolved, "ok").as_bool()) << resolved.render();
  EXPECT_EQ(field(resolved, "revision").as_int(), revision);
  EXPECT_EQ(field(resolved, "digest").as_string(), digest);
  expect_no_stranded_temps(live.options.state_dir);

  Json stats = Json::object();
  stats.set("op", Json::string("stats"));
  Json counters = live.call(client, stats);
  EXPECT_GE(field(counters, "checkpoint_failures").as_int(), 2);
  EXPECT_EQ(field(counters, "quarantined_sessions").as_int(), 0);

  // With the disk healthy the same eviction goes through, and the
  // restore it seeds is digest-stable.
  Json evicted = live.call(client, evict);
  ASSERT_TRUE(field(evicted, "ok").as_bool()) << evicted.render();
  resolved = live.call(client, resolve_request(sid));
  ASSERT_TRUE(field(resolved, "ok").as_bool()) << resolved.render();
  EXPECT_EQ(field(resolved, "digest").as_string(), digest);
}

// ---- Replication ----------------------------------------------------------

Json stats_of(LiveServer& live, Client& client) {
  Json stats = Json::object();
  stats.set("op", Json::string("stats"));
  return live.call(client, stats);
}

TEST(ServeReplication, StreamsToStandbyAndPromoteServesIdenticalState) {
  // The standby must be listening before the primary's replicator
  // dials it; LiveServer declaration order also tears the primary down
  // first, which stops its replicator before the standby goes away.
  LiveServer standby(64, 16, [](ServerOptions& o) { o.standby = true; });
  LiveServer primary(64, 16, [&](ServerOptions& o) {
    o.replicate_to = standby.options.socket_path;
  });
  Client client = primary.connect();

  testing::Fig2Graph fig;
  Json opened = primary.call(client, open_request(cg::to_text(fig.g)));
  ASSERT_TRUE(field(opened, "ok").as_bool()) << opened.render();
  const std::string sid = field(opened, "session").as_string();
  Json edited = primary.call(
      client,
      one_edit_request(sid, add_min_edit(fig.v0.value(), fig.v4.value(), 4)));
  ASSERT_TRUE(field(edited, "ok").as_bool()) << edited.render();
  // Semi-synchronous contract: an ok reply without the degraded marker
  // means the standby acknowledged this commit before the client heard
  // about it.
  EXPECT_FALSE(field(edited, "repl_degraded").as_bool()) << edited.render();
  const std::string digest = field(edited, "digest").as_string();
  const long long revision = field(edited, "revision").as_int();

  // Session verbs are fenced off on the standby until promotion: a
  // client that failed over too eagerly gets a structured refusal, not
  // a divergent write target.
  Client sclient = standby.connect();
  Json refused = standby.call(sclient, resolve_request(sid));
  EXPECT_FALSE(field(refused, "ok").as_bool());
  EXPECT_EQ(field(refused, "code").as_string(), kCodeStandby);

  // The stream actually ran: snapshot bootstrap plus applied appends,
  // and zero divergences.
  Json scounters = stats_of(standby, sclient);
  EXPECT_TRUE(field(scounters, "standby").as_bool()) << scounters.render();
  EXPECT_GE(field(scounters, "repl_snapshots_installed").as_int() +
                field(scounters, "repl_appends_applied").as_int(),
            1)
      << scounters.render();
  EXPECT_EQ(field(scounters, "repl_divergences").as_int(), 0);

  // Promote: the standby flips role and serves the replicated session
  // at the acknowledged revision with a bit-identical digest.
  Json promote = Json::object();
  promote.set("op", Json::string("promote"));
  Json promoted = standby.call(sclient, promote);
  ASSERT_TRUE(field(promoted, "ok").as_bool()) << promoted.render();
  EXPECT_TRUE(field(promoted, "was_standby").as_bool());

  Json resolved = standby.call(sclient, resolve_request(sid));
  ASSERT_TRUE(field(resolved, "ok").as_bool()) << resolved.render();
  EXPECT_EQ(field(resolved, "revision").as_int(), revision);
  EXPECT_EQ(field(resolved, "digest").as_string(), digest);

  // Promote is idempotent role-wise, and the replication verbs are now
  // fenced: a primary that outlived its own demotion cannot keep
  // writing into the promoted node (zombie fencing).
  Json again = standby.call(sclient, promote);
  ASSERT_TRUE(field(again, "ok").as_bool());
  EXPECT_FALSE(field(again, "was_standby").as_bool());
  Json subscribe = Json::object();
  subscribe.set("op", Json::string("repl_subscribe"));
  Json fenced = standby.call(sclient, subscribe);
  EXPECT_FALSE(field(fenced, "ok").as_bool());
  EXPECT_EQ(field(fenced, "code").as_string(), kCodeBadRequest);
}

TEST(ServeReplication, InjectedDivergenceDetectedCountedAndHealed) {
  LiveServer standby(64, 16, [](ServerOptions& o) { o.standby = true; });
  LiveServer primary(64, 16, [&](ServerOptions& o) {
    o.replicate_to = standby.options.socket_path;
    // Corrupt the first streamed add_min record: the standby applies it
    // cleanly, so only the digest handshake can catch the divergence.
    o.repl_corrupt_record_at = 1;
  });
  Client client = primary.connect();

  testing::Fig2Graph fig;
  Json opened = primary.call(client, open_request(cg::to_text(fig.g)));
  ASSERT_TRUE(field(opened, "ok").as_bool()) << opened.render();
  const std::string sid = field(opened, "session").as_string();

  // A run of min-constraint edits: at least one ships as a WAL record
  // (rather than inside the bootstrap snapshot) and gets corrupted.
  std::string digest;
  long long revision = 0;
  for (int i = 0; i < 5; ++i) {
    Json edited = primary.call(
        client, one_edit_request(
                    sid, add_min_edit(fig.v0.value(), fig.v4.value(), 3 + i)));
    ASSERT_TRUE(field(edited, "ok").as_bool()) << edited.render();
    digest = field(edited, "digest").as_string();
    revision = field(edited, "revision").as_int();
  }

  // The primary's ack handshake must notice the mismatch, count it,
  // and heal by re-shipping a snapshot; poll until the re-bootstrap
  // lands (the stream runs on its own thread).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  bool healed = false;
  while (std::chrono::steady_clock::now() < deadline) {
    Json counters = stats_of(primary, client);
    if (field(counters, "repl_stream_divergences").as_int() >= 1 &&
        field(counters, "repl_snapshots_shipped").as_int() >= 2) {
      healed = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(healed) << stats_of(primary, client).render();

  // After healing, promote the standby: it must serve the *oracle*
  // state, not the corrupted one it briefly held.
  Client sclient = standby.connect();
  Json scounters = stats_of(standby, sclient);
  EXPECT_GE(field(scounters, "repl_divergences").as_int(), 1)
      << scounters.render();
  Json promote = Json::object();
  promote.set("op", Json::string("promote"));
  Json promoted = standby.call(sclient, promote);
  ASSERT_TRUE(field(promoted, "ok").as_bool()) << promoted.render();
  Json resolved = standby.call(sclient, resolve_request(sid));
  ASSERT_TRUE(field(resolved, "ok").as_bool()) << resolved.render();
  EXPECT_EQ(field(resolved, "revision").as_int(), revision);
  EXPECT_EQ(field(resolved, "digest").as_string(), digest);
}

}  // namespace
}  // namespace relsched::serve

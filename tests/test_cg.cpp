#include "cg/constraint_graph.hpp"

#include <gtest/gtest.h>

#include "base/error.hpp"
#include "testutil.hpp"

namespace relsched::cg {
namespace {

using relsched::testing::Fig2Graph;

TEST(Delay, BoundedAndUnbounded) {
  EXPECT_TRUE(Delay::unbounded().is_unbounded());
  EXPECT_FALSE(Delay::bounded(3).is_unbounded());
  EXPECT_EQ(Delay::bounded(3).cycles(), 3);
  EXPECT_EQ(Delay::unbounded().cycles_or_zero(), 0);
  EXPECT_EQ(Delay::bounded(7).cycles_or_zero(), 7);
  EXPECT_THROW(Delay::bounded(-1), ApiError);
  EXPECT_THROW((void)Delay::unbounded().cycles(), ApiError);
}

TEST(ConstraintGraph, SourceIsFirstVertexAndAlwaysAnchor) {
  ConstraintGraph g;
  const VertexId v0 = g.add_vertex("v0", Delay::bounded(0));
  const VertexId v1 = g.add_vertex("v1", Delay::bounded(2));
  g.add_sequencing_edge(v0, v1);
  EXPECT_EQ(g.source(), v0);
  EXPECT_TRUE(g.is_anchor(v0));
  EXPECT_FALSE(g.is_anchor(v1));
  // Outgoing sequencing edges of the source carry unbounded weight.
  EXPECT_TRUE(g.weight(*g.out_edges(v0).begin()).unbounded);
}

TEST(ConstraintGraph, SequencingWeightIsTailDelay) {
  ConstraintGraph g;
  const VertexId v0 = g.add_vertex("v0", Delay::bounded(0));
  const VertexId v1 = g.add_vertex("v1", Delay::bounded(3));
  const VertexId v2 = g.add_vertex("v2", Delay::bounded(0));
  g.add_sequencing_edge(v0, v1);
  const EdgeId e12 = g.add_sequencing_edge(v1, v2);
  EXPECT_EQ(g.weight(e12).value, 3);
  EXPECT_FALSE(g.weight(e12).unbounded);
  // set_delay must be visible through existing edges (no stale weights).
  g.set_delay(v1, Delay::bounded(9));
  EXPECT_EQ(g.weight(e12).value, 9);
  g.set_delay(v1, Delay::unbounded());
  EXPECT_TRUE(g.weight(e12).unbounded);
  EXPECT_TRUE(g.is_anchor(v1));
}

TEST(ConstraintGraph, MaxConstraintBecomesBackwardEdge) {
  ConstraintGraph g;
  const VertexId v0 = g.add_vertex("v0", Delay::bounded(0));
  const VertexId v1 = g.add_vertex("v1", Delay::bounded(1));
  g.add_sequencing_edge(v0, v1);
  const EdgeId e = g.add_max_constraint(v0, v1, 5);
  EXPECT_EQ(g.edge(e).from, v1);  // backward: (to, from)
  EXPECT_EQ(g.edge(e).to, v0);
  EXPECT_EQ(g.weight(e).value, -5);
  EXPECT_EQ(g.backward_edge_count(), 1);
}

TEST(ConstraintGraph, MinConstraintIsForwardFixedWeight) {
  ConstraintGraph g;
  const VertexId v0 = g.add_vertex("v0", Delay::bounded(0));
  const VertexId v1 = g.add_vertex("v1", Delay::bounded(1));
  g.add_sequencing_edge(v0, v1);
  const EdgeId e = g.add_min_constraint(v0, v1, 4);
  EXPECT_EQ(g.edge(e).from, v0);
  EXPECT_EQ(g.weight(e).value, 4);
  EXPECT_TRUE(is_forward(g.edge(e).kind));
}

TEST(ConstraintGraph, RejectsNegativeConstraintsAndSelfLoops) {
  ConstraintGraph g;
  const VertexId v0 = g.add_vertex("v0", Delay::bounded(0));
  const VertexId v1 = g.add_vertex("v1", Delay::bounded(1));
  EXPECT_THROW(g.add_min_constraint(v0, v1, -1), ApiError);
  EXPECT_THROW(g.add_max_constraint(v0, v1, -1), ApiError);
  EXPECT_THROW(g.add_sequencing_edge(v0, v0), ApiError);
}

TEST(ConstraintGraph, SinkDetection) {
  Fig2Graph f;
  EXPECT_EQ(f.g.sink(), f.v4);
}

TEST(ConstraintGraph, ValidateAcceptsPaperExample) {
  Fig2Graph f;
  EXPECT_TRUE(f.g.validate().empty());
}

TEST(ConstraintGraph, ValidateRejectsForwardCycle) {
  ConstraintGraph g;
  const VertexId v0 = g.add_vertex("v0", Delay::bounded(0));
  const VertexId v1 = g.add_vertex("v1", Delay::bounded(1));
  const VertexId v2 = g.add_vertex("v2", Delay::bounded(1));
  g.add_sequencing_edge(v0, v1);
  g.add_sequencing_edge(v1, v2);
  g.add_sequencing_edge(v2, v1);
  const auto issues = g.validate();
  ASSERT_FALSE(issues.empty());
  EXPECT_EQ(issues.front().kind, ValidationIssue::Kind::kForwardCycle);
}

TEST(ConstraintGraph, ValidateRejectsDisconnectedVertex) {
  ConstraintGraph g;
  const VertexId v0 = g.add_vertex("v0", Delay::bounded(0));
  const VertexId v1 = g.add_vertex("v1", Delay::bounded(1));
  g.add_vertex("stranded", Delay::bounded(1));
  g.add_sequencing_edge(v0, v1);
  const auto issues = g.validate();
  // Two sinks (v1 and stranded) -> polarity failure.
  ASSERT_FALSE(issues.empty());
}

TEST(ConstraintGraph, AnchorsAreSourcePlusUnbounded) {
  Fig2Graph f;
  const auto anchors = f.g.anchors();
  ASSERT_EQ(anchors.size(), 2u);
  EXPECT_EQ(anchors[0], f.v0);
  EXPECT_EQ(anchors[1], f.a);
}

TEST(ConstraintGraph, ProjectionsPreserveStructure) {
  Fig2Graph f;
  const auto full = f.g.project_full();
  const auto forward = f.g.project_forward();
  EXPECT_EQ(full.node_count(), f.g.vertex_count());
  EXPECT_EQ(full.arc_count(), f.g.edge_count());
  EXPECT_EQ(forward.arc_count(), f.g.edge_count() - 1);  // one backward edge
  EXPECT_TRUE(graph::is_acyclic(forward));
  // The backward edge makes the full graph cyclic (v1 -> v2 -> v1).
  EXPECT_FALSE(graph::is_acyclic(full));
}

TEST(ConstraintGraph, DotExportMentionsAllVertices) {
  Fig2Graph f;
  const std::string dot = f.g.to_dot();
  for (const auto& v : f.g.vertices()) {
    EXPECT_NE(dot.find(v.name), std::string::npos) << v.name;
  }
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // backward edge
}

}  // namespace
}  // namespace relsched::cg

// Crash-safe persistence: serialization primitives, framed-file
// envelope, write-ahead log torn-tail vs. corruption semantics, and
// the engine's checkpoint/restore cycle (including WAL tail replay,
// structured rejection of damaged state, and cancellation verdicts).
#include <gtest/gtest.h>

#include <dirent.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "base/env.hpp"
#include "base/fault_fs.hpp"
#include "certify/certify.hpp"
#include "cg/graph_io.hpp"
#include "engine/session.hpp"
#include "persist/serialize.hpp"
#include "persist/wal.hpp"
#include "testutil.hpp"

namespace relsched::persist {
namespace {

/// A fresh empty directory under the test temp root.
std::string temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "relsched_" + name;
  std::remove((dir + "/snapshot.bin").c_str());
  std::remove((dir + "/wal.bin").c_str());
  std::remove((dir + "/explore.bin").c_str());
  EXPECT_TRUE(ensure_dir(dir).ok());
  return dir;
}

std::string slurp(const std::string& path) {
  std::string data;
  EXPECT_TRUE(read_file(path, &data).ok()) << path;
  return data;
}

void dump(const std::string& path, const std::string& data) {
  ASSERT_TRUE(atomic_write_file(path, data, /*durable=*/false).ok()) << path;
}

TEST(Serialize, WriterReaderRoundTrip) {
  Writer w;
  w.u8(0xAB);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFULL);
  w.i32(-7);
  w.i64(-1234567890123LL);
  w.f64(3.5);
  w.b(true);
  w.str("hello");
  w.vec_i32({1, -2, 3});
  w.vec_i64({});

  Reader r(w.buffer());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i32(), -7);
  EXPECT_EQ(r.i64(), -1234567890123LL);
  EXPECT_EQ(r.f64(), 3.5);
  EXPECT_TRUE(r.b());
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.vec_i32(), (std::vector<std::int32_t>{1, -2, 3}));
  EXPECT_TRUE(r.vec_i64().empty());
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.at_end());
}

TEST(Serialize, ReaderRejectsOversizedLength) {
  // A length field larger than the bytes present must fail the stream,
  // not allocate: readers never trust a length further than the data.
  Writer w;
  w.u32(1u << 30);  // claims a gigabyte of payload
  Reader r(w.buffer());
  const std::string s = r.str();
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(r.ok());
}

TEST(Serialize, ReaderUnderrunIsStickyAndZero) {
  Reader r(std::string_view("\x01", 1));
  EXPECT_EQ(r.u8(), 1);
  EXPECT_EQ(r.u64(), 0u);  // under-run
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u32(), 0u);  // sticky: everything after is zero
}

TEST(FramedFile, RoundTripAndTamperRejection) {
  const std::string dir = temp_dir("framed");
  const std::string path = dir + "/frame.bin";
  const std::string payload = "framed payload bytes";
  ASSERT_TRUE(write_framed_file(path, "RSTEST01", 3, payload, false).ok());

  std::string out;
  ASSERT_TRUE(read_framed_file(path, "RSTEST01", 3, &out).ok());
  EXPECT_EQ(out, payload);

  // Wrong kind of file.
  EXPECT_EQ(read_framed_file(path, "RSOTHER1", 3, &out).code,
            ErrorCode::kBadMagic);
  // Incompatible version.
  EXPECT_EQ(read_framed_file(path, "RSTEST01", 4, &out).code,
            ErrorCode::kBadVersion);

  // A flipped payload bit fails the checksum.
  std::string bytes = slurp(path);
  bytes[bytes.size() - 3] ^= 0x40;
  dump(path, bytes);
  EXPECT_EQ(read_framed_file(path, "RSTEST01", 3, &out).code,
            ErrorCode::kChecksum);

  // A torn (short) file is reported as truncated, not parsed.
  dump(path, slurp(path).substr(0, 10));
  EXPECT_EQ(read_framed_file(path, "RSTEST01", 3, &out).code,
            ErrorCode::kTruncated);
}

TEST(FramedFile, AtomicWriteLeavesNoTempBehind) {
  const std::string dir = temp_dir("atomic");
  const std::string path = dir + "/data.bin";
  ASSERT_TRUE(atomic_write_file(path, "v1", false).ok());
  ASSERT_TRUE(atomic_write_file(path, "v2", false).ok());
  EXPECT_EQ(slurp(path), "v2");
  std::string tmp;
  EXPECT_EQ(read_file(path + ".tmp", &tmp).code, ErrorCode::kIo);
}

WalOptions always_sync() {
  WalOptions o;
  o.sync = WalOptions::Sync::kAlways;
  return o;
}

TEST(WalTest, AppendReadRoundTrip) {
  const std::string dir = temp_dir("wal_roundtrip");
  const std::string path = wal_path(dir);
  Error error;
  auto wal = Wal::open(path, /*base_revision_if_new=*/7, always_sync(), &error);
  ASSERT_NE(wal, nullptr) << error.render();

  WalRecord edit;
  edit.op = WalRecord::Op::kSetBound;
  edit.revision = 8;
  edit.a = 3;
  edit.value = 42;
  wal->append(edit);
  WalRecord marker;
  marker.op = WalRecord::Op::kResolve;
  marker.revision = 8;
  wal->append(marker);
  wal->sync_for_commit();
  EXPECT_EQ(wal->appended_records(), 2);
  EXPECT_GE(wal->fsyncs(), 1);
  wal.reset();

  const Wal::ReadResult read = Wal::read(path);
  ASSERT_TRUE(read.ok()) << read.error.render();
  EXPECT_FALSE(read.torn_tail);
  EXPECT_EQ(read.base_revision, 7u);
  ASSERT_EQ(read.records.size(), 2u);
  EXPECT_EQ(read.records[0].op, WalRecord::Op::kSetBound);
  EXPECT_EQ(read.records[0].revision, 8u);
  EXPECT_EQ(read.records[0].a, 3);
  EXPECT_EQ(read.records[0].value, 42);
  EXPECT_EQ(read.records[1].op, WalRecord::Op::kResolve);
}

TEST(WalTest, TornTailDroppedMidFileCorruptionFatal) {
  const std::string dir = temp_dir("wal_torn");
  const std::string path = wal_path(dir);
  Error error;
  auto wal = Wal::open(path, 0, always_sync(), &error);
  ASSERT_NE(wal, nullptr) << error.render();
  for (std::uint64_t rev = 1; rev <= 3; ++rev) {
    WalRecord rec;
    rec.op = WalRecord::Op::kSetBound;
    rec.revision = rev;
    rec.a = 0;
    rec.value = static_cast<std::int64_t>(rev);
    wal->append(rec);
  }
  wal->sync_now();
  wal.reset();
  const std::string intact = slurp(path);

  // Crash mid-append: an incomplete final record is a torn tail. The
  // intact prefix survives; the tail is dropped and reported.
  dump(path, intact.substr(0, intact.size() - 5));
  Wal::ReadResult read = Wal::read(path);
  ASSERT_TRUE(read.ok()) << read.error.render();
  EXPECT_TRUE(read.torn_tail);
  ASSERT_EQ(read.records.size(), 2u);
  EXPECT_EQ(read.records.back().revision, 2u);

  // Re-opening for append truncates the torn tail away.
  wal = Wal::open(path, 0, always_sync(), &error);
  ASSERT_NE(wal, nullptr) << error.render();
  wal.reset();
  read = Wal::read(path);
  ASSERT_TRUE(read.ok());
  EXPECT_FALSE(read.torn_tail);
  EXPECT_EQ(read.records.size(), 2u);

  // A bit flip in acknowledged history (records follow it) is
  // corruption, not a torn tail: fatal, structured rejection.
  std::string corrupt = intact;
  corrupt[intact.size() / 2] ^= 0x01;
  dump(path, corrupt);
  read = Wal::read(path);
  EXPECT_FALSE(read.ok());
  EXPECT_TRUE(read.records.empty());
}

/// Disarms the process-wide fault injector even when a test assertion
/// bails out early, so later tests never run against a faulty "disk".
struct ScopedFaults {
  explicit ScopedFaults(const base::FaultFsConfig& config) {
    base::fault_fs().arm(config);
  }
  ~ScopedFaults() { base::fault_fs().disarm(); }
};

TEST(WalTest, TransientWriteFaultsAreRetriedAndCounted) {
  const std::string dir = temp_dir("wal_faults");
  const std::string path = wal_path(dir);

  // A hostile but survivable disk: ~30% of writes are faulted, all of
  // them transient (short writes, EINTR, EAGAIN -- no ENOSPC), fsync
  // and rename untouched. The WAL's bounded-backoff retry loop must
  // absorb every one of them.
  base::FaultFsConfig config;
  config.seed = 11;
  config.write_per10k = 3000;
  ScopedFaults faults(config);

  Error error;
  auto wal = Wal::open(path, /*base_revision_if_new=*/0, always_sync(),
                       &error);
  ASSERT_NE(wal, nullptr) << error.render();
  constexpr int kRecords = 200;
  for (int i = 1; i <= kRecords; ++i) {
    WalRecord rec;
    rec.op = WalRecord::Op::kSetBound;
    rec.revision = static_cast<std::uint64_t>(i);
    rec.a = 0;
    rec.value = i;
    wal->append(rec);
    wal->sync_for_commit();
  }
  ASSERT_TRUE(wal->error().ok()) << wal->error().render();
  // The schedule fired (deterministic from the seed) and the log fought
  // through it: retries nonzero, zero lost records.
  EXPECT_GT(wal->retries(), 0);
  EXPECT_GT(base::fault_fs().counters().short_writes +
                base::fault_fs().counters().eintr +
                base::fault_fs().counters().eagain,
            0);
  wal.reset();
  base::fault_fs().disarm();

  const Wal::ReadResult read = Wal::read(path);
  ASSERT_TRUE(read.ok()) << read.error.render();
  EXPECT_FALSE(read.torn_tail);
  ASSERT_EQ(read.records.size(), static_cast<std::size_t>(kRecords));
  EXPECT_EQ(read.records.back().revision,
            static_cast<std::uint64_t>(kRecords));
}

TEST(FramedFile, RenameFaultFailsCleanlyAndLeavesNoTemp) {
  const std::string dir = temp_dir("rename_fault");
  const std::string path = dir + "/data.bin";
  ASSERT_TRUE(atomic_write_file(path, "v1", false).ok());

  {
    // Every rename fails EIO: the atomic write must surface the error,
    // keep the previous content intact, and clean up its temp file.
    base::FaultFsConfig config;
    config.seed = 5;
    config.rename_per10k = 10000;
    ScopedFaults faults(config);
    const Error error = atomic_write_file(path, "v2", false);
    EXPECT_FALSE(error.ok());
    EXPECT_EQ(error.code, ErrorCode::kIo);
  }
  EXPECT_EQ(slurp(path), "v1");

  DIR* d = ::opendir(dir.c_str());
  ASSERT_NE(d, nullptr);
  while (const dirent* entry = ::readdir(d)) {
    EXPECT_EQ(std::string(entry->d_name).find(".tmp"), std::string::npos)
        << "leaked temp file: " << entry->d_name;
  }
  ::closedir(d);

  // With the disk healthy again the same write goes through.
  ASSERT_TRUE(atomic_write_file(path, "v3", false).ok());
  EXPECT_EQ(slurp(path), "v3");
}

TEST(WalTest, ResetTruncatesToNewBase) {
  const std::string dir = temp_dir("wal_reset");
  Error error;
  auto wal = Wal::open(wal_path(dir), 1, always_sync(), &error);
  ASSERT_NE(wal, nullptr);
  WalRecord rec;
  rec.op = WalRecord::Op::kResolve;
  rec.revision = 2;
  wal->append(rec);
  wal->sync_now();
  ASSERT_TRUE(wal->reset(9).ok());
  EXPECT_EQ(wal->base_revision(), 9u);
  wal.reset();

  const Wal::ReadResult read = Wal::read(wal_path(dir));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.base_revision, 9u);
  EXPECT_TRUE(read.records.empty());
}

/// Appends `count` kSetBound records with revisions first..first+count-1
/// and flushes them to the kernel (no fsync -- read_tail reads the page
/// cache, which is the replication tailing contract).
void append_records(Wal& wal, std::uint64_t first, int count) {
  for (int i = 0; i < count; ++i) {
    WalRecord rec;
    rec.op = WalRecord::Op::kSetBound;
    rec.revision = first + static_cast<std::uint64_t>(i);
    rec.a = 0;
    rec.value = static_cast<std::int64_t>(rec.revision);
    wal.append(rec);
  }
  wal.flush_now();
}

TEST(WalTail, StreamsFromCursorAndReportsNextSeq) {
  const std::string dir = temp_dir("wal_tail");
  const std::string path = wal_path(dir);
  Error error;
  auto wal = Wal::open(path, /*base_revision_if_new=*/3, always_sync(),
                       &error);
  ASSERT_NE(wal, nullptr) << error.render();
  append_records(*wal, 4, 5);

  // From the start: everything, next_seq = total.
  Wal::TailResult tail = Wal::read_tail(path, 0);
  ASSERT_TRUE(tail.ok()) << tail.error.render();
  EXPECT_EQ(tail.base_revision, 3u);
  EXPECT_FALSE(tail.torn_tail);
  ASSERT_EQ(tail.records.size(), 5u);
  EXPECT_EQ(tail.records.front().revision, 4u);
  EXPECT_EQ(tail.next_seq, 5u);

  // From a mid-log cursor: only the suffix.
  tail = Wal::read_tail(path, 2);
  ASSERT_TRUE(tail.ok());
  ASSERT_EQ(tail.records.size(), 3u);
  EXPECT_EQ(tail.records.front().revision, 6u);
  EXPECT_EQ(tail.next_seq, 5u);

  // At the end: nothing new, cursor confirmed -- the steady state of a
  // caught-up follower polling an idle log.
  tail = Wal::read_tail(path, 5);
  ASSERT_TRUE(tail.ok());
  EXPECT_TRUE(tail.records.empty());
  EXPECT_EQ(tail.next_seq, 5u);

  // New appends become visible to the same cursor after a flush, with
  // no fsync required.
  append_records(*wal, 9, 2);
  tail = Wal::read_tail(path, 5);
  ASSERT_TRUE(tail.ok());
  ASSERT_EQ(tail.records.size(), 2u);
  EXPECT_EQ(tail.records.front().revision, 9u);
  EXPECT_EQ(tail.next_seq, 7u);
}

TEST(WalTail, TornTailToleratedMidFileCorruptionFatal) {
  const std::string dir = temp_dir("wal_tail_torn");
  const std::string path = wal_path(dir);
  Error error;
  auto wal = Wal::open(path, 0, always_sync(), &error);
  ASSERT_NE(wal, nullptr) << error.render();
  append_records(*wal, 1, 3);
  wal->sync_now();
  wal.reset();
  const std::string intact = slurp(path);

  // An incomplete final record is an append that may still be in
  // flight: the intact prefix streams, the tail is flagged but NOT
  // fatal -- the follower simply polls again.
  dump(path, intact.substr(0, intact.size() - 5));
  Wal::TailResult tail = Wal::read_tail(path, 0);
  ASSERT_TRUE(tail.ok()) << tail.error.render();
  EXPECT_TRUE(tail.torn_tail);
  ASSERT_EQ(tail.records.size(), 2u);
  EXPECT_EQ(tail.next_seq, 2u);

  // A cursor already past the intact prefix sees no new records.
  tail = Wal::read_tail(path, 2);
  ASSERT_TRUE(tail.ok());
  EXPECT_TRUE(tail.records.empty());
  EXPECT_EQ(tail.next_seq, 2u);

  // A bit flip in acknowledged history is fatal for streaming: the
  // caller must re-bootstrap from a snapshot, not ship damaged edits.
  std::string corrupt = intact;
  corrupt[intact.size() / 2] ^= 0x01;
  dump(path, corrupt);
  tail = Wal::read_tail(path, 0);
  EXPECT_FALSE(tail.ok());
  EXPECT_TRUE(tail.records.empty());

  // So is a missing file.
  ASSERT_EQ(std::remove(path.c_str()), 0);
  tail = Wal::read_tail(path, 0);
  EXPECT_FALSE(tail.ok());
}

TEST(WalTail, ResetSignaledByBaseRevisionAndRegressedNextSeq) {
  const std::string dir = temp_dir("wal_tail_reset");
  const std::string path = wal_path(dir);
  Error error;
  auto wal = Wal::open(path, 1, always_sync(), &error);
  ASSERT_NE(wal, nullptr) << error.render();
  append_records(*wal, 2, 4);

  Wal::TailResult tail = Wal::read_tail(path, 4);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail.base_revision, 1u);
  EXPECT_EQ(tail.next_seq, 4u);

  // A checkpoint truncates the log to a fresh header. A follower
  // holding the old cursor must see both epoch-change signals: the
  // base_revision changed and next_seq regressed below its from_seq.
  ASSERT_TRUE(wal->reset(5).ok());
  tail = Wal::read_tail(path, 4);
  ASSERT_TRUE(tail.ok()) << tail.error.render();
  EXPECT_EQ(tail.base_revision, 5u);
  EXPECT_TRUE(tail.records.empty());
  EXPECT_LT(tail.next_seq, 4u);
  EXPECT_EQ(tail.next_seq, 0u);

  // Records appended in the new epoch stream from seq 0.
  append_records(*wal, 6, 2);
  tail = Wal::read_tail(path, 0);
  ASSERT_TRUE(tail.ok());
  ASSERT_EQ(tail.records.size(), 2u);
  EXPECT_EQ(tail.records.front().revision, 6u);
  EXPECT_EQ(tail.next_seq, 2u);
}

}  // namespace
}  // namespace relsched::persist

namespace relsched::engine {
namespace {

using persist::ErrorCode;
using persist::snapshot_path;
using persist::wal_path;

EdgeId find_max_edge(const cg::ConstraintGraph& g) {
  for (const cg::Edge& e : g.edges()) {
    if (e.kind == cg::EdgeKind::kMaxConstraint) return e.id;
  }
  ADD_FAILURE() << "graph has no max constraint";
  return EdgeId::invalid();
}

void expect_same_products(const SynthesisSession& a,
                          const SynthesisSession& b) {
  const Products& pa = a.products();
  const Products& pb = b.products();
  EXPECT_EQ(pa.revision, pb.revision);
  EXPECT_EQ(pa.schedule.status, pb.schedule.status);
  EXPECT_EQ(pa.topo, pb.topo);
  ASSERT_EQ(a.graph().vertex_count(), b.graph().vertex_count());
  for (int vi = 0; vi < a.graph().vertex_count(); ++vi) {
    EXPECT_EQ(pa.schedule.schedule.offsets(VertexId(vi)),
              pb.schedule.schedule.offsets(VertexId(vi)))
        << "v" << vi;
  }
}

persist::WalOptions always_sync() {
  persist::WalOptions o;
  o.sync = persist::WalOptions::Sync::kAlways;
  return o;
}

/// The committed generated corpus (seed-stamped fixtures from
/// `relsched_cli gen`) must survive the full persistence cycle: parse,
/// certified resolve, checkpoint (v2 snapshot: anchor-domain + bitset
/// rows), restore, bit-identical products, and a post-restore edit.
TEST(SessionCheckpoint, GeneratedFixturesRoundTripThroughSnapshotV2) {
  const std::string fixtures[] = {"gen_s11_v200.cg", "gen_s22_v500.cg",
                                  "gen_s33_v1000.cg"};
  for (const std::string& name : fixtures) {
    const std::string text =
        persist::slurp(std::string(RELSCHED_TEST_DATA_DIR) + "/" + name);
    cg::ParseResult parsed = cg::from_text(text);
    ASSERT_TRUE(parsed.ok()) << name << ": " << parsed.error;
    // The corpus must actually exercise the anchor machinery the v2
    // snapshot serializes; a fixture without anchors pins nothing.
    ASSERT_GT(parsed.graph->anchors().size(), 1u) << name;

    engine::SessionOptions opts;
    opts.certify = true;
    engine::SynthesisSession session(std::move(*parsed.graph), opts);
    ASSERT_TRUE(session.resolve().ok()) << name;

    const std::string dir = persist::temp_dir("gen_fixture");
    ASSERT_TRUE(session.checkpoint(dir).ok()) << name;
    engine::SynthesisSession::RestoreReport report;
    auto restored = engine::SynthesisSession::restore(dir, opts, &report);
    ASSERT_TRUE(restored.has_value()) << name << ": " << report.error.render();
    EXPECT_FALSE(report.cold_fallback) << name;
    expect_same_products(session, *restored);

    // The recovered session keeps working warm: loosen one max bound
    // on both and re-resolve to the same products.
    EdgeId max_edge = EdgeId::invalid();
    for (const cg::Edge& e : session.graph().edges()) {
      if (e.kind == cg::EdgeKind::kMaxConstraint) {
        max_edge = e.id;
        break;
      }
    }
    ASSERT_TRUE(max_edge.is_valid()) << name;
    const int bound = std::abs(session.graph().edge(max_edge).fixed_weight);
    session.set_constraint_bound(max_edge, bound + 1);
    restored->set_constraint_bound(max_edge, bound + 1);
    ASSERT_TRUE(session.resolve().ok()) << name;
    ASSERT_TRUE(restored->resolve().ok()) << name;
    expect_same_products(session, *restored);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(SessionCheckpoint, RoundTripRestoresBitIdenticalProducts) {
  const std::string dir = persist::temp_dir("ckpt_roundtrip");
  testing::Fig2Graph fig;
  SynthesisSession session(std::move(fig.g), {});
  ASSERT_TRUE(session.resolve().ok());
  ASSERT_TRUE(session.attach_wal(wal_path(dir), always_sync()).ok());
  EXPECT_TRUE(session.wal_attached());

  session.set_constraint_bound(find_max_edge(session.graph()), 3);
  ASSERT_TRUE(session.resolve().ok());
  ASSERT_TRUE(session.checkpoint(dir).ok());
  EXPECT_EQ(session.stats().checkpoints, 1);

  SynthesisSession::RestoreReport report;
  auto restored = SynthesisSession::restore(dir, {}, &report);
  ASSERT_TRUE(restored.has_value()) << report.error.render();
  EXPECT_EQ(report.replayed_edits, 0);  // checkpoint truncated the WAL
  EXPECT_FALSE(report.cold_fallback);
  EXPECT_EQ(restored->stats().restores, 1);
  expect_same_products(session, *restored);

  // The recovered session keeps working: same edit stream, same result.
  session.set_constraint_bound(find_max_edge(session.graph()), 4);
  restored->set_constraint_bound(find_max_edge(restored->graph()), 4);
  ASSERT_TRUE(session.resolve().ok());
  ASSERT_TRUE(restored->resolve().ok());
  expect_same_products(session, *restored);
}

TEST(SessionCheckpoint, EnospcCheckpointFailsCleanlyThenRecovers) {
  const std::string dir = persist::temp_dir("ckpt_enospc");
  testing::Fig2Graph fig;
  const VertexId v0 = fig.v0, v4 = fig.v4;
  SynthesisSession session(std::move(fig.g), {});
  session.add_min_constraint(v0, v4, 4);
  ASSERT_TRUE(session.resolve().ok());

  {
    // Disk full: every write fails hard with ENOSPC. The checkpoint
    // must surface a structured error and leave no temp file behind.
    base::FaultFsConfig config;
    config.seed = 3;
    config.write_per10k = 10000;
    config.write_enospc_per10k = 10000;
    persist::ScopedFaults faults(config);
    const persist::Error error = session.checkpoint(dir);
    EXPECT_FALSE(error.ok());
    EXPECT_EQ(error.code, ErrorCode::kIo);
    EXPECT_GT(base::fault_fs().counters().enospc, 0);
  }
  DIR* d = ::opendir(dir.c_str());
  ASSERT_NE(d, nullptr);
  while (const dirent* entry = ::readdir(d)) {
    EXPECT_EQ(std::string(entry->d_name).find(".tmp."), std::string::npos)
        << "leaked temp file: " << entry->d_name;
  }
  ::closedir(d);

  // The failed checkpoint cost nothing: the session keeps serving, and
  // with the disk healthy the same checkpoint goes through and restores
  // bit-identically.
  ASSERT_TRUE(session.resolve().ok());
  ASSERT_TRUE(session.checkpoint(dir).ok());
  SynthesisSession::RestoreReport report;
  auto restored = SynthesisSession::restore(dir, {}, &report);
  ASSERT_TRUE(restored.has_value()) << report.error.render();
  expect_same_products(session, *restored);
}

TEST(SessionCheckpoint, WalTailReplaysEditsPastSnapshot) {
  const std::string dir = persist::temp_dir("ckpt_tail");
  testing::Fig2Graph fig;
  const VertexId v0 = fig.v0, v4 = fig.v4;
  SynthesisSession session(std::move(fig.g), {});
  ASSERT_TRUE(session.resolve().ok());
  ASSERT_TRUE(session.attach_wal(wal_path(dir), always_sync()).ok());
  ASSERT_TRUE(session.checkpoint(dir).ok());

  // Two journaled edits and a resolve after the snapshot: they exist
  // only in the WAL when the "crash" happens.
  session.add_min_constraint(v0, v4, 4);
  session.set_constraint_bound(find_max_edge(session.graph()), 3);
  ASSERT_TRUE(session.resolve().ok());

  SynthesisSession::RestoreReport report;
  auto restored = SynthesisSession::restore(dir, {}, &report);
  ASSERT_TRUE(restored.has_value()) << report.error.render();
  EXPECT_EQ(report.replayed_edits, 2);
  EXPECT_EQ(report.replayed_resolves, 1);
  EXPECT_FALSE(report.wal_torn_tail);
  expect_same_products(session, *restored);
}

TEST(SessionCheckpoint, TornWalTailDroppedAndReported) {
  const std::string dir = persist::temp_dir("ckpt_torn");
  testing::Fig2Graph fig;
  const VertexId v0 = fig.v0, v4 = fig.v4;
  SynthesisSession session(std::move(fig.g), {});
  ASSERT_TRUE(session.resolve().ok());
  ASSERT_TRUE(session.attach_wal(wal_path(dir), always_sync()).ok());
  ASSERT_TRUE(session.checkpoint(dir).ok());
  const std::uint64_t checkpoint_revision = session.graph().revision();
  session.add_min_constraint(v0, v4, 4);
  ASSERT_TRUE(session.resolve().ok());

  // Crash mid-append of the trailing record: recovery drops the torn
  // tail (that edit never committed) and reports it.
  std::string bytes;
  ASSERT_TRUE(persist::read_file(wal_path(dir), &bytes).ok());
  ASSERT_TRUE(persist::atomic_write_file(
                  wal_path(dir), bytes.substr(0, bytes.size() - 3), false)
                  .ok());
  SynthesisSession::RestoreReport report;
  auto restored = SynthesisSession::restore(dir, {}, &report);
  ASSERT_TRUE(restored.has_value()) << report.error.render();
  EXPECT_TRUE(report.wal_torn_tail);
  EXPECT_FALSE(report.wal_torn_detail.empty());

  // Re-applying the lost edit converges with the uninterrupted run.
  EXPECT_LE(restored->graph().revision(), checkpoint_revision + 1);
  if (restored->graph().revision() == checkpoint_revision) {
    restored->add_min_constraint(v0, v4, 4);
  }
  ASSERT_TRUE(restored->resolve().ok());
  expect_same_products(session, *restored);
}

TEST(SessionCheckpoint, PendingUnresolvedEditsRecomputeColdOnRestore) {
  const std::string dir = persist::temp_dir("ckpt_pending");
  testing::Fig2Graph fig;
  SynthesisSession session(std::move(fig.g), {});
  ASSERT_TRUE(session.resolve().ok());
  // Edit journaled but NOT resolved when the checkpoint lands.
  session.set_constraint_bound(find_max_edge(session.graph()), 3);
  ASSERT_TRUE(session.checkpoint(dir).ok());

  SynthesisSession::RestoreReport report;
  auto restored = SynthesisSession::restore(dir, {}, &report);
  ASSERT_TRUE(restored.has_value()) << report.error.render();
  ASSERT_TRUE(session.resolve().ok());
  ASSERT_TRUE(restored->resolve().ok());
  EXPECT_GE(restored->stats().cold_resolves, 1);
  expect_same_products(session, *restored);
}

TEST(SessionCheckpoint, CorruptSnapshotRejectedStructurally) {
  const std::string dir = persist::temp_dir("ckpt_corrupt");
  testing::Fig2Graph fig;
  SynthesisSession session(std::move(fig.g), {});
  ASSERT_TRUE(session.resolve().ok());
  ASSERT_TRUE(session.checkpoint(dir).ok());

  std::string bytes;
  ASSERT_TRUE(persist::read_file(snapshot_path(dir), &bytes).ok());
  std::string flipped = bytes;
  flipped[flipped.size() / 2] ^= 0x10;
  ASSERT_TRUE(persist::atomic_write_file(snapshot_path(dir), flipped, false)
                  .ok());
  SynthesisSession::RestoreReport report;
  EXPECT_FALSE(SynthesisSession::restore(dir, {}, &report).has_value());
  EXPECT_EQ(report.error.code, ErrorCode::kChecksum);

  // Torn short file: truncated, never parsed.
  ASSERT_TRUE(persist::atomic_write_file(snapshot_path(dir),
                                         bytes.substr(0, 12), false)
                  .ok());
  EXPECT_FALSE(SynthesisSession::restore(dir, {}, &report).has_value());
  EXPECT_EQ(report.error.code, ErrorCode::kTruncated);

  // Missing snapshot: a clean io rejection, not a crash.
  std::remove(snapshot_path(dir).c_str());
  EXPECT_FALSE(SynthesisSession::restore(dir, {}, &report).has_value());
  EXPECT_EQ(report.error.code, ErrorCode::kIo);
}

TEST(SessionCheckpoint, ScheduleModeMismatchRejected) {
  const std::string dir = persist::temp_dir("ckpt_mode");
  testing::Fig2Graph fig;
  SynthesisSession session(std::move(fig.g), {});
  ASSERT_TRUE(session.resolve().ok());
  ASSERT_TRUE(session.checkpoint(dir).ok());

  SessionOptions other;
  other.schedule_mode = anchors::AnchorMode::kIrredundant;
  SynthesisSession::RestoreReport report;
  EXPECT_FALSE(SynthesisSession::restore(dir, other, &report).has_value());
  EXPECT_EQ(report.error.code, ErrorCode::kStateMismatch);
}

/// Regression: a checkpoint taken after edit -> *failed* resolve used
/// to persist the pre-edit topological order (failure exits skipped the
/// order reset), and restore then rejected the snapshot as
/// inconsistent -- silently discarding acknowledged edits at the serve
/// layer. The persisted order must track the graph even when no resolve
/// has succeeded since the last edit.
TEST(SessionCheckpoint, EditsAfterFailedResolveSurviveCheckpointRestore) {
  const std::string dir = persist::temp_dir("ckpt_failed_resolve");
  testing::Fig2Graph fig;
  const VertexId v0 = fig.v0, a = fig.a, v1 = fig.v1, v4 = fig.v4;
  SynthesisSession session(std::move(fig.g), {});
  ASSERT_TRUE(session.resolve().ok());

  // A max constraint whose forward path runs through the unbounded
  // anchor `a` (the Fig. 3(a) pattern): ill-posed, resolve fails.
  const EdgeId bad = session.add_max_constraint(v0, v4, 20);
  EXPECT_FALSE(session.resolve().ok());

  // Another edit after the failed resolve -- one that contradicts the
  // stale order (v1 now precedes `a`) -- then a second failed resolve
  // and a checkpoint.
  session.add_min_constraint(v1, a, 1);
  EXPECT_FALSE(session.resolve().ok());
  ASSERT_TRUE(session.checkpoint(dir).ok());

  SynthesisSession::RestoreReport report;
  auto restored = SynthesisSession::restore(dir, {}, &report);
  ASSERT_TRUE(restored.has_value()) << report.error.render();

  // Both sides drop the ill-posed max and converge bit-identically.
  session.remove_constraint(bad);
  restored->remove_constraint(bad);
  ASSERT_TRUE(session.resolve().ok());
  ASSERT_TRUE(restored->resolve().ok());
  expect_same_products(session, *restored);
}

/// Two sessions sharing one checkpoint directory, deterministically
/// interleaved: A journals and snapshots; B restores mid-stream,
/// tracks the same edits independently, then takes over the WAL when A
/// detaches. Every handoff point must restore bit-identically.
TEST(SessionCheckpoint, TwoSessionsInterleavedOnOneCheckpointDir) {
  const std::string dir = persist::temp_dir("ckpt_shared");
  testing::Fig2Graph fig;
  const VertexId v0 = fig.v0, v1 = fig.v1, v2 = fig.v2, v3 = fig.v3,
                 v4 = fig.v4;
  SynthesisSession a(std::move(fig.g), {});
  ASSERT_TRUE(a.resolve().ok());
  ASSERT_TRUE(a.attach_wal(wal_path(dir), always_sync()).ok());
  a.add_min_constraint(v0, v4, 4);
  ASSERT_TRUE(a.resolve().ok());
  ASSERT_TRUE(a.checkpoint(dir).ok());

  // B restores from the dir while A stays live on it.
  SynthesisSession::RestoreReport report;
  auto b = SynthesisSession::restore(dir, {}, &report);
  ASSERT_TRUE(b.has_value()) << report.error.render();
  expect_same_products(a, *b);

  // Both apply the same edit; A (still owning the WAL) checkpoints.
  a.add_min_constraint(v1, v3, 1);
  b->add_min_constraint(v1, v3, 1);
  ASSERT_TRUE(a.resolve().ok());
  ASSERT_TRUE(b->resolve().ok());
  expect_same_products(a, *b);
  ASSERT_TRUE(a.checkpoint(dir).ok());

  // Handoff: A detaches, B attaches the same log at the same revision
  // and continues the history. A third session restoring the dir sees
  // B's post-handoff edit replayed from the WAL tail.
  a.detach_wal();
  ASSERT_TRUE(b->attach_wal(wal_path(dir), always_sync()).ok());
  b->add_min_constraint(v2, v4, 2);
  ASSERT_TRUE(b->resolve().ok());

  auto c = SynthesisSession::restore(dir, {}, &report);
  ASSERT_TRUE(c.has_value()) << report.error.render();
  EXPECT_EQ(report.replayed_edits, 1);
  expect_same_products(*b, *c);
}

/// Concurrent checkpoint vs. restore on one directory: the writer
/// snapshots after every edit while the reader restores continuously.
/// Atomic temp+rename publication means every restore sees a complete
/// old-or-new snapshot -- never a torn one -- and each restored session
/// must resolve on its own.
TEST(SessionCheckpoint, ConcurrentCheckpointAndRestoreNeverTearState) {
  const std::string dir = persist::temp_dir("ckpt_concurrent");
  testing::Fig2Graph fig;
  SynthesisSession session(std::move(fig.g), {});
  const EdgeId max_edge = find_max_edge(session.graph());
  ASSERT_TRUE(session.resolve().ok());
  ASSERT_TRUE(session.checkpoint(dir).ok());

  std::atomic<bool> done{false};
  std::atomic<int> restores_ok{0};
  std::atomic<int> restores_failed{0};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      SynthesisSession::RestoreReport report;
      auto restored = SynthesisSession::restore(dir, {}, &report);
      if (!restored.has_value()) {
        restores_failed.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      restores_ok.fetch_add(1, std::memory_order_relaxed);
      EXPECT_TRUE(restored->resolve().ok());
    }
  });
  for (int i = 0; i < 20; ++i) {
    session.set_constraint_bound(max_edge, 3 + (i % 2));
    ASSERT_TRUE(session.resolve().ok());
    ASSERT_TRUE(session.checkpoint(dir).ok());
  }
  done.store(true, std::memory_order_release);
  reader.join();
  // Without a WAL in play every published snapshot is self-contained:
  // restores may race a rename but must always land on a whole file.
  EXPECT_GT(restores_ok.load(), 0);
  EXPECT_EQ(restores_failed.load(), 0);
}

TEST(SessionCancellation, ExpiredDeadlineYieldsCancelledVerdict) {
  testing::Fig2Graph fig;
  SessionOptions opts;
  opts.deadline = std::chrono::steady_clock::now() - std::chrono::seconds(1);
  SynthesisSession session(std::move(fig.g), opts);

  const Products& p = session.resolve();
  EXPECT_EQ(p.schedule.status, sched::ScheduleStatus::kCancelled);
  EXPECT_EQ(p.schedule.diag.code, certify::Code::kTimeout);
  EXPECT_NE(p.schedule.message.find("deadline exceeded"), std::string::npos)
      << p.schedule.message;
  EXPECT_EQ(session.stats().cancelled_resolves, 1);

  // Lifting the deadline lets the next resolve recompute cold.
  session.set_cancellation(base::CancelToken{});
  EXPECT_TRUE(session.resolve().ok());
  EXPECT_EQ(session.stats().cancelled_resolves, 1);
}

TEST(SessionCancellation, CancelTokenStopsResolve) {
  testing::Fig2Graph fig;
  SessionOptions opts;
  base::CancelToken token = base::CancelToken::make();
  token.request_cancel();
  opts.cancel = token;
  SynthesisSession session(std::move(fig.g), opts);
  const Products& p = session.resolve();
  EXPECT_EQ(p.schedule.status, sched::ScheduleStatus::kCancelled);
  EXPECT_NE(p.schedule.message.find("cancellation requested"),
            std::string::npos)
      << p.schedule.message;
}

TEST(SessionEnv, CertifyFlagParsersAreStrict) {
  // certify_default() caches its first read, so the parser itself is
  // exercised through the pure base::parse_* functions it delegates to.
  EXPECT_EQ(base::parse_env_flag("1"), true);
  EXPECT_EQ(base::parse_env_flag("TRUE"), true);
  EXPECT_EQ(base::parse_env_flag("on"), true);
  EXPECT_EQ(base::parse_env_flag("Yes"), true);
  EXPECT_EQ(base::parse_env_flag("0"), false);
  EXPECT_EQ(base::parse_env_flag("off"), false);
  EXPECT_EQ(base::parse_env_flag(""), std::nullopt);
  EXPECT_EQ(base::parse_env_flag("yse"), std::nullopt);
  EXPECT_EQ(base::parse_env_flag("1 "), std::nullopt);
  EXPECT_EQ(base::parse_env_flag("2"), std::nullopt);

  EXPECT_EQ(base::parse_env_int("50"), 50);
  EXPECT_EQ(base::parse_env_int("-3"), -3);
  EXPECT_EQ(base::parse_env_int("50ms"), std::nullopt);
  EXPECT_EQ(base::parse_env_int(""), std::nullopt);

  EXPECT_EQ(base::parse_env_choice("ALWAYS", {"interval", "always", "none"}),
            1);
  EXPECT_EQ(base::parse_env_choice("sometimes",
                                   {"interval", "always", "none"}),
            std::nullopt);
}

TEST(SessionEnv, CheckpointSyncEnvSelectsPolicy) {
  ::setenv("RELSCHED_CHECKPOINT_SYNC", "always", 1);
  ::setenv("RELSCHED_CHECKPOINT_SYNC_INTERVAL_MS", "125", 1);
  persist::WalOptions o = persist::WalOptions::from_env();
  EXPECT_EQ(o.sync, persist::WalOptions::Sync::kAlways);
  EXPECT_EQ(o.sync_interval.count(), 125);

  // Unrecognized values warn once and keep the documented defaults.
  ::setenv("RELSCHED_CHECKPOINT_SYNC", "sometimes", 1);
  ::setenv("RELSCHED_CHECKPOINT_SYNC_INTERVAL_MS", "50ms", 1);
  o = persist::WalOptions::from_env();
  EXPECT_EQ(o.sync, persist::WalOptions::Sync::kInterval);
  EXPECT_EQ(o.sync_interval.count(), 50);

  ::unsetenv("RELSCHED_CHECKPOINT_SYNC");
  ::unsetenv("RELSCHED_CHECKPOINT_SYNC_INTERVAL_MS");
}

}  // namespace
}  // namespace relsched::engine

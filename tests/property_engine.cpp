// Equivalence property for the incremental synthesis engine: for random
// well-posed graphs and random edit sequences (constraint insertion,
// removal, re-weighting), a SynthesisSession resolved after each edit
// produces *bit-identical* products to a cold recompute of the edited
// graph -- same status and message, same A / R / IR sets, same
// anchor-to-vertex path lengths, same schedule offsets. Edits are free
// to drive the graph infeasible or ill-posed and back; the session must
// agree with the cold pipeline at every step.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <random>
#include <vector>

#include "base/thread_pool.hpp"
#include "engine/session.hpp"
#include "graph/algorithms.hpp"
#include "testutil.hpp"
#include "wellposed/wellposed.hpp"

namespace relsched::engine {
namespace {

/// The cold pipeline the session must match: exactly the sequence
/// cold_resolve() runs, on an independent copy of the graph.
struct ColdProducts {
  sched::ScheduleStatus status = sched::ScheduleStatus::kInvalidGraph;
  std::string message;
  std::optional<anchors::AnchorAnalysis> analysis;
  sched::RelativeSchedule schedule;
};

ColdProducts cold_pipeline(const cg::ConstraintGraph& g,
                           anchors::AnchorMode mode) {
  ColdProducts c;
  if (const auto issues = g.validate(); !issues.empty()) {
    c.status = sched::ScheduleStatus::kInvalidGraph;
    c.message = issues.front().message;
    return c;
  }
  if (!wellposed::is_feasible(g)) {
    c.status = sched::ScheduleStatus::kInfeasible;
    c.message = "positive cycle with unbounded delays set to 0";
    return c;
  }
  c.analysis = anchors::AnchorAnalysis::compute(g);
  const auto wp = wellposed::check(g, c.analysis->anchor_sets());
  if (wp.status == wellposed::Status::kIllPosed) {
    c.status = sched::ScheduleStatus::kIllPosed;
    c.message = wp.message;
    return c;
  }
  sched::ScheduleOptions sopts;
  sopts.mode = mode;
  sopts.prechecks = false;
  auto result = sched::schedule(g, *c.analysis, sopts);
  c.status = result.status;
  c.message = result.message;
  c.schedule = std::move(result.schedule);
  return c;
}

void expect_equivalent(const Products& p, const ColdProducts& c,
                       const cg::ConstraintGraph& g, int step) {
  ASSERT_EQ(p.schedule.status, c.status) << "edit step " << step;
  EXPECT_EQ(p.schedule.message, c.message) << "edit step " << step;
  if (c.analysis.has_value() &&
      p.schedule.status != sched::ScheduleStatus::kInfeasible) {
    const anchors::AnchorAnalysis& cold = *c.analysis;
    const anchors::AnchorAnalysis& warm = p.analysis;
    ASSERT_EQ(warm.anchors(), cold.anchors()) << "edit step " << step;
    for (int vi = 0; vi < g.vertex_count(); ++vi) {
      const VertexId v(vi);
      EXPECT_EQ(warm.anchor_set(v), cold.anchor_set(v))
          << "A(v" << vi << "), edit step " << step;
      EXPECT_EQ(warm.relevant_set(v), cold.relevant_set(v))
          << "R(v" << vi << "), edit step " << step;
      EXPECT_EQ(warm.irredundant_set(v), cold.irredundant_set(v))
          << "IR(v" << vi << "), edit step " << step;
      for (VertexId a : cold.anchors()) {
        EXPECT_EQ(warm.length(a, v), cold.length(a, v))
            << "length(v" << a << ", v" << vi << "), edit step " << step;
        EXPECT_EQ(warm.maximal_defining_path_length(a, v),
                  cold.maximal_defining_path_length(a, v))
            << "|rho*(v" << a << ", v" << vi << ")|, edit step " << step;
      }
    }
  }
  if (p.ok()) {
    for (int vi = 0; vi < g.vertex_count(); ++vi) {
      const VertexId v(vi);
      EXPECT_EQ(p.schedule.schedule.offsets(v), c.schedule.offsets(v))
          << "offsets(v" << vi << "), edit step " << step;
    }
  }
}

/// One concrete edit chosen by the generator, decoupled from any
/// particular session so identical edits can be mirrored onto several
/// sessions (transaction-vs-per-edit equivalence below).
struct EditSpec {
  enum class Kind { kAddMax, kAddMin, kSetBound, kRemove };
  Kind kind = Kind::kSetBound;
  VertexId from = VertexId::invalid();
  VertexId to = VertexId::invalid();
  EdgeId edge = EdgeId::invalid();
  int cycles = 0;
};

void apply_edit(SynthesisSession& session, const EditSpec& e) {
  switch (e.kind) {
    case EditSpec::Kind::kAddMax:
      session.add_max_constraint(e.from, e.to, e.cycles);
      return;
    case EditSpec::Kind::kAddMin:
      session.add_min_constraint(e.from, e.to, e.cycles);
      return;
    case EditSpec::Kind::kSetBound:
      session.set_constraint_bound(e.edge, e.cycles);
      return;
    case EditSpec::Kind::kRemove:
      session.remove_constraint(e.edge);
      return;
  }
}

/// Picks one random journaled edit applicable to `g`; nullopt when no
/// applicable edit was found (caller skips the step).
std::optional<EditSpec> pick_random_edit(const cg::ConstraintGraph& g,
                                         std::mt19937& rng) {
  const graph::Digraph forward = g.project_forward();
  EditSpec spec;

  switch (rng() % 4) {
    case 0: {  // add a max constraint between comparable vertices
      const VertexId from(static_cast<int>(
          rng() % static_cast<unsigned>(std::max(1, g.vertex_count() - 1))));
      const auto lp = graph::longest_paths_from(forward, from.value());
      if (lp.positive_cycle) return std::nullopt;
      std::vector<VertexId> reachable;
      for (int vi = 0; vi < g.vertex_count(); ++vi) {
        if (vi != from.value() && lp.dist[static_cast<std::size_t>(vi)] !=
                                      graph::kNegInf) {
          reachable.push_back(VertexId(vi));
        }
      }
      if (reachable.empty()) return std::nullopt;
      spec.kind = EditSpec::Kind::kAddMax;
      spec.from = from;
      spec.to = reachable[rng() % reachable.size()];
      // Slack 0..5 keeps most additions feasible; tightening below
      // drives some of them infeasible.
      spec.cycles = static_cast<int>(lp.dist[spec.to.index()]) +
                    static_cast<int>(rng() % 6);
      return spec;
    }
    case 1: {  // add a min constraint along the topological order
      const auto topo = graph::topological_order(forward);
      if (!topo.has_value() || topo->size() < 2) return std::nullopt;
      const std::size_t i = rng() % (topo->size() - 1);
      const std::size_t j = i + 1 + rng() % (topo->size() - 1 - i);
      // Tail precedes head in a topological order, so the new forward
      // edge cannot close a cycle.
      spec.kind = EditSpec::Kind::kAddMin;
      spec.from = VertexId((*topo)[i]);
      spec.to = VertexId((*topo)[j]);
      spec.cycles = static_cast<int>(rng() % 5);
      return spec;
    }
    case 2: {  // re-weight a constraint edge by +-1
      std::vector<EdgeId> constraints;
      for (const cg::Edge& e : g.edges()) {
        if (e.kind != cg::EdgeKind::kSequencing) constraints.push_back(e.id);
      }
      if (constraints.empty()) return std::nullopt;
      spec.kind = EditSpec::Kind::kSetBound;
      spec.edge = constraints[rng() % constraints.size()];
      const int bound = std::abs(g.edge(spec.edge).fixed_weight);
      spec.cycles = std::max(0, bound + static_cast<int>(rng() % 3) - 1);
      return spec;
    }
    default: {  // remove a constraint edge (respecting polarity guards)
      std::vector<EdgeId> removable;
      for (const cg::Edge& e : g.edges()) {
        if (e.kind == cg::EdgeKind::kMaxConstraint) {
          removable.push_back(e.id);
        } else if (e.kind == cg::EdgeKind::kMinConstraint) {
          int tail_out = 0, head_in = 0;
          for (EdgeId oe : g.out_edges(e.from)) {
            if (cg::is_forward(g.edge(oe).kind)) ++tail_out;
          }
          for (EdgeId ie : g.in_edges(e.to)) {
            if (cg::is_forward(g.edge(ie).kind)) ++head_in;
          }
          if (tail_out > 1 && head_in > 1) removable.push_back(e.id);
        }
      }
      if (removable.empty()) return std::nullopt;
      spec.kind = EditSpec::Kind::kRemove;
      spec.edge = removable[rng() % removable.size()];
      return spec;
    }
  }
}

/// Applies one random journaled edit through the session. Returns false
/// when no applicable edit was found (caller skips the step).
bool random_edit(SynthesisSession& session, std::mt19937& rng) {
  const auto spec = pick_random_edit(session.graph(), rng);
  if (!spec.has_value()) return false;
  apply_edit(session, *spec);
  return true;
}

/// Bit-identical comparison of two sessions' products (transaction
/// commit vs. one-resolve-per-edit). Infeasible and invalid-graph
/// products carry a default-constructed analysis on both paths, so the
/// per-vertex comparisons only run when an analysis was computed.
void expect_sessions_match(const Products& a, const Products& b,
                           const cg::ConstraintGraph& g, int batch) {
  ASSERT_EQ(a.revision, b.revision) << "batch " << batch;
  ASSERT_EQ(a.schedule.status, b.schedule.status) << "batch " << batch;
  EXPECT_EQ(a.schedule.message, b.schedule.message) << "batch " << batch;
  ASSERT_EQ(a.analysis.anchors(), b.analysis.anchors()) << "batch " << batch;
  if (a.schedule.status == sched::ScheduleStatus::kInfeasible ||
      a.schedule.status == sched::ScheduleStatus::kInvalidGraph) {
    return;  // no analysis behind these statuses
  }
  for (int vi = 0; vi < g.vertex_count(); ++vi) {
    const VertexId v(vi);
    EXPECT_EQ(a.analysis.anchor_set(v), b.analysis.anchor_set(v))
        << "A(v" << vi << "), batch " << batch;
    EXPECT_EQ(a.analysis.irredundant_set(v), b.analysis.irredundant_set(v))
        << "IR(v" << vi << "), batch " << batch;
    for (VertexId anchor : a.analysis.anchors()) {
      EXPECT_EQ(a.analysis.length(anchor, v), b.analysis.length(anchor, v))
          << "length(v" << anchor << ", v" << vi << "), batch " << batch;
    }
    if (a.ok() && b.ok()) {
      EXPECT_EQ(a.schedule.schedule.offsets(v), b.schedule.schedule.offsets(v))
          << "offsets(v" << vi << "), batch " << batch;
    }
  }
}

class EngineProperties : public ::testing::TestWithParam<unsigned> {};

TEST_P(EngineProperties, IncrementalResolveMatchesColdRecompute) {
  std::mt19937 rng(GetParam());
  int corpora = 0;
  int warm_total = 0;
  for (int trial = 0; trial < 80; ++trial) {
    relsched::testing::RandomGraphParams params;
    params.vertex_count = 8 + static_cast<int>(rng() % 14);
    params.unbounded_fraction = 0.15 + 0.2 * (rng() % 3);
    params.max_constraints = 1 + static_cast<int>(rng() % 3);
    auto g = relsched::testing::random_constraint_graph(rng, params);
    if (!g.validate().empty()) continue;
    if (wellposed::make_wellposed(g).status != wellposed::Status::kWellPosed) {
      continue;
    }

    const auto mode = static_cast<anchors::AnchorMode>(rng() % 3);
    SessionOptions opts;
    opts.schedule_mode = mode;
    SynthesisSession session(std::move(g), opts);
    if (!session.resolve().ok()) continue;
    ++corpora;

    for (int step = 0; step < 10; ++step) {
      if (!random_edit(session, rng)) continue;
      const Products& products = session.resolve();
      const ColdProducts cold = cold_pipeline(session.graph(), mode);
      expect_equivalent(products, cold, session.graph(), step);
      if (::testing::Test::HasFatalFailure()) return;
    }
    warm_total += session.stats().warm_resolves;
  }
  EXPECT_GT(corpora, 5) << "corpus too thin for seed " << GetParam();
  EXPECT_GT(warm_total, 10) << "edit sequences never exercised the warm path";
}

TEST_P(EngineProperties, ResolveIsIdempotentAndCached) {
  std::mt19937 rng(GetParam());
  relsched::testing::RandomGraphParams params;
  std::optional<cg::ConstraintGraph> graph;
  for (int trial = 0; trial < 40 && !graph.has_value(); ++trial) {
    auto g = relsched::testing::random_constraint_graph(rng, params);
    if (g.validate().empty() && wellposed::make_wellposed(g).status ==
                                    wellposed::Status::kWellPosed) {
      graph = std::move(g);
    }
  }
  ASSERT_TRUE(graph.has_value()) << "no well-posed graph in 40 trials";
  SynthesisSession session(std::move(*graph), {});
  const Products& first = session.resolve();
  const std::uint64_t revision = first.revision;
  const int colds = session.stats().cold_resolves;
  // No edits: resolve() must be a cached no-op.
  const Products& second = session.resolve();
  EXPECT_EQ(second.revision, revision);
  EXPECT_EQ(session.stats().cold_resolves, colds);
  EXPECT_EQ(session.stats().warm_resolves, 0);
}

// A session committing whole transactions must be bit-identical to a
// session resolving after every single edit, at every commit boundary
// -- even when the edits inside a batch pass through infeasible or
// ill-posed intermediate states that the per-edit session materializes
// and the transaction never does. Also checks the cone-coalescing
// accounting: the merged cone never exceeds the sum of the per-edit
// cones, with equality for single-edit (trivially disjoint) batches.
TEST_P(EngineProperties, TransactionsMatchPerEditResolves) {
  std::mt19937 rng(GetParam() * 7919u + 17u);
  int corpora = 0;
  int commits = 0;
  int overlapping = 0;
  for (int trial = 0; trial < 40; ++trial) {
    relsched::testing::RandomGraphParams params;
    params.vertex_count = 8 + static_cast<int>(rng() % 14);
    params.max_constraints = 1 + static_cast<int>(rng() % 3);
    auto g = relsched::testing::random_constraint_graph(rng, params);
    if (!g.validate().empty()) continue;
    if (wellposed::make_wellposed(g).status != wellposed::Status::kWellPosed) {
      continue;
    }
    const auto mode = static_cast<anchors::AnchorMode>(rng() % 3);
    SessionOptions opts;
    opts.schedule_mode = mode;
    cg::ConstraintGraph mirror = g;  // identical copy, identical edge ids
    SynthesisSession txn(std::move(g), opts);
    SynthesisSession step(std::move(mirror), opts);
    if (!txn.resolve().ok()) continue;
    step.resolve();
    ++corpora;

    for (int batch = 0; batch < 6; ++batch) {
      const int want = 1 + static_cast<int>(rng() % 4);
      txn.begin_txn();
      ASSERT_TRUE(txn.in_txn());
      int applied = 0;
      for (int j = 0; j < want; ++j) {
        // Both graphs are identical at every point, so a spec picked on
        // the transaction's graph applies verbatim to the mirror.
        const auto spec = pick_random_edit(txn.graph(), rng);
        if (!spec.has_value()) continue;
        apply_edit(txn, *spec);
        apply_edit(step, *spec);
        step.resolve();  // materializes every intermediate state
        ++applied;
      }
      const Products& committed = txn.commit();
      ++commits;

      const SessionStats stats = txn.stats();
      EXPECT_EQ(stats.last_txn_edits, applied);
      EXPECT_LE(stats.last_merged_cone_vertices, stats.last_cone_vertices_sum);
      if (applied == 1) {
        EXPECT_EQ(stats.last_merged_cone_vertices,
                  stats.last_cone_vertices_sum);
      }
      if (stats.last_merged_cone_vertices < stats.last_cone_vertices_sum) {
        ++overlapping;
      }

      expect_sessions_match(committed, step.products(), txn.graph(), batch);
      expect_equivalent(committed, cold_pipeline(txn.graph(), mode),
                        txn.graph(), batch);
      if (::testing::Test::HasFatalFailure()) return;
    }
    EXPECT_EQ(txn.stats().transactions, 6);
  }
  EXPECT_GT(corpora, 3) << "corpus too thin for seed " << GetParam();
  EXPECT_GT(commits, 18) << "too few transactions committed";
  EXPECT_GT(overlapping, 0) << "no batch ever coalesced overlapping cones";
}

// Parallel anchor analysis must be bit-identical to sequential at any
// thread count -- including when an armed fault corrupts the warm
// state mid-resolve and certification rejects it. Three sessions (1
// thread, a 2-worker pool, an 8-worker pool) receive identical edit
// sequences and identical armed faults drawn from the whole
// FaultInjector matrix; their products must match after every resolve,
// and the certifier must catch the same faults on every path.
TEST_P(EngineProperties, ParallelResolveMatchesSequentialUnderFaults) {
  std::mt19937 rng(GetParam() * 2654435761u + 9u);
  const FaultInjector::Kind kinds[] = {
      FaultInjector::Kind::kNone,
      FaultInjector::Kind::kCorruptPotential,
      FaultInjector::Kind::kFlipDirtyBit,
      FaultInjector::Kind::kDropJournalEntry,
      FaultInjector::Kind::kTruncateAnchorRow,
  };
  const auto pool2 = std::make_shared<base::WorkStealingPool>(2);
  const auto pool8 = std::make_shared<base::WorkStealingPool>(8);

  int corpora = 0;
  long long caught = 0;
  for (int trial = 0; trial < 80; ++trial) {
    relsched::testing::RandomGraphParams params;
    params.vertex_count = 10 + static_cast<int>(rng() % 14);
    params.unbounded_fraction = 0.15 + 0.2 * (rng() % 3);
    params.max_constraints = 1 + static_cast<int>(rng() % 3);
    auto g = relsched::testing::random_constraint_graph(rng, params);
    if (!g.validate().empty()) continue;
    if (wellposed::make_wellposed(g).status != wellposed::Status::kWellPosed) {
      continue;
    }

    SessionOptions opts;
    opts.certify = true;  // a fired fault must be caught, not propagated
    opts.threads = 1;
    cg::ConstraintGraph copy2 = g, copy8 = g;
    SynthesisSession seq(std::move(g), opts);
    opts.threads = 0;
    opts.pool = pool2;
    SynthesisSession par2(std::move(copy2), opts);
    opts.pool = pool8;
    SynthesisSession par8(std::move(copy8), opts);
    if (!seq.resolve().ok()) continue;
    par2.resolve();
    par8.resolve();
    ++corpora;

    for (int step = 0; step < 12; ++step) {
      const auto spec = pick_random_edit(seq.graph(), rng);
      if (!spec.has_value()) continue;
      apply_edit(seq, *spec);
      apply_edit(par2, *spec);
      apply_edit(par8, *spec);

      FaultInjector fault;
      fault.kind = kinds[rng() % (sizeof kinds / sizeof kinds[0])];
      fault.seed = rng();
      seq.arm_fault(fault);
      par2.arm_fault(fault);
      par8.arm_fault(fault);

      seq.resolve();
      par2.resolve();
      par8.resolve();
      expect_sessions_match(seq.products(), par2.products(), seq.graph(),
                            step);
      expect_sessions_match(seq.products(), par8.products(), seq.graph(),
                            step);
      if (::testing::Test::HasFatalFailure()) return;
    }
    // The certifier's verdicts are part of the determinism contract:
    // every thread count catches exactly the same injected faults.
    EXPECT_EQ(seq.stats().certificate_failures,
              par2.stats().certificate_failures);
    EXPECT_EQ(seq.stats().certificate_failures,
              par8.stats().certificate_failures);
    caught += seq.stats().certificate_failures;
  }
  EXPECT_GT(corpora, 3) << "corpus too thin for seed " << GetParam();
  EXPECT_GT(caught, 0) << "no injected fault was ever caught";
}

// Deterministic excursions: a transaction may pass through an
// infeasible configuration (max bound tightened to 0) as long as the
// committed graph resolves; the intermediate state is never
// materialized.
TEST(EngineTransactions, InfeasibleExcursionInsideTxn) {
  relsched::testing::Fig2Graph fig;
  EdgeId max_edge = EdgeId::invalid();
  for (const cg::Edge& e : fig.g.edges()) {
    if (e.kind == cg::EdgeKind::kMaxConstraint) max_edge = e.id;
  }
  SynthesisSession session(std::move(fig.g), {});
  ASSERT_TRUE(session.resolve().ok());
  std::vector<sched::OffsetMap> before;
  for (int vi = 0; vi < session.graph().vertex_count(); ++vi) {
    before.push_back(session.products().schedule.schedule.offsets(VertexId(vi)));
  }

  session.begin_txn();
  session.set_constraint_bound(max_edge, 0);  // infeasible if materialized
  session.set_constraint_bound(max_edge, 2);  // restored inside the txn
  const Products& committed = session.commit();
  EXPECT_TRUE(committed.ok());
  for (int vi = 0; vi < session.graph().vertex_count(); ++vi) {
    EXPECT_EQ(committed.schedule.schedule.offsets(VertexId(vi)),
              before[static_cast<std::size_t>(vi)]);
  }
  // Two edits on the same edge flood the same cone: merged is exactly
  // half of the sum, and strictly below it (overlap, not disjoint).
  const SessionStats stats = session.stats();
  EXPECT_EQ(stats.last_txn_edits, 2);
  EXPECT_GT(stats.last_merged_cone_vertices, 0);
  EXPECT_EQ(2LL * stats.last_merged_cone_vertices,
            stats.last_cone_vertices_sum);

  // Sanity: the excursion really is infeasible when materialized.
  session.set_constraint_bound(max_edge, 0);
  EXPECT_EQ(session.resolve().schedule.status,
            sched::ScheduleStatus::kInfeasible);
  session.set_constraint_bound(max_edge, 2);
  EXPECT_TRUE(session.resolve().ok());
}

// Same shape for ill-posedness: a max constraint spanning the unbounded
// anchor `a` (the Fig. 3(a) pattern) is added and removed inside one
// transaction; the commit never sees the ill-posed configuration.
TEST(EngineTransactions, IllPosedExcursionInsideTxn) {
  relsched::testing::Fig2Graph fig;
  const VertexId v0 = fig.v0, v3 = fig.v3;
  SynthesisSession session(std::move(fig.g), {});
  ASSERT_TRUE(session.resolve().ok());
  std::vector<sched::OffsetMap> before;
  for (int vi = 0; vi < session.graph().vertex_count(); ++vi) {
    before.push_back(session.products().schedule.schedule.offsets(VertexId(vi)));
  }

  session.begin_txn();
  const EdgeId bad = session.add_max_constraint(v0, v3, 10);
  session.remove_constraint(bad);
  const Products& committed = session.commit();
  EXPECT_TRUE(committed.ok());
  for (int vi = 0; vi < session.graph().vertex_count(); ++vi) {
    EXPECT_EQ(committed.schedule.schedule.offsets(VertexId(vi)),
              before[static_cast<std::size_t>(vi)]);
  }

  // Sanity: materialized step-by-step, the excursion is ill-posed.
  const EdgeId bad2 = session.add_max_constraint(v0, v3, 10);
  EXPECT_EQ(session.resolve().schedule.status,
            sched::ScheduleStatus::kIllPosed);
  session.remove_constraint(bad2);
  EXPECT_TRUE(session.resolve().ok());
}

// Transaction API preconditions: no nesting, no resolve() or fork()
// with a transaction open, no commit() without begin_txn(). An empty
// transaction commits as a no-op.
TEST(EngineTransactions, ApiPreconditions) {
  relsched::testing::Fig2Graph fig;
  SynthesisSession session(std::move(fig.g), {});
  ASSERT_TRUE(session.resolve().ok());

  session.begin_txn();
  EXPECT_THROW(session.begin_txn(), ApiError);
  EXPECT_THROW(session.resolve(), ApiError);
  EXPECT_THROW((void)session.fork(), ApiError);
  EXPECT_TRUE(session.commit().ok());  // empty batch: cached products
  EXPECT_EQ(session.stats().last_txn_edits, 0);
  EXPECT_THROW(session.commit(), ApiError);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineProperties,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u));

}  // namespace
}  // namespace relsched::engine

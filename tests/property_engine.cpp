// Equivalence property for the incremental synthesis engine: for random
// well-posed graphs and random edit sequences (constraint insertion,
// removal, re-weighting), a SynthesisSession resolved after each edit
// produces *bit-identical* products to a cold recompute of the edited
// graph -- same status and message, same A / R / IR sets, same
// anchor-to-vertex path lengths, same schedule offsets. Edits are free
// to drive the graph infeasible or ill-posed and back; the session must
// agree with the cold pipeline at every step.
#include <gtest/gtest.h>

#include <optional>
#include <random>
#include <vector>

#include "engine/session.hpp"
#include "graph/algorithms.hpp"
#include "testutil.hpp"
#include "wellposed/wellposed.hpp"

namespace relsched::engine {
namespace {

/// The cold pipeline the session must match: exactly the sequence
/// cold_resolve() runs, on an independent copy of the graph.
struct ColdProducts {
  sched::ScheduleStatus status = sched::ScheduleStatus::kInvalidGraph;
  std::string message;
  std::optional<anchors::AnchorAnalysis> analysis;
  sched::RelativeSchedule schedule;
};

ColdProducts cold_pipeline(const cg::ConstraintGraph& g,
                           anchors::AnchorMode mode) {
  ColdProducts c;
  if (const auto issues = g.validate(); !issues.empty()) {
    c.status = sched::ScheduleStatus::kInvalidGraph;
    c.message = issues.front().message;
    return c;
  }
  if (!wellposed::is_feasible(g)) {
    c.status = sched::ScheduleStatus::kInfeasible;
    c.message = "positive cycle with unbounded delays set to 0";
    return c;
  }
  c.analysis = anchors::AnchorAnalysis::compute(g);
  const auto wp = wellposed::check(g, c.analysis->anchor_sets());
  if (wp.status == wellposed::Status::kIllPosed) {
    c.status = sched::ScheduleStatus::kIllPosed;
    c.message = wp.message;
    return c;
  }
  sched::ScheduleOptions sopts;
  sopts.mode = mode;
  sopts.prechecks = false;
  auto result = sched::schedule(g, *c.analysis, sopts);
  c.status = result.status;
  c.message = result.message;
  c.schedule = std::move(result.schedule);
  return c;
}

void expect_equivalent(const Products& p, const ColdProducts& c,
                       const cg::ConstraintGraph& g, int step) {
  ASSERT_EQ(p.schedule.status, c.status) << "edit step " << step;
  EXPECT_EQ(p.schedule.message, c.message) << "edit step " << step;
  if (c.analysis.has_value() &&
      p.schedule.status != sched::ScheduleStatus::kInfeasible) {
    const anchors::AnchorAnalysis& cold = *c.analysis;
    const anchors::AnchorAnalysis& warm = p.analysis;
    ASSERT_EQ(warm.anchors(), cold.anchors()) << "edit step " << step;
    for (int vi = 0; vi < g.vertex_count(); ++vi) {
      const VertexId v(vi);
      EXPECT_EQ(warm.anchor_set(v), cold.anchor_set(v))
          << "A(v" << vi << "), edit step " << step;
      EXPECT_EQ(warm.relevant_set(v), cold.relevant_set(v))
          << "R(v" << vi << "), edit step " << step;
      EXPECT_EQ(warm.irredundant_set(v), cold.irredundant_set(v))
          << "IR(v" << vi << "), edit step " << step;
      for (VertexId a : cold.anchors()) {
        EXPECT_EQ(warm.length(a, v), cold.length(a, v))
            << "length(v" << a << ", v" << vi << "), edit step " << step;
        EXPECT_EQ(warm.maximal_defining_path_length(a, v),
                  cold.maximal_defining_path_length(a, v))
            << "|rho*(v" << a << ", v" << vi << ")|, edit step " << step;
      }
    }
  }
  if (p.ok()) {
    for (int vi = 0; vi < g.vertex_count(); ++vi) {
      const VertexId v(vi);
      EXPECT_EQ(p.schedule.schedule.offsets(v), c.schedule.offsets(v))
          << "offsets(v" << vi << "), edit step " << step;
    }
  }
}

/// Applies one random journaled edit through the session. Returns false
/// when no applicable edit was found (caller skips the step).
bool random_edit(SynthesisSession& session, std::mt19937& rng) {
  const cg::ConstraintGraph& g = session.graph();
  const graph::Digraph forward = g.project_forward();

  switch (rng() % 4) {
    case 0: {  // add a max constraint between comparable vertices
      const VertexId from(static_cast<int>(
          rng() % static_cast<unsigned>(std::max(1, g.vertex_count() - 1))));
      const auto lp = graph::longest_paths_from(forward, from.value());
      if (lp.positive_cycle) return false;
      std::vector<VertexId> reachable;
      for (int vi = 0; vi < g.vertex_count(); ++vi) {
        if (vi != from.value() && lp.dist[static_cast<std::size_t>(vi)] !=
                                      graph::kNegInf) {
          reachable.push_back(VertexId(vi));
        }
      }
      if (reachable.empty()) return false;
      const VertexId to = reachable[rng() % reachable.size()];
      const auto dist = lp.dist[to.index()];
      // Slack 0..5 keeps most additions feasible; tightening below
      // drives some of them infeasible.
      session.add_max_constraint(from, to,
                                 static_cast<int>(dist) +
                                     static_cast<int>(rng() % 6));
      return true;
    }
    case 1: {  // add a min constraint along the topological order
      const auto topo = graph::topological_order(forward);
      if (!topo.has_value() || topo->size() < 2) return false;
      const std::size_t i = rng() % (topo->size() - 1);
      const std::size_t j = i + 1 + rng() % (topo->size() - 1 - i);
      // Tail precedes head in a topological order, so the new forward
      // edge cannot close a cycle.
      session.add_min_constraint(VertexId((*topo)[i]), VertexId((*topo)[j]),
                                 static_cast<int>(rng() % 5));
      return true;
    }
    case 2: {  // re-weight a constraint edge by +-1
      std::vector<EdgeId> constraints;
      for (const cg::Edge& e : g.edges()) {
        if (e.kind != cg::EdgeKind::kSequencing) constraints.push_back(e.id);
      }
      if (constraints.empty()) return false;
      const EdgeId eid = constraints[rng() % constraints.size()];
      const int bound = std::abs(g.edge(eid).fixed_weight);
      const int delta = static_cast<int>(rng() % 3) - 1;
      session.set_constraint_bound(eid, std::max(0, bound + delta));
      return true;
    }
    default: {  // remove a constraint edge (respecting polarity guards)
      std::vector<EdgeId> removable;
      for (const cg::Edge& e : g.edges()) {
        if (e.kind == cg::EdgeKind::kMaxConstraint) {
          removable.push_back(e.id);
        } else if (e.kind == cg::EdgeKind::kMinConstraint) {
          int tail_out = 0, head_in = 0;
          for (EdgeId oe : g.out_edges(e.from)) {
            if (cg::is_forward(g.edge(oe).kind)) ++tail_out;
          }
          for (EdgeId ie : g.in_edges(e.to)) {
            if (cg::is_forward(g.edge(ie).kind)) ++head_in;
          }
          if (tail_out > 1 && head_in > 1) removable.push_back(e.id);
        }
      }
      if (removable.empty()) return false;
      session.remove_constraint(removable[rng() % removable.size()]);
      return true;
    }
  }
}

class EngineProperties : public ::testing::TestWithParam<unsigned> {};

TEST_P(EngineProperties, IncrementalResolveMatchesColdRecompute) {
  std::mt19937 rng(GetParam());
  int corpora = 0;
  int warm_total = 0;
  for (int trial = 0; trial < 80; ++trial) {
    relsched::testing::RandomGraphParams params;
    params.vertex_count = 8 + static_cast<int>(rng() % 14);
    params.unbounded_fraction = 0.15 + 0.2 * (rng() % 3);
    params.max_constraints = 1 + static_cast<int>(rng() % 3);
    auto g = relsched::testing::random_constraint_graph(rng, params);
    if (!g.validate().empty()) continue;
    if (wellposed::make_wellposed(g).status != wellposed::Status::kWellPosed) {
      continue;
    }

    const auto mode = static_cast<anchors::AnchorMode>(rng() % 3);
    SessionOptions opts;
    opts.schedule_mode = mode;
    SynthesisSession session(std::move(g), opts);
    if (!session.resolve().ok()) continue;
    ++corpora;

    for (int step = 0; step < 10; ++step) {
      if (!random_edit(session, rng)) continue;
      const Products& products = session.resolve();
      const ColdProducts cold = cold_pipeline(session.graph(), mode);
      expect_equivalent(products, cold, session.graph(), step);
      if (::testing::Test::HasFatalFailure()) return;
    }
    warm_total += session.stats().warm_resolves;
  }
  EXPECT_GT(corpora, 5) << "corpus too thin for seed " << GetParam();
  EXPECT_GT(warm_total, 10) << "edit sequences never exercised the warm path";
}

TEST_P(EngineProperties, ResolveIsIdempotentAndCached) {
  std::mt19937 rng(GetParam());
  relsched::testing::RandomGraphParams params;
  std::optional<cg::ConstraintGraph> graph;
  for (int trial = 0; trial < 40 && !graph.has_value(); ++trial) {
    auto g = relsched::testing::random_constraint_graph(rng, params);
    if (g.validate().empty() && wellposed::make_wellposed(g).status ==
                                    wellposed::Status::kWellPosed) {
      graph = std::move(g);
    }
  }
  ASSERT_TRUE(graph.has_value()) << "no well-posed graph in 40 trials";
  SynthesisSession session(std::move(*graph), {});
  const Products& first = session.resolve();
  const std::uint64_t revision = first.revision;
  const int colds = session.stats().cold_resolves;
  // No edits: resolve() must be a cached no-op.
  const Products& second = session.resolve();
  EXPECT_EQ(second.revision, revision);
  EXPECT_EQ(session.stats().cold_resolves, colds);
  EXPECT_EQ(session.stats().warm_resolves, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineProperties,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u));

}  // namespace
}  // namespace relsched::engine

// SessionStats observability: transaction counters and cone-coalescing
// accounting, fork counters and copy-on-write row sharing, fork
// isolation, warm-path phase timings, and the fork() preconditions.
#include <gtest/gtest.h>

#include <vector>

#include "base/error.hpp"
#include "engine/session.hpp"
#include "testutil.hpp"

namespace relsched::engine {
namespace {

EdgeId find_max_edge(const cg::ConstraintGraph& g) {
  for (const cg::Edge& e : g.edges()) {
    if (e.kind == cg::EdgeKind::kMaxConstraint) return e.id;
  }
  ADD_FAILURE() << "graph has no max constraint";
  return EdgeId::invalid();
}

std::vector<sched::OffsetMap> snapshot_offsets(const SynthesisSession& s) {
  std::vector<sched::OffsetMap> out;
  for (int vi = 0; vi < s.graph().vertex_count(); ++vi) {
    out.push_back(s.products().schedule.schedule.offsets(VertexId(vi)));
  }
  return out;
}

TEST(SessionStatsTest, TransactionCountersAndConeAccounting) {
  relsched::testing::Fig2Graph fig;
  SynthesisSession session(std::move(fig.g), {});
  ASSERT_TRUE(session.resolve().ok());
  const EdgeId max_edge = find_max_edge(session.graph());

  SessionStats st = session.stats();
  EXPECT_EQ(st.transactions, 0);
  EXPECT_EQ(st.edits_coalesced, 0);

  // Single-edit batch: the merged cone IS the edit's cone.
  session.begin_txn();
  session.set_constraint_bound(max_edge, 3);
  ASSERT_TRUE(session.commit().ok());
  st = session.stats();
  EXPECT_EQ(st.transactions, 1);
  EXPECT_EQ(st.last_txn_edits, 1);
  EXPECT_EQ(st.edits_coalesced, 1);
  EXPECT_GT(st.last_merged_cone_vertices, 0);
  EXPECT_EQ(st.last_merged_cone_vertices, st.last_cone_vertices_sum);

  // Two edits on the same edge: identical cones, so the merged cone is
  // exactly half the sum -- coalescing pays for the union, not the sum.
  session.begin_txn();
  session.set_constraint_bound(max_edge, 4);
  session.set_constraint_bound(max_edge, 2);
  ASSERT_TRUE(session.commit().ok());
  st = session.stats();
  EXPECT_EQ(st.transactions, 2);
  EXPECT_EQ(st.last_txn_edits, 2);
  EXPECT_EQ(st.edits_coalesced, 3);
  EXPECT_LT(st.last_merged_cone_vertices, st.last_cone_vertices_sum);
  EXPECT_EQ(2LL * st.last_merged_cone_vertices, st.last_cone_vertices_sum);
}

TEST(SessionStatsTest, ForkCountersAndCopyOnWriteRows) {
  relsched::testing::Fig2Graph fig;
  const VertexId v1 = fig.v1, v3 = fig.v3;
  SynthesisSession parent(std::move(fig.g), {});
  ASSERT_TRUE(parent.resolve().ok());
  EXPECT_EQ(parent.stats().forks_taken, 0);
  EXPECT_EQ(parent.stats().anchor_rows_shared, 0);

  // Two matrices (path lengths, maximal defining-path lengths), one row
  // per anchor each.
  const int total_rows =
      2 * static_cast<int>(parent.products().analysis.anchors().size());
  ASSERT_GT(total_rows, 0);
  const std::vector<sched::OffsetMap> before = snapshot_offsets(parent);

  {
    SynthesisSession f1 = parent.fork();
    SynthesisSession f2 = parent.fork();
    EXPECT_EQ(parent.stats().forks_taken, 2);
    // The fork's own counter starts at zero; it counts forks *served*.
    EXPECT_EQ(f1.stats().forks_taken, 0);
    // Right after forking every row is physically shared.
    EXPECT_EQ(parent.stats().anchor_rows_shared, total_rows);
    EXPECT_EQ(f1.stats().anchor_rows_shared, total_rows);

    // A warm resolve in one fork patches only that fork's copies: a new
    // forward constraint changes anchor path lengths, so at least one
    // row detaches from the shared baseline.
    f1.add_min_constraint(v1, v3, 6);
    ASSERT_TRUE(f1.resolve().ok());
    EXPECT_GE(f1.stats().warm_resolves, 1);
    EXPECT_LT(f1.stats().anchor_rows_shared, total_rows);
    // The parent still shares every row with f2, and its products are
    // untouched by f1's edit.
    EXPECT_EQ(parent.stats().anchor_rows_shared, total_rows);
    const std::vector<sched::OffsetMap> after = snapshot_offsets(parent);
    for (std::size_t vi = 0; vi < before.size(); ++vi) {
      EXPECT_EQ(after[vi], before[vi]) << "v" << vi;
    }
  }
  // Forks gone: nothing left to share with.
  EXPECT_EQ(parent.stats().anchor_rows_shared, 0);
  EXPECT_EQ(parent.stats().forks_taken, 2);
}

TEST(SessionStatsTest, ForkRequiresCurrentResolve) {
  relsched::testing::Fig2Graph fig;
  SynthesisSession session(std::move(fig.g), {});
  // Never resolved: no baseline to share.
  EXPECT_THROW((void)session.fork(), ApiError);
  ASSERT_TRUE(session.resolve().ok());
  const EdgeId max_edge = find_max_edge(session.graph());
  session.set_constraint_bound(max_edge, 3);
  // Pending journal entries: the fork would be stale.
  EXPECT_THROW((void)session.fork(), ApiError);
  ASSERT_TRUE(session.resolve().ok());
  SynthesisSession fork = session.fork();
  EXPECT_TRUE(fork.products().ok());
  EXPECT_EQ(fork.products().revision, fork.graph().revision());
}

TEST(SessionStatsTest, ForkIsIndependentlyEditable) {
  relsched::testing::Fig2Graph fig;
  SynthesisSession parent(std::move(fig.g), {});
  ASSERT_TRUE(parent.resolve().ok());
  SynthesisSession fork = parent.fork();

  // The fork's journal starts at a branch point: its graph carries no
  // replayable history from the parent.
  EXPECT_TRUE(fork.graph().edits().empty());
  EXPECT_EQ(fork.graph().revision(), parent.graph().revision());

  // Forks fork: a fork is a full session.
  const EdgeId max_edge = find_max_edge(fork.graph());
  fork.begin_txn();
  fork.set_constraint_bound(max_edge, 5);
  ASSERT_TRUE(fork.commit().ok());
  SynthesisSession grandchild = fork.fork();
  EXPECT_TRUE(grandchild.products().ok());
  EXPECT_EQ(fork.stats().forks_taken, 1);
  EXPECT_EQ(parent.stats().forks_taken, 1);
}

TEST(SessionStatsTest, WarmPhaseTimingsAccumulate) {
  relsched::testing::Fig2Graph fig;
  SynthesisSession session(std::move(fig.g), {});
  ASSERT_TRUE(session.resolve().ok());
  const EdgeId max_edge = find_max_edge(session.graph());

  SessionStats st = session.stats();
  EXPECT_EQ(st.warm_topo_us + st.warm_spfa_us + st.warm_anchor_us +
                st.warm_resched_us,
            0.0);

  for (int i = 0; i < 5; ++i) {
    session.set_constraint_bound(max_edge, 2 + i % 2);
    ASSERT_TRUE(session.resolve().ok());
  }
  st = session.stats();
  EXPECT_EQ(st.warm_resolves, 5);
  EXPECT_GE(st.warm_topo_us, 0.0);
  EXPECT_GE(st.warm_spfa_us, 0.0);
  EXPECT_GE(st.warm_anchor_us, 0.0);
  EXPECT_GE(st.warm_resched_us, 0.0);
  EXPECT_GT(st.warm_topo_us + st.warm_spfa_us + st.warm_anchor_us +
                st.warm_resched_us,
            0.0);
}

}  // namespace
}  // namespace relsched::engine

#include "ctrl/control.hpp"

#include <gtest/gtest.h>

#include "sched/scheduler.hpp"
#include "testutil.hpp"
#include "wellposed/wellposed.hpp"

namespace relsched::ctrl {
namespace {

using relsched::testing::Fig2Graph;

struct Synthesized {
  Fig2Graph f;
  anchors::AnchorAnalysis analysis;
  sched::ScheduleResult result;

  Synthesized() {
    analysis = anchors::AnchorAnalysis::compute(f.g);
    result = sched::schedule(f.g, analysis);
    EXPECT_TRUE(result.ok());
  }
};

TEST(ControlGen, ShiftRegisterCostsMatchMaxOffsets) {
  Synthesized s;
  ControlOptions opts;
  opts.style = ControlStyle::kShiftRegister;
  opts.mode = anchors::AnchorMode::kFull;
  const auto unit =
      generate_control(s.f.g, s.analysis, s.result.schedule, opts);
  // sigma_v0^max = 8 (v4), sigma_a^max = 5 (v4): 13 shift stages total.
  ASSERT_EQ(unit.syncs.size(), 2u);
  EXPECT_EQ(unit.syncs[0].anchor, s.f.v0);
  EXPECT_EQ(unit.syncs[0].max_offset, 8);
  EXPECT_EQ(unit.syncs[0].flipflops, 8);
  EXPECT_EQ(unit.syncs[1].anchor, s.f.a);
  EXPECT_EQ(unit.syncs[1].max_offset, 5);
  EXPECT_EQ(unit.cost.flipflops, 13);
}

TEST(ControlGen, CounterUsesFewerFlipflops) {
  Synthesized s;
  ControlOptions sr_opts;
  sr_opts.style = ControlStyle::kShiftRegister;
  ControlOptions cnt_opts;
  cnt_opts.style = ControlStyle::kCounter;
  const auto sr = generate_control(s.f.g, s.analysis, s.result.schedule, sr_opts);
  const auto cnt =
      generate_control(s.f.g, s.analysis, s.result.schedule, cnt_opts);
  EXPECT_LT(cnt.cost.flipflops, sr.cost.flipflops);
  EXPECT_GT(cnt.cost.gates, sr.cost.gates);  // comparators cost logic
}

TEST(ControlGen, SimulationMatchesStartTimesBothStyles) {
  Synthesized s;
  for (const ControlStyle style :
       {ControlStyle::kCounter, ControlStyle::kShiftRegister}) {
    ControlOptions opts;
    opts.style = style;
    opts.mode = anchors::AnchorMode::kFull;
    const auto unit =
        generate_control(s.f.g, s.analysis, s.result.schedule, opts);
    for (int da = 0; da <= 7; da += 7) {
      sched::DelayProfile profile;
      profile.set(s.f.a, da);
      const auto start = s.result.schedule.start_times(s.f.g, profile);
      // done cycles: completion of each anchor.
      std::vector<graph::Weight> done(
          static_cast<std::size_t>(s.f.g.vertex_count()), -1);
      done[s.f.v0.index()] = 0;
      done[s.f.a.index()] = start[s.f.a.index()] + da;
      const auto enables = simulate_control(unit, s.f.g, done, 64);
      for (int vi = 0; vi < s.f.g.vertex_count(); ++vi) {
        EXPECT_EQ(enables[static_cast<std::size_t>(vi)],
                  start[static_cast<std::size_t>(vi)])
            << to_string(style) << " vertex " << vi << " delta(a)=" << da;
      }
    }
  }
}

TEST(ControlGen, IrredundantModeShrinksControl) {
  // Cascaded anchors (Fig 4): a dominated anchor drops out of the
  // enable logic entirely under IR mode.
  cg::ConstraintGraph g;
  const VertexId v0 = g.add_vertex("v0", cg::Delay::bounded(0));
  const VertexId a = g.add_vertex("a", cg::Delay::unbounded());
  const VertexId b = g.add_vertex("b", cg::Delay::unbounded());
  const VertexId vi = g.add_vertex("vi", cg::Delay::bounded(1));
  const VertexId vn = g.add_vertex("vn", cg::Delay::bounded(0));
  g.add_sequencing_edge(v0, a);
  g.add_sequencing_edge(a, b);
  g.add_sequencing_edge(b, vi);
  g.add_sequencing_edge(vi, vn);
  const auto analysis = anchors::AnchorAnalysis::compute(g);
  const auto result = sched::schedule(g, analysis);
  ASSERT_TRUE(result.ok());

  ControlOptions full;
  full.mode = anchors::AnchorMode::kFull;
  ControlOptions ir;
  ir.mode = anchors::AnchorMode::kIrredundant;
  const auto unit_full = generate_control(g, analysis, result.schedule, full);
  const auto unit_ir = generate_control(g, analysis, result.schedule, ir);

  auto terms = [](const ControlUnit& u) {
    std::size_t n = 0;
    for (const auto& e : u.enables) n += e.terms.size();
    return n;
  };
  EXPECT_LT(terms(unit_ir), terms(unit_full));
  EXPECT_LE(unit_ir.cost.flipflops, unit_full.cost.flipflops);

  // Both controls still fire ops at identical times.
  for (int da = 0; da <= 5; da += 5) {
    for (int db = 0; db <= 3; db += 3) {
      sched::DelayProfile profile;
      profile.set(a, da);
      profile.set(b, db);
      const auto start = result.schedule.start_times(g, profile);
      std::vector<graph::Weight> done(static_cast<std::size_t>(g.vertex_count()),
                                      -1);
      done[v0.index()] = 0;
      done[a.index()] = start[a.index()] + da;
      done[b.index()] = start[b.index()] + db;
      const auto en_full = simulate_control(unit_full, g, done, 64);
      const auto en_ir = simulate_control(unit_ir, g, done, 64);
      EXPECT_EQ(en_full, en_ir);
      EXPECT_EQ(en_ir[vi.index()], start[vi.index()]);
    }
  }
}

TEST(ControlGen, VerilogEmissionContainsStructure) {
  Synthesized s;
  ControlOptions opts;
  opts.style = ControlStyle::kShiftRegister;
  opts.mode = anchors::AnchorMode::kFull;
  const auto unit =
      generate_control(s.f.g, s.analysis, s.result.schedule, opts);
  const std::string v = unit.to_verilog(s.f.g, "fig2_ctrl");
  EXPECT_NE(v.find("module fig2_ctrl"), std::string::npos);
  EXPECT_NE(v.find("done_v0"), std::string::npos);
  EXPECT_NE(v.find("done_a"), std::string::npos);
  EXPECT_NE(v.find("sr_v0"), std::string::npos);
  EXPECT_NE(v.find("en_v4"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);

  ControlOptions cnt;
  cnt.style = ControlStyle::kCounter;
  cnt.mode = anchors::AnchorMode::kFull;
  const auto unit2 =
      generate_control(s.f.g, s.analysis, s.result.schedule, cnt);
  const std::string v2 = unit2.to_verilog(s.f.g, "fig2_cnt");
  EXPECT_NE(v2.find("cnt_v0"), std::string::npos);
  EXPECT_NE(v2.find(">= "), std::string::npos);
}

TEST(ControlGen, ZeroOffsetAnchorsNeedNoState) {
  cg::ConstraintGraph g;
  const VertexId v0 = g.add_vertex("v0", cg::Delay::bounded(0));
  const VertexId v1 = g.add_vertex("v1", cg::Delay::bounded(0));
  g.add_sequencing_edge(v0, v1);
  const auto analysis = anchors::AnchorAnalysis::compute(g);
  const auto result = sched::schedule(g, analysis);
  ASSERT_TRUE(result.ok());
  const auto unit = generate_control(g, analysis, result.schedule, {});
  EXPECT_EQ(unit.cost.flipflops, 0);
  EXPECT_EQ(unit.cost.gates, 0);
}

}  // namespace
}  // namespace relsched::ctrl

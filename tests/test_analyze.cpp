// Unit tests for the static slack / criticality analyzer
// (src/analyze): exact slacks on the paper's Figure 2, hand-computed
// slack values on a chain, verdict short-circuits, certified
// extraction on all three failure-free/failing verdicts, renderers,
// exit codes, and the incremental re-analysis path.
#include <gtest/gtest.h>

#include <string>

#include "analyze/analyze.hpp"
#include "analyze/incremental.hpp"
#include "engine/session.hpp"
#include "sched/scheduler.hpp"
#include "testutil.hpp"

namespace relsched {
namespace {

using testing::Fig2Graph;
using testing::Fig3aGraph;

TEST(Analyze, Fig2SlacksAreExact) {
  const Fig2Graph fig;
  const analyze::Report report = analyze::analyze(fig.g);
  ASSERT_TRUE(report.ok()) << report.message;
  ASSERT_EQ(report.slacks.size(), 2u);
  EXPECT_EQ(report.binding_count(), 2);
  for (const analyze::ConstraintSlack& s : report.slacks) {
    EXPECT_EQ(s.slack, 0) << analyze::render_text(report, fig.g, 0);
  }
  // The max constraint v1 -> v2 <= 2 in user orientation.
  const auto max_it =
      std::find_if(report.slacks.begin(), report.slacks.end(),
                   [](const analyze::ConstraintSlack& s) {
                     return s.kind == cg::EdgeKind::kMaxConstraint;
                   });
  ASSERT_NE(max_it, report.slacks.end());
  EXPECT_EQ(max_it->from, fig.v1);
  EXPECT_EQ(max_it->to, fig.v2);
  EXPECT_EQ(max_it->bound, 2);
}

TEST(Analyze, ChainSlackMatchesHandComputation) {
  // v0 -0-> v1 -2-> v2: separation sigma(v2) - sigma(v1) = 2 in every
  // frame, so max v1 -> v2 <= 4 has slack exactly 2.
  cg::ConstraintGraph g("chain");
  const VertexId v0 = g.add_vertex("v0", cg::Delay::bounded(0));
  const VertexId v1 = g.add_vertex("v1", cg::Delay::bounded(2));
  const VertexId v2 = g.add_vertex("v2", cg::Delay::bounded(1));
  const VertexId v3 = g.add_vertex("v3", cg::Delay::bounded(0));
  g.add_sequencing_edge(v0, v1);
  g.add_sequencing_edge(v1, v2);
  g.add_sequencing_edge(v2, v3);
  const EdgeId e = g.add_max_constraint(v1, v2, 4);
  const analyze::Report report = analyze::analyze(g);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report.slacks.size(), 1u);
  EXPECT_EQ(report.slacks[0].edge, e);
  EXPECT_EQ(report.slacks[0].slack, 2);
  EXPECT_EQ(report.binding_count(), 0);

  // Empirical check of both slack directions: tightened to the slack
  // the schedule is bit-identical; one past it the graph breaks.
  const auto before = sched::schedule(g);
  ASSERT_TRUE(before.ok());
  cg::ConstraintGraph at_slack = g;
  at_slack.set_constraint_bound(e, 2);
  const auto at = sched::schedule(at_slack);
  ASSERT_TRUE(at.ok());
  for (const cg::Vertex& v : g.vertices()) {
    EXPECT_EQ(before.schedule.offsets(v.id), at.schedule.offsets(v.id));
  }
  cg::ConstraintGraph past_slack = g;
  past_slack.set_constraint_bound(e, 1);
  EXPECT_FALSE(sched::schedule(past_slack).ok());
}

TEST(Analyze, InvalidGraphShortCircuits) {
  cg::ConstraintGraph g("invalid");
  g.add_vertex("v0", cg::Delay::bounded(0));
  g.add_vertex("stranded", cg::Delay::bounded(1));  // not polar
  const analyze::Report report = analyze::analyze(g);
  EXPECT_EQ(report.status, analyze::Status::kInvalid);
  EXPECT_FALSE(report.message.empty());
  EXPECT_EQ(analyze::exit_code(report), 2);
  const analyze::Extraction ex = analyze::extract_critical(g, report);
  EXPECT_FALSE(ex.certified);
}

TEST(Analyze, InfeasibleGraphYieldsCertifiedCycleExtraction) {
  cg::ConstraintGraph g("infeasible");
  const VertexId v0 = g.add_vertex("v0", cg::Delay::bounded(0));
  const VertexId v1 = g.add_vertex("v1", cg::Delay::bounded(3));
  const VertexId v2 = g.add_vertex("v2", cg::Delay::bounded(1));
  g.add_sequencing_edge(v0, v1);
  g.add_sequencing_edge(v1, v2);
  g.add_max_constraint(v1, v2, 2);  // separation 3 > 2: positive cycle
  const analyze::Report report = analyze::analyze(g);
  ASSERT_EQ(report.status, analyze::Status::kInfeasible);
  EXPECT_EQ(report.diag.code, certify::Code::kPositiveCycle);
  EXPECT_EQ(analyze::exit_code(report), 3);
  const analyze::Extraction ex = analyze::extract_critical(g, report);
  EXPECT_TRUE(ex.certified) << ex.certification_error;
  EXPECT_EQ(analyze::exit_code(report, &ex), 3);
}

TEST(Analyze, IllPosedGraphYieldsCertifiedContainmentExtraction) {
  const Fig3aGraph fig;
  const analyze::Report report = analyze::analyze(fig.g);
  ASSERT_EQ(report.status, analyze::Status::kIllPosed);
  EXPECT_EQ(report.diag.code, certify::Code::kContainment);
  EXPECT_EQ(analyze::exit_code(report), 4);
  const analyze::Extraction ex = analyze::extract_critical(fig.g, report);
  EXPECT_TRUE(ex.certified) << ex.certification_error;
}

TEST(Analyze, Fig2ExtractionIsCertifiedAndMapsBack) {
  const Fig2Graph fig;
  const analyze::Report report = analyze::analyze(fig.g);
  ASSERT_TRUE(report.ok());
  const analyze::Extraction ex = analyze::extract_critical(fig.g, report);
  ASSERT_TRUE(ex.certified) << ex.certification_error;
  EXPECT_EQ(ex.full_vertices, fig.g.vertex_count());
  ASSERT_FALSE(ex.vertex_map.empty());
  // The subgraph source is the design source; the maps invert.
  EXPECT_EQ(ex.vertex_map[0], fig.g.source());
  for (std::size_t i = 0; i < ex.vertex_map.size(); ++i) {
    EXPECT_EQ(ex.old_to_new[ex.vertex_map[i].index()],
              static_cast<int>(i));
  }
  for (std::size_t i = 0; i < ex.edge_map.size(); ++i) {
    const cg::Edge& sub = ex.subgraph.edge(EdgeId(static_cast<int>(i)));
    const cg::Edge& full = fig.g.edge(ex.edge_map[i]);
    EXPECT_EQ(sub.kind, full.kind);
    EXPECT_EQ(sub.fixed_weight, full.fixed_weight);
    EXPECT_EQ(ex.vertex_map[sub.from.index()], full.from);
    EXPECT_EQ(ex.vertex_map[sub.to.index()], full.to);
  }
}

TEST(Analyze, RenderersAndJson) {
  const Fig2Graph fig;
  const analyze::Report report = analyze::analyze(fig.g);
  const analyze::Extraction ex = analyze::extract_critical(fig.g, report);
  const std::string text = analyze::render_text(report, fig.g, 1);
  EXPECT_NE(text.find("2 constraints, 2 binding; top 1"), std::string::npos)
      << text;
  const std::string json = analyze::to_json(report, fig.g, &ex);
  EXPECT_NE(json.find("\"status\": \"ok\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"counts\": {\"constraints\": 2, \"binding\": 2}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"certified\": true"), std::string::npos) << json;
}

TEST(Analyze, IncrementalMatchesFreshAfterBoundEdit) {
  Fig2Graph fig;
  engine::SynthesisSession session(std::move(fig.g));
  analyze::IncrementalAnalyzer analyzer;
  const analyze::Report& first = analyzer.reanalyze(session);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(analyzer.full_analyses(), 1);

  // Loosen the max constraint: a warm, bound-only edit.
  const auto max_edge = [&] {
    for (const cg::Edge& e : session.graph().edges()) {
      if (e.kind == cg::EdgeKind::kMaxConstraint) return e.id;
    }
    return EdgeId::invalid();
  }();
  ASSERT_TRUE(max_edge.is_valid());
  session.set_constraint_bound(max_edge, 3);
  const analyze::Report& second = analyzer.reanalyze(session);
  const analyze::Report fresh = analyze::analyze(session.graph());
  EXPECT_EQ(analyze::to_json(second, session.graph()),
            analyze::to_json(fresh, session.graph()));
  // Cached result reused while nothing resolves in between.
  const int full = analyzer.full_analyses();
  const int cone = analyzer.cone_analyses();
  analyzer.reanalyze(session);
  EXPECT_EQ(analyzer.full_analyses(), full);
  EXPECT_EQ(analyzer.cone_analyses(), cone);
}

}  // namespace
}  // namespace relsched

#include "sched/mobility.hpp"

#include <gtest/gtest.h>

#include <random>

#include "testutil.hpp"

namespace relsched::sched {
namespace {

using relsched::testing::Fig2Graph;

TEST(Mobility, ChainHasZeroMobilityEverywhere) {
  cg::ConstraintGraph g;
  const VertexId v0 = g.add_vertex("v0", cg::Delay::bounded(0));
  const VertexId a = g.add_vertex("a", cg::Delay::bounded(2));
  const VertexId b = g.add_vertex("b", cg::Delay::bounded(3));
  g.add_sequencing_edge(v0, a);
  g.add_sequencing_edge(a, b);
  const auto m = compute_mobility(g);
  EXPECT_EQ(m.schedule_length, 2);  // start of b
  for (int vi = 0; vi < g.vertex_count(); ++vi) {
    EXPECT_EQ(m.mobility[static_cast<std::size_t>(vi)], 0) << vi;
    EXPECT_TRUE(m.is_critical(VertexId(vi)));
  }
}

TEST(Mobility, ShortBranchOfDiamondHasSlack) {
  cg::ConstraintGraph g;
  const VertexId v0 = g.add_vertex("v0", cg::Delay::bounded(0));
  const VertexId slow = g.add_vertex("slow", cg::Delay::bounded(5));
  const VertexId fast = g.add_vertex("fast", cg::Delay::bounded(1));
  const VertexId join = g.add_vertex("join", cg::Delay::bounded(0));
  g.add_sequencing_edge(v0, slow);
  g.add_sequencing_edge(v0, fast);
  g.add_sequencing_edge(slow, join);
  g.add_sequencing_edge(fast, join);
  const auto m = compute_mobility(g);
  EXPECT_EQ(m.schedule_length, 5);
  EXPECT_EQ(m.mobility[slow.index()], 0);
  EXPECT_EQ(m.mobility[fast.index()], 4);  // can start as late as cycle 4
  EXPECT_EQ(m.alap[fast.index()], 4);
  EXPECT_TRUE(m.is_critical(slow));
  EXPECT_FALSE(m.is_critical(fast));
}

TEST(Mobility, Fig2CriticalPathThroughV1V2V3) {
  Fig2Graph f;
  const auto m = compute_mobility(f.g);
  EXPECT_EQ(m.schedule_length, 8);  // start of v4
  EXPECT_TRUE(m.is_critical(f.v1));
  EXPECT_TRUE(m.is_critical(f.v2));
  EXPECT_TRUE(m.is_critical(f.v3));
  EXPECT_TRUE(m.is_critical(f.v4));
  // The anchor path v0 -> a -> v3 is shorter (0 vs 3): a has slack 3.
  EXPECT_EQ(m.mobility[f.a.index()], 3);
}

class MobilityInvariants : public ::testing::TestWithParam<unsigned> {};

TEST_P(MobilityInvariants, AsapAtMostAlapAndBoundsRespected) {
  std::mt19937 rng(GetParam());
  int checked = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const auto g = relsched::testing::random_constraint_graph(rng, {});
    if (!g.validate().empty()) continue;
    const auto m = compute_mobility(g);
    ++checked;
    for (int vi = 0; vi < g.vertex_count(); ++vi) {
      const std::size_t i = static_cast<std::size_t>(vi);
      EXPECT_LE(m.asap[i], m.alap[i]);
      EXPECT_GE(m.mobility[i], 0);
      EXPECT_LE(m.alap[i], m.schedule_length);
    }
    // Source and sink are always critical.
    EXPECT_EQ(m.mobility[g.source().index()], 0);
    EXPECT_EQ(m.mobility[g.sink().index()], 0);
    // Every forward edge respects ALAP ordering too.
    for (const auto& e : g.edges()) {
      if (!cg::is_forward(e.kind)) continue;
      EXPECT_LE(m.alap[e.from.index()] + g.weight(e.id).value,
                m.alap[e.to.index()]);
    }
  }
  EXPECT_GT(checked, 10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MobilityInvariants,
                         ::testing::Values(3u, 7u, 19u, 37u));

}  // namespace
}  // namespace relsched::sched

// Unit and golden tests for the static design analyzer (src/lint):
// rule-by-rule verdicts on hand-built graphs, unsat-core extraction
// with independent witness replay, strip_redundant schedule identity,
// renderers, exit codes, the synthesis-pipeline integration, and the
// incremental re-lint path. The paper-suite golden cases pin the
// analyzer's output on the designs the paper evaluates.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "designs/designs.hpp"
#include "driver/synthesis.hpp"
#include "engine/session.hpp"
#include "lint/incremental.hpp"
#include "lint/lint.hpp"
#include "sched/scheduler.hpp"
#include "testutil.hpp"
#include "wellposed/wellposed.hpp"

namespace relsched {
namespace {

using testing::Fig2Graph;
using testing::Fig3aGraph;

std::set<std::string> rule_ids(const lint::Report& report) {
  std::set<std::string> ids;
  for (const lint::Finding& f : report.findings) ids.insert(lint::rule_id(f.rule));
  return ids;
}

// ---- Rule catalog ---------------------------------------------------------

TEST(Lint, CleanChainHasNoFindings) {
  cg::ConstraintGraph g("chain");
  const VertexId v0 = g.add_vertex("v0", cg::Delay::bounded(0));
  const VertexId v1 = g.add_vertex("v1", cg::Delay::bounded(2));
  const VertexId v2 = g.add_vertex("v2", cg::Delay::bounded(1));
  g.add_sequencing_edge(v0, v1);
  g.add_sequencing_edge(v1, v2);
  g.add_max_constraint(v1, v2, 2);  // separation is exactly 2: binding
  const lint::Report report = lint::analyze(g);
  EXPECT_TRUE(report.clean()) << lint::render_text(report, g);
}

TEST(Lint, Fig2ReportsTheRedundantMinConstraint) {
  // The Fig 2 min constraint v0 -> v3 >= 3 is implied by the sequencing
  // path v0 -> v1 -> v2 -> v3 (weight 0 + 2 + 1 = 3).
  const Fig2Graph fig;
  const lint::Report report = lint::analyze(fig.g);
  ASSERT_EQ(report.findings.size(), 1u) << lint::render_text(report, fig.g);
  const lint::Finding& f = report.findings.front();
  EXPECT_EQ(f.rule, lint::Rule::kRedundantMinConstraint);
  EXPECT_EQ(f.severity, lint::Severity::kWarning);
  EXPECT_NE(f.message.find("min v0 -> v3 >= 3"), std::string::npos);
}

TEST(Lint, InvalidGraphShortCircuits) {
  cg::ConstraintGraph g("invalid");
  g.add_vertex("v0", cg::Delay::bounded(0));
  g.add_vertex("v1", cg::Delay::bounded(1));  // disconnected: not polar
  const lint::Report report = lint::analyze(g);
  ASSERT_FALSE(report.clean());
  for (const lint::Finding& f : report.findings) {
    EXPECT_EQ(f.rule, lint::Rule::kInvalidGraph);
  }
  EXPECT_EQ(report.max_severity(), lint::Severity::kError);
}

TEST(Lint, IllPosedConstraintNamesTheCounterexampleAnchor) {
  const Fig3aGraph fig;  // anchor on the path inside the max constraint
  const lint::Report report = lint::analyze(fig.g);
  ASSERT_EQ(report.count(lint::Rule::kIllPosedConstraint), 1);
  const lint::Finding& f = report.findings.front();
  EXPECT_NE(f.message.find("'a'"), std::string::npos);
  ASSERT_EQ(f.vertices.size(), 1u);
  EXPECT_EQ(f.vertices.front(), fig.a);
  // The containment witness must replay against the graph.
  EXPECT_FALSE(f.diag.ok());
  EXPECT_EQ(certify::verify_witness(fig.g, f.diag), std::nullopt);
}

TEST(Lint, NeverBindingMaxIsReportedWithItsSeparationBound) {
  Fig2Graph fig;
  // Loosen Fig 2's max v1 -> v2 from 2 to 3: the separation of v1 and
  // v2 is exactly delta(v1) = 2 for every profile, so u = 3 can never
  // be tight (u = 2 can, and must stay silent -- see CleanChain above).
  fig.g.set_constraint_bound(EdgeId(7), 3);
  const lint::Report report = lint::analyze(fig.g);
  EXPECT_EQ(report.count(lint::Rule::kNeverBindingMax), 1);
  bool found = false;
  for (const lint::Finding& f : report.findings) {
    if (f.rule != lint::Rule::kNeverBindingMax) continue;
    found = true;
    EXPECT_EQ(f.severity, lint::Severity::kInfo);
    EXPECT_NE(f.message.find("at most 2 < 3"), std::string::npos);
  }
  EXPECT_TRUE(found);
}

TEST(Lint, DeadAnchorBehindAnotherAnchor) {
  // a's only path to the sink runs through anchor b, so no *defining*
  // path from a reaches the sink: a never appears in the sink's offset
  // set and its completion never directly delays the design's.
  cg::ConstraintGraph g("dead");
  const VertexId v0 = g.add_vertex("v0", cg::Delay::bounded(0));
  const VertexId a = g.add_vertex("a", cg::Delay::unbounded());
  const VertexId b = g.add_vertex("b", cg::Delay::unbounded());
  const VertexId sink = g.add_vertex("vn", cg::Delay::bounded(0));
  g.add_sequencing_edge(v0, a);
  g.add_sequencing_edge(a, b);
  g.add_sequencing_edge(b, sink);
  const lint::Report report = lint::analyze(g);
  ASSERT_EQ(report.count(lint::Rule::kDeadAnchor), 1);
  const lint::Finding& f = report.findings.front();
  ASSERT_EQ(f.vertices.size(), 1u);
  EXPECT_EQ(f.vertices.front(), a);
  EXPECT_NE(f.message.find("'a'"), std::string::npos);
}

TEST(Lint, OptionsDisableIndividualRules) {
  const Fig2Graph fig;
  lint::Options options;
  options.check_redundant = false;
  const lint::Report report = lint::analyze(fig.g, options);
  EXPECT_EQ(report.count(lint::Rule::kRedundantMinConstraint), 0);
}

// ---- Unsat cores ----------------------------------------------------------

cg::ConstraintGraph single_conflict_graph() {
  // min v1 -> v2 >= 4 against max v1 -> v2 <= 2: a one-edge core. The
  // loose max v0 -> v3 <= 100 must not appear in it.
  cg::ConstraintGraph g("conflict1");
  const VertexId v0 = g.add_vertex("v0", cg::Delay::bounded(0));
  const VertexId v1 = g.add_vertex("v1", cg::Delay::bounded(2));
  const VertexId v2 = g.add_vertex("v2", cg::Delay::bounded(3));
  const VertexId v3 = g.add_vertex("v3", cg::Delay::bounded(0));
  g.add_sequencing_edge(v0, v1);
  g.add_sequencing_edge(v1, v2);
  g.add_sequencing_edge(v2, v3);
  g.add_min_constraint(v1, v2, 4);
  g.add_max_constraint(v1, v2, 2);
  g.add_max_constraint(v0, v3, 100);
  return g;
}

TEST(LintUnsatCore, SingleEdgeCoreIsMinimalAndVerified) {
  const cg::ConstraintGraph g = single_conflict_graph();
  ASSERT_FALSE(wellposed::is_feasible(g));
  const lint::UnsatCore core = lint::unsat_core(g);
  ASSERT_EQ(core.core.size(), 1u);
  EXPECT_TRUE(core.minimal);
  EXPECT_TRUE(core.verified()) << core.verification_error;
  // The core edge is the tight max v1 -> v2 (stored backward v2 -> v1).
  const cg::Edge& e = g.edge(core.core.front());
  EXPECT_EQ(e.kind, cg::EdgeKind::kMaxConstraint);
  EXPECT_EQ(-e.fixed_weight, 2);
  // Relaxing the core edge restores feasibility.
  cg::ConstraintGraph relaxed = g;
  relaxed.remove_constraint(core.core.front());
  EXPECT_TRUE(wellposed::is_feasible(relaxed));
}

TEST(LintUnsatCore, TwoEdgeCoreNeedsBothConstraints) {
  // The positive cycle v1 ->(min 3) v3 ->(-1) v2 ->(-1) v1 crosses two
  // backward edges; removing either one breaks it.
  cg::ConstraintGraph g("conflict2");
  const VertexId v0 = g.add_vertex("v0", cg::Delay::bounded(0));
  const VertexId v1 = g.add_vertex("v1", cg::Delay::bounded(1));
  const VertexId v2 = g.add_vertex("v2", cg::Delay::bounded(1));
  const VertexId v3 = g.add_vertex("v3", cg::Delay::bounded(0));
  g.add_sequencing_edge(v0, v1);
  g.add_sequencing_edge(v1, v2);
  g.add_sequencing_edge(v2, v3);
  g.add_min_constraint(v1, v3, 3);
  g.add_max_constraint(v1, v2, 1);
  g.add_max_constraint(v2, v3, 1);
  ASSERT_FALSE(wellposed::is_feasible(g));
  const lint::UnsatCore core = lint::unsat_core(g);
  ASSERT_EQ(core.core.size(), 2u);
  EXPECT_TRUE(core.minimal);
  EXPECT_TRUE(core.verified()) << core.verification_error;
  for (const EdgeId e : core.core) {
    cg::ConstraintGraph relaxed = g;
    relaxed.remove_constraint(e);
    EXPECT_TRUE(wellposed::is_feasible(relaxed));
  }
  // The reduced core graph replays the infeasibility witness.
  const cg::ConstraintGraph reduced = lint::core_graph(g, core.core);
  EXPECT_FALSE(wellposed::is_feasible(reduced));
  EXPECT_EQ(certify::verify_witness(reduced, core.witness), std::nullopt);
}

TEST(LintUnsatCore, FeasibleGraphYieldsEmptyUnverifiedCore) {
  const Fig2Graph fig;
  const lint::UnsatCore core = lint::unsat_core(fig.g);
  EXPECT_TRUE(core.core.empty());
  EXPECT_FALSE(core.verified());
}

TEST(LintUnsatCore, AnalyzeSurfacesTheCoreFinding) {
  const cg::ConstraintGraph g = single_conflict_graph();
  const lint::Report report = lint::analyze(g);
  ASSERT_EQ(report.findings.size(), 1u);
  const lint::Finding& f = report.findings.front();
  EXPECT_EQ(f.rule, lint::Rule::kUnsatCore);
  EXPECT_NE(f.message.find("max v1 -> v2 <= 2"), std::string::npos);
  EXPECT_EQ(f.message.find("FAILED"), std::string::npos);
  EXPECT_EQ(f.edges.size(), 1u);
  EXPECT_FALSE(f.diag.ok());  // positive-cycle witness for the full graph
}

// ---- strip_redundant ------------------------------------------------------

TEST(LintStrip, Fig2ScheduleIsBitIdenticalAfterStripping) {
  const Fig2Graph fig;
  const auto before = sched::schedule(fig.g);
  ASSERT_TRUE(before.ok());

  cg::ConstraintGraph stripped = fig.g;
  const auto removed = lint::strip_redundant(stripped);
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed.front().kind, cg::EdgeKind::kMinConstraint);
  EXPECT_EQ(removed.front().bound, 3);
  EXPECT_TRUE(stripped.validate().empty());

  const auto after = sched::schedule(stripped);
  ASSERT_TRUE(after.ok());
  for (const cg::Vertex& v : fig.g.vertices()) {
    EXPECT_EQ(before.schedule.offsets(v.id), after.schedule.offsets(v.id))
        << "offsets of " << v.name << " changed";
  }
}

TEST(LintStrip, MutuallyImpliedDuplicatesLoseExactlyOne) {
  // Two identical min constraints imply each other; analyze() flags
  // both, but the sequential strip must keep one (the constraint is NOT
  // implied by the remaining graph once its twin is gone).
  cg::ConstraintGraph g("twins");
  const VertexId v0 = g.add_vertex("v0", cg::Delay::bounded(0));
  const VertexId v1 = g.add_vertex("v1", cg::Delay::bounded(1));
  const VertexId v2 = g.add_vertex("v2", cg::Delay::bounded(0));
  g.add_sequencing_edge(v0, v1);
  g.add_sequencing_edge(v1, v2);
  g.add_min_constraint(v0, v1, 5);
  g.add_min_constraint(v0, v1, 5);
  const lint::Report report = lint::analyze(g);
  EXPECT_EQ(report.count(lint::Rule::kRedundantMinConstraint), 2);
  const auto removed = lint::strip_redundant(g);
  EXPECT_EQ(removed.size(), 1u);
  int remaining = 0;
  for (const cg::Edge& e : g.edges()) {
    remaining += e.kind == cg::EdgeKind::kMinConstraint ? 1 : 0;
  }
  EXPECT_EQ(remaining, 1);
}

TEST(LintStrip, NoOpOnInfeasibleGraphs) {
  cg::ConstraintGraph g = single_conflict_graph();
  const int edges_before = g.edge_count();
  EXPECT_TRUE(lint::strip_redundant(g).empty());
  EXPECT_EQ(g.edge_count(), edges_before);
}

// ---- Renderers / exit codes -----------------------------------------------

TEST(LintRender, TextAndJson) {
  const Fig2Graph fig;
  const lint::Report report = lint::analyze(fig.g);
  const std::string text = lint::render_text(report, fig.g);
  EXPECT_NE(text.find("redundant-min-constraint"), std::string::npos);
  EXPECT_NE(text.find("suggestion:"), std::string::npos);
  const std::string json = lint::to_json(report, fig.g);
  EXPECT_NE(json.find("\"graph\": \"fig2\""), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"redundant-min-constraint\""),
            std::string::npos);
  EXPECT_NE(json.find("\"warnings\": 1"), std::string::npos);
  // Max edges render in user orientation even though stored backward.
  const lint::Report bad = lint::analyze(single_conflict_graph());
  const std::string bad_json =
      lint::to_json(bad, single_conflict_graph());
  EXPECT_NE(bad_json.find("\"from\": \"v1\", \"to\": \"v2\", \"bound\": 2"),
            std::string::npos);
}

TEST(LintExitCodes, SeverityGate) {
  const Fig2Graph fig;
  const lint::Report warn = lint::analyze(fig.g);  // one warning
  EXPECT_EQ(lint::exit_code(warn, lint::FailOn::kError), 0);
  EXPECT_EQ(lint::exit_code(warn, lint::FailOn::kWarning), 4);
  EXPECT_EQ(lint::exit_code(warn, lint::FailOn::kInfo), 4);
  EXPECT_EQ(lint::exit_code(warn, lint::FailOn::kNever), 0);
  const lint::Report err = lint::analyze(single_conflict_graph());
  EXPECT_EQ(lint::exit_code(err, lint::FailOn::kError), 3);
  const lint::Report clean;
  EXPECT_EQ(lint::exit_code(clean, lint::FailOn::kInfo), 0);
}

// ---- Synthesis-pipeline integration ---------------------------------------

TEST(LintDriver, SynthesisPopulatesLintReports) {
  seq::Design design = designs::build("gcd");
  driver::SynthesisOptions options;
  options.lint = true;
  const auto result = driver::synthesize(design, options);
  ASSERT_TRUE(result.ok()) << result.message;
  ASSERT_FALSE(result.graphs.empty());
  for (const auto& gs : result.graphs) {
    // Advisory only: reports exist and carry no errors on a design that
    // synthesized cleanly.
    EXPECT_EQ(gs.lint_report.count(lint::Severity::kError), 0)
        << lint::render_text(gs.lint_report, gs.constraint_graph);
  }
}

TEST(LintDriver, LintOffByDefault) {
  seq::Design design = designs::build("gcd");
  const auto result = driver::synthesize(design);
  ASSERT_TRUE(result.ok());
  for (const auto& gs : result.graphs) {
    EXPECT_TRUE(gs.lint_report.clean());
  }
}

// ---- Paper-suite golden cases ---------------------------------------------

TEST(LintGolden, PaperSuiteHasNoErrorFindings) {
  // Every design the paper evaluates must lint without errors; the
  // only findings on record are advisory (the pulse detector's
  // internal-only synchronization anchor).
  for (const auto& bd : designs::benchmark_suite()) {
    seq::Design design = designs::build(bd.name);
    driver::SynthesisOptions options;
    options.lint = true;
    const auto result = driver::synthesize(design, options);
    ASSERT_TRUE(result.ok()) << bd.name << ": " << result.message;
    for (const auto& gs : result.graphs) {
      EXPECT_EQ(gs.lint_report.count(lint::Severity::kError), 0)
          << bd.name << ": "
          << lint::render_text(gs.lint_report, gs.constraint_graph);
      EXPECT_EQ(gs.lint_report.count(lint::Rule::kRedundantMaxConstraint), 0)
          << bd.name;
    }
  }
}

TEST(LintGolden, SeededRedundancyIsDetectedInSuiteGraphs) {
  // Duplicate an existing min/sequencing-implied constraint in a real
  // synthesized graph: exactly that rule must fire, nothing else new.
  seq::Design design = designs::build("traffic");
  driver::SynthesisOptions options;
  options.lint = true;
  const auto result = driver::synthesize(design, options);
  ASSERT_TRUE(result.ok());
  cg::ConstraintGraph g = result.graphs.front().constraint_graph;
  const auto baseline = rule_ids(lint::analyze(g));
  // Seed: a min constraint parallel to an existing sequencing edge,
  // with a bound no larger than that edge's fixed weight floor (0).
  const cg::Edge* seq_edge = nullptr;
  for (const cg::Edge& e : g.edges()) {
    if (e.kind == cg::EdgeKind::kSequencing) {
      seq_edge = &e;
      break;
    }
  }
  ASSERT_NE(seq_edge, nullptr);
  g.add_min_constraint(seq_edge->from, seq_edge->to, 0);
  const lint::Report seeded = lint::analyze(g);
  EXPECT_GE(seeded.count(lint::Rule::kRedundantMinConstraint), 1);
  auto ids = rule_ids(seeded);
  ids.erase("redundant-min-constraint");
  EXPECT_EQ(ids, baseline);  // no collateral findings
}

// ---- Incremental re-lint --------------------------------------------------

TEST(LintIncremental, WarmEditsTakeTheConePath) {
  Fig2Graph fig;
  engine::SynthesisSession session(fig.g);
  lint::IncrementalLinter linter;

  const lint::Report& first = linter.relint(session);
  EXPECT_EQ(linter.full_lints(), 1);
  EXPECT_EQ(first.count(lint::Rule::kRedundantMinConstraint), 1);

  // No edits: the cached report is returned as-is.
  linter.relint(session);
  EXPECT_EQ(linter.full_lints(), 1);
  EXPECT_EQ(linter.cone_lints(), 0);

  // A constraint-only edit resolves warm; the relint must be cone-scoped
  // and agree with a fresh full analyze of the edited graph.
  session.set_constraint_bound(EdgeId(7), 3);  // max v1 -> v2: 2 -> 3
  const lint::Report& second = linter.relint(session);
  EXPECT_TRUE(session.last_resolve_was_warm());
  EXPECT_EQ(linter.cone_lints(), 1);
  const lint::Report fresh = lint::analyze(session.graph());
  EXPECT_EQ(lint::render_text(second, session.graph()),
            lint::render_text(fresh, session.graph()));
  EXPECT_EQ(second.count(lint::Rule::kNeverBindingMax), 1);
}

TEST(LintIncremental, ColdResolveFallsBackToFullLint) {
  Fig2Graph fig;
  engine::SynthesisSession session(fig.g);
  lint::IncrementalLinter linter;
  linter.relint(session);
  // Structural edit (new vertex + sequencing edge) forces a cold
  // resolve; the linter must notice and run a full pass.
  cg::ConstraintGraph& g = session.mutable_graph();
  const VertexId extra = g.add_vertex("extra", cg::Delay::bounded(1));
  g.add_sequencing_edge(fig.v3, extra);
  g.add_sequencing_edge(extra, fig.v4);
  const lint::Report& report = linter.relint(session);
  EXPECT_EQ(linter.full_lints(), 2);
  EXPECT_EQ(linter.cone_lints(), 0);
  const lint::Report fresh = lint::analyze(session.graph());
  EXPECT_EQ(lint::render_text(report, session.graph()),
            lint::render_text(fresh, session.graph()));
}

}  // namespace
}  // namespace relsched

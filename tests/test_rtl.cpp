#include "rtl/datapath.hpp"

#include <gtest/gtest.h>

#include "designs/designs.hpp"
#include "driver/synthesis.hpp"
#include "hdl/lower.hpp"

namespace relsched::rtl {
namespace {

struct Synthesized {
  seq::Design design;
  driver::SynthesisResult result;

  explicit Synthesized(std::string_view source)
      : design(hdl::compile_single(source)) {
    result = driver::synthesize(design);
    EXPECT_TRUE(result.ok()) << result.message;
  }
};

TEST(Datapath, DeclaresPortsAndVariableRegisters) {
  Synthesized s(R"(
    process dp (a, b, o) {
      in port a[8], b[8];
      out port o[8];
      boolean x[8];
      x = read(a) + read(b);
      write o = x;
    })");
  const auto dp = generate_datapath(s.design, s.result, "dp");
  EXPECT_NE(dp.verilog.find("input wire [7:0] p_a"), std::string::npos);
  EXPECT_NE(dp.verilog.find("input wire [7:0] p_b"), std::string::npos);
  EXPECT_NE(dp.verilog.find("output reg [7:0] p_o"), std::string::npos);
  EXPECT_NE(dp.verilog.find("reg [7:0] v_x"), std::string::npos);
  EXPECT_NE(dp.verilog.find("endmodule"), std::string::npos);
  // Register bits: v_x (8) + p_o (8) + result regs.
  EXPECT_GE(dp.stats.registers, 16);
}

TEST(Datapath, SharedFunctionalUnitGetsMuxAndSelect) {
  // Four adds on one adder instance: one shared FU with steering.
  Synthesized s(R"(
    process share (o) {
      out port o[8];
      boolean a[8], b[8], c[8], d[8];
      a = 1 + 2;
      b = 3 + 4;
      c = 5 + 6;
      d = 7 + 8;
      write o = a;
    })");
  // Re-synthesize with a single adder.
  seq::Design design = hdl::compile_single(R"(
    process share (o) {
      out port o[8];
      boolean a[8], b[8], c[8], d[8];
      a = 1 + 2;
      b = 3 + 4;
      c = 5 + 6;
      d = 7 + 8;
      write o = a;
    })");
  driver::SynthesisOptions options;
  options.binding.instance_limits["adder"] = 1;
  const auto result = driver::synthesize(design, options);
  ASSERT_TRUE(result.ok());
  const auto dp = generate_datapath(design, result, "share");
  // Exactly one shared adder FU wire with a 4-way select chain.
  EXPECT_NE(dp.verilog.find("fu_root_m0_i0_y"), std::string::npos);
  EXPECT_EQ(dp.stats.functional_units, 1);
  EXPECT_GE(dp.stats.mux_inputs, 8);  // 4 ops x 2 operands
  // All four result registers capture from the shared unit.
  std::size_t captures = 0, pos = 0;
  while ((pos = dp.verilog.find("<= fu_root_m0_i0_y", pos)) !=
         std::string::npos) {
    ++captures;
    ++pos;
  }
  EXPECT_EQ(captures, 4u);
}

TEST(Datapath, DedicatedUnitsInlineTheirExpression) {
  Synthesized s(R"(
    process solo (o) {
      out port o[16];
      boolean x[16];
      x = 5 * 7;
      write o = x;
    })");
  const auto dp = generate_datapath(s.design, s.result, "solo");
  EXPECT_NE(dp.verilog.find("(5 * 7)"), std::string::npos);
}

TEST(Datapath, EnablesAreModuleInputs) {
  Synthesized s(R"(
    process en (o) {
      out port o[8];
      boolean x[8];
      x = 1;
      write o = x;
    })");
  const auto dp = generate_datapath(s.design, s.result, "en");
  // The assign and the write both get enable inputs guarding them.
  EXPECT_NE(dp.verilog.find("input wire en_root_x_"), std::string::npos);
  EXPECT_NE(dp.verilog.find("input wire en_root_write_o_"), std::string::npos);
  EXPECT_NE(dp.verilog.find("if (en_root_write_o_"), std::string::npos);
}

TEST(Datapath, WholeSuiteEmitsWithoutErrors) {
  for (const auto& d : designs::benchmark_suite()) {
    seq::Design design = designs::build(d.name);
    const auto result = driver::synthesize(design);
    ASSERT_TRUE(result.ok()) << d.name;
    const auto dp = generate_datapath(design, result, d.name);
    EXPECT_NE(dp.verilog.find("endmodule"), std::string::npos) << d.name;
    EXPECT_GT(dp.stats.registers, 0) << d.name;
    // Balanced begin/end of the always block.
    EXPECT_NE(dp.verilog.find("always @(posedge clk) begin"),
              std::string::npos)
        << d.name;
  }
}

}  // namespace
}  // namespace relsched::rtl

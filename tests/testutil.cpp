#include "testutil.hpp"

#include "base/strings.hpp"
#include "graph/algorithms.hpp"

namespace relsched::testing {

cg::ConstraintGraph random_constraint_graph(std::mt19937& rng,
                                            const RandomGraphParams& params) {
  const int n = params.vertex_count;
  cg::ConstraintGraph g("random");
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_int_distribution<int> delay_dist(0, params.max_delay);

  std::vector<VertexId> vertices;
  vertices.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    cg::Delay delay = cg::Delay::bounded(delay_dist(rng));
    if (i > 0 && i + 1 < n && unit(rng) < params.unbounded_fraction) {
      delay = cg::Delay::unbounded();
    }
    vertices.push_back(g.add_vertex(cat("v", i), delay));
  }

  // Spine: every non-source vertex hangs off an earlier one, keeping Gf
  // acyclic by construction (creation order is a topological order).
  for (int i = 1; i < n; ++i) {
    std::uniform_int_distribution<int> pred(0, i - 1);
    g.add_sequencing_edge(vertices[static_cast<std::size_t>(pred(rng))],
                          vertices[static_cast<std::size_t>(i)]);
  }
  // Extra forward edges.
  const int extras =
      static_cast<int>(params.extra_edge_fraction * static_cast<double>(n));
  for (int k = 0; k < extras && n > 2; ++k) {
    std::uniform_int_distribution<int> to_dist(1, n - 1);
    const int to = to_dist(rng);
    std::uniform_int_distribution<int> from_dist(0, to - 1);
    const int from = from_dist(rng);
    g.add_sequencing_edge(vertices[static_cast<std::size_t>(from)],
                          vertices[static_cast<std::size_t>(to)]);
  }
  // Polarity: connect sinkless vertices (other than the sink) to the sink.
  for (int i = 0; i + 1 < n; ++i) {
    const VertexId v = vertices[static_cast<std::size_t>(i)];
    bool has_out = false;
    for (EdgeId e : g.out_edges(v)) {
      if (cg::is_forward(g.edge(e).kind)) {
        has_out = true;
        break;
      }
    }
    if (!has_out) g.add_sequencing_edge(v, vertices[static_cast<std::size_t>(n - 1)]);
  }

  // Max constraints with slack above the current longest-path distance,
  // so the constraint itself starts out feasible.
  const graph::Digraph full = g.project_full();
  int added = 0;
  for (int attempt = 0; attempt < params.max_constraints * 8; ++attempt) {
    if (added >= params.max_constraints) break;
    std::uniform_int_distribution<int> to_dist(1, n - 1);
    const int to = to_dist(rng);
    std::uniform_int_distribution<int> from_dist(0, to - 1);
    const int from = from_dist(rng);
    const auto dist = graph::longest_paths_from(full, from);
    if (dist.positive_cycle) break;
    if (dist.dist[static_cast<std::size_t>(to)] == graph::kNegInf) continue;
    std::uniform_int_distribution<int> slack(0, params.max_constraint_slack);
    g.add_max_constraint(
        vertices[static_cast<std::size_t>(from)],
        vertices[static_cast<std::size_t>(to)],
        static_cast<int>(dist.dist[static_cast<std::size_t>(to)]) + slack(rng));
    ++added;
  }
  return g;
}

}  // namespace relsched::testing

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>

#include "base/error.hpp"
#include "base/strings.hpp"
#include "base/table.hpp"
#include "base/watchdog.hpp"

namespace relsched {
namespace {

TEST(Strings, Join) {
  EXPECT_EQ(join(std::vector<std::string>{}, ","), "");
  EXPECT_EQ(join(std::vector<std::string>{"a"}, ","), "a");
  EXPECT_EQ(join(std::vector<std::string>{"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join(std::vector<int>{1, 2, 3}, "-"), "1-2-3");
}

TEST(Strings, Cat) {
  EXPECT_EQ(cat("x", 1, "y", 2.5), "x1y2.5");
  EXPECT_EQ(cat(), "");
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcd", 2), "abcd");  // never truncates
  EXPECT_EQ(pad_right("abcd", 2), "abcd");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("hello", "he"));
  EXPECT_TRUE(starts_with("hello", ""));
  EXPECT_FALSE(starts_with("hello", "lo"));
  EXPECT_FALSE(starts_with("he", "hello"));
}

TEST(TextTable, AlignsColumnsAndRules) {
  TextTable table;
  table.set_header({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_rule();
  table.add_row({"b", "10000"});
  std::ostringstream os;
  table.print(os);
  const std::string text = os.str();
  // Header present, first column left-aligned, second right-aligned.
  EXPECT_NE(text.find("| name  |"), std::string::npos);
  EXPECT_NE(text.find("| alpha |     1 |"), std::string::npos);
  EXPECT_NE(text.find("| b     | 10000 |"), std::string::npos);
  // Four rule lines: top, under header, inserted, bottom.
  std::size_t rules = 0;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (!line.empty() && line[0] == '+') ++rules;
  }
  EXPECT_EQ(rules, 4u);
}

TEST(TextTable, ShortRowsPadWithEmptyCells) {
  TextTable table;
  table.set_header({"a", "b", "c"});
  table.add_row({"x"});
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("| x | "), std::string::npos);
}

TEST(Check, ThrowsApiErrorWithContext) {
  try {
    RELSCHED_CHECK(1 == 2, "the message");
    FAIL() << "expected throw";
  } catch (const ApiError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("the message"), std::string::npos);
    EXPECT_NE(what.find("test_base.cpp"), std::string::npos);
  }
}

TEST(Watchdog, InertByDefault) {
  base::CancelToken token;  // default: can never be cancelled
  token.request_cancel();
  EXPECT_FALSE(token.cancelled());

  base::Watchdog dog;
  for (int i = 0; i < 10000; ++i) EXPECT_FALSE(dog.charge());
  EXPECT_FALSE(dog.stopped());
}

TEST(Watchdog, CancellationHonouredWithinOneQuantum) {
  base::CancelToken token = base::CancelToken::make();
  base::Watchdog dog(token, base::Watchdog::kNoDeadline, 0);
  for (int i = 0; i < 100; ++i) ASSERT_FALSE(dog.charge());
  token.request_cancel();
  // The contract: a stop request is honoured within kPollQuantum more
  // charged steps, never later.
  std::uint64_t extra = 0;
  while (!dog.charge()) {
    ASSERT_LE(++extra, base::Watchdog::kPollQuantum);
  }
  EXPECT_TRUE(dog.stopped());
  EXPECT_EQ(dog.why(), base::Watchdog::Stop::kCancelled);
  EXPECT_STREQ(dog.reason(), "cancellation requested");
  EXPECT_TRUE(dog.charge());  // sticky once tripped
}

TEST(Watchdog, ExpiredDeadlineTripsAtConstruction) {
  // A pre-existing stop condition must not wait out the first poll
  // quantum: a tiny computation that never charges kPollQuantum steps
  // still has to honour --deadline-ms 0.
  const auto past =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  base::Watchdog dog(base::CancelToken{}, past, 0);
  EXPECT_TRUE(dog.stopped());
  EXPECT_EQ(dog.why(), base::Watchdog::Stop::kDeadline);
  EXPECT_STREQ(dog.reason(), "deadline exceeded");

  base::CancelToken cancelled = base::CancelToken::make();
  cancelled.request_cancel();
  base::Watchdog dog2(cancelled, base::Watchdog::kNoDeadline, 0);
  EXPECT_TRUE(dog2.stopped());
  EXPECT_EQ(dog2.why(), base::Watchdog::Stop::kCancelled);
}

TEST(Watchdog, RemainingReportsShrinkingBudget) {
  // No deadline: the budget is unbounded.
  base::Watchdog unbounded(base::CancelToken{}, base::Watchdog::kNoDeadline,
                           0);
  EXPECT_EQ(unbounded.remaining(),
            base::Watchdog::Clock::duration::max());

  // A live deadline: remaining is positive and never exceeds the
  // original budget (it only shrinks).
  const auto budget = std::chrono::seconds(60);
  base::Watchdog live(base::CancelToken{},
                      base::Watchdog::Clock::now() + budget, 0);
  const auto left = live.remaining();
  EXPECT_GT(left, base::Watchdog::Clock::duration::zero());
  EXPECT_LE(left, budget);

  // A passed deadline clamps to zero rather than going negative.
  base::Watchdog expired(
      base::CancelToken{},
      base::Watchdog::Clock::now() - std::chrono::milliseconds(1), 0);
  EXPECT_EQ(expired.remaining(), base::Watchdog::Clock::duration::zero());

  // Any stop condition -- not just the deadline -- zeroes the budget:
  // nested work handed a stopped watchdog's remainder must not run.
  base::CancelToken cancelled = base::CancelToken::make();
  cancelled.request_cancel();
  base::Watchdog stopped(cancelled, base::Watchdog::Clock::now() + budget,
                         0);
  EXPECT_EQ(stopped.remaining(), base::Watchdog::Clock::duration::zero());
}

TEST(Watchdog, StepLimitIsExact) {
  base::Watchdog dog(base::CancelToken{}, base::Watchdog::kNoDeadline, 5);
  EXPECT_FALSE(dog.charge(5));  // exactly at the limit: still fine
  EXPECT_TRUE(dog.charge());    // one past: tripped
  EXPECT_EQ(dog.why(), base::Watchdog::Stop::kStepLimit);
  EXPECT_STREQ(dog.reason(), "iteration budget exhausted");
}

}  // namespace
}  // namespace relsched

#include <gtest/gtest.h>

#include <sstream>

#include "base/error.hpp"
#include "base/strings.hpp"
#include "base/table.hpp"

namespace relsched {
namespace {

TEST(Strings, Join) {
  EXPECT_EQ(join(std::vector<std::string>{}, ","), "");
  EXPECT_EQ(join(std::vector<std::string>{"a"}, ","), "a");
  EXPECT_EQ(join(std::vector<std::string>{"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join(std::vector<int>{1, 2, 3}, "-"), "1-2-3");
}

TEST(Strings, Cat) {
  EXPECT_EQ(cat("x", 1, "y", 2.5), "x1y2.5");
  EXPECT_EQ(cat(), "");
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcd", 2), "abcd");  // never truncates
  EXPECT_EQ(pad_right("abcd", 2), "abcd");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("hello", "he"));
  EXPECT_TRUE(starts_with("hello", ""));
  EXPECT_FALSE(starts_with("hello", "lo"));
  EXPECT_FALSE(starts_with("he", "hello"));
}

TEST(TextTable, AlignsColumnsAndRules) {
  TextTable table;
  table.set_header({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_rule();
  table.add_row({"b", "10000"});
  std::ostringstream os;
  table.print(os);
  const std::string text = os.str();
  // Header present, first column left-aligned, second right-aligned.
  EXPECT_NE(text.find("| name  |"), std::string::npos);
  EXPECT_NE(text.find("| alpha |     1 |"), std::string::npos);
  EXPECT_NE(text.find("| b     | 10000 |"), std::string::npos);
  // Four rule lines: top, under header, inserted, bottom.
  std::size_t rules = 0;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (!line.empty() && line[0] == '+') ++rules;
  }
  EXPECT_EQ(rules, 4u);
}

TEST(TextTable, ShortRowsPadWithEmptyCells) {
  TextTable table;
  table.set_header({"a", "b", "c"});
  table.add_row({"x"});
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("| x | "), std::string::npos);
}

TEST(Check, ThrowsApiErrorWithContext) {
  try {
    RELSCHED_CHECK(1 == 2, "the message");
    FAIL() << "expected throw";
  } catch (const ApiError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("the message"), std::string::npos);
    EXPECT_NE(what.find("test_base.cpp"), std::string::npos);
  }
}

}  // namespace
}  // namespace relsched

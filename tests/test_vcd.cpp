#include "sim/vcd.hpp"

#include <gtest/gtest.h>

#include "designs/designs.hpp"
#include "driver/synthesis.hpp"
#include "hdl/lower.hpp"

namespace relsched::sim {
namespace {

struct GcdRun {
  seq::Design design = designs::build("gcd");
  driver::SynthesisResult synthesis;
  Stimulus stim;
  SimResult run;

  GcdRun() {
    synthesis = driver::synthesize(design);
    EXPECT_TRUE(synthesis.ok());
    stim.set(design, "restart", 0, 1);
    stim.set(design, "restart", 3, 0);
    stim.set(design, "xin", 0, 12);
    stim.set(design, "yin", 0, 8);
    Simulator sim(design, synthesis, stim);
    run = sim.run();
  }
};

TEST(Vcd, HeaderDeclaresAllPorts) {
  GcdRun r;
  const std::string vcd = to_vcd(r.design, r.stim, r.run);
  EXPECT_NE(vcd.find("$timescale 1ns $end"), std::string::npos);
  EXPECT_NE(vcd.find("$scope module gcd $end"), std::string::npos);
  for (const auto& p : r.design.ports()) {
    EXPECT_NE(vcd.find(" " + p.name), std::string::npos) << p.name;
  }
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
}

TEST(Vcd, MultiBitPortsUseVectorSyntax) {
  GcdRun r;
  const std::string vcd = to_vcd(r.design, r.stim, r.run);
  // xin is 8 bits wide: declared with a range and dumped as b....
  EXPECT_NE(vcd.find("$var wire 8"), std::string::npos);
  EXPECT_NE(vcd.find("[7:0]"), std::string::npos);
  EXPECT_NE(vcd.find("b00001100 "), std::string::npos);  // xin = 12
}

TEST(Vcd, RecordsRestartFallAndResultChange) {
  GcdRun r;
  VcdOptions opts;
  opts.port_names = {"restart", "result"};
  const std::string vcd = to_vcd(r.design, r.stim, r.run, opts);
  // restart falls at cycle 3: a timestamped scalar change must appear.
  EXPECT_NE(vcd.find("#3"), std::string::npos);
  // result eventually becomes 4 = b00000100.
  EXPECT_NE(vcd.find("b00000100 "), std::string::npos);
}

TEST(Vcd, OnlyChangesAreDumped) {
  GcdRun r;
  VcdOptions opts;
  opts.port_names = {"xin"};  // constant for the whole run
  const std::string vcd = to_vcd(r.design, r.stim, r.run, opts);
  // One initial dump, then no further xin changes.
  std::size_t count = 0, pos = 0;
  while ((pos = vcd.find("b00001100", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 1u);
}

TEST(Vcd, UnknownPortIsRejected) {
  GcdRun r;
  VcdOptions opts;
  opts.port_names = {"nope"};
  EXPECT_THROW((void)to_vcd(r.design, r.stim, r.run, opts), ApiError);
}

TEST(Vcd, WindowedDump) {
  GcdRun r;
  VcdOptions opts;
  opts.from = 0;
  opts.to = 2;  // before restart falls: nothing changes
  opts.port_names = {"restart"};
  const std::string vcd = to_vcd(r.design, r.stim, r.run, opts);
  EXPECT_EQ(vcd.find("#3\n1"), std::string::npos);
}

}  // namespace
}  // namespace relsched::sim

// Shared helpers for relsched tests: canonical paper graphs and a
// deterministic random constraint-graph generator for property tests.
#pragma once

#include <random>
#include <vector>

#include "cg/constraint_graph.hpp"

namespace relsched::testing {

/// The paper's Fig. 2 graph (offsets tabulated in Table II).
///
///   v0 --d(v0)--> a --d(a)-----------> v3 --5--> v4
///   v0 --d(v0)--> v1 --2--> v2 --1--> v3
///   min constraint  v0 -> v3, l = 3
///   max constraint  v1 -> v2, u = 2  (backward edge v2 -> v1, weight -2)
///
/// Expected minimum offsets (Table II):
///   a: sigma_v0=0; v1: 0; v2: 2; v3: (3, 0); v4: (8, 5).
struct Fig2Graph {
  cg::ConstraintGraph g{"fig2"};
  VertexId v0, a, v1, v2, v3, v4;

  Fig2Graph() {
    v0 = g.add_vertex("v0", cg::Delay::bounded(0));
    a = g.add_vertex("a", cg::Delay::unbounded());
    v1 = g.add_vertex("v1", cg::Delay::bounded(2));
    v2 = g.add_vertex("v2", cg::Delay::bounded(1));
    v3 = g.add_vertex("v3", cg::Delay::bounded(5));
    v4 = g.add_vertex("v4", cg::Delay::bounded(1));
    g.add_sequencing_edge(v0, a);
    g.add_sequencing_edge(v0, v1);
    g.add_sequencing_edge(a, v3);
    g.add_sequencing_edge(v1, v2);
    g.add_sequencing_edge(v2, v3);
    g.add_sequencing_edge(v3, v4);
    g.add_min_constraint(v0, v3, 3);
    g.add_max_constraint(v1, v2, 2);
  }
};

/// Fig. 3(a): an unbounded anchor on the path inside a max constraint.
/// Ill-posed and *not* repairable by serialization.
struct Fig3aGraph {
  cg::ConstraintGraph g{"fig3a"};
  VertexId v0, vi, a, vj;

  Fig3aGraph() {
    v0 = g.add_vertex("v0", cg::Delay::bounded(0));
    vi = g.add_vertex("vi", cg::Delay::bounded(1));
    a = g.add_vertex("a", cg::Delay::unbounded());
    vj = g.add_vertex("vj", cg::Delay::bounded(1));
    g.add_sequencing_edge(v0, vi);
    g.add_sequencing_edge(vi, a);
    g.add_sequencing_edge(a, vj);
    g.add_max_constraint(vi, vj, 4);
  }
};

/// Fig. 3(b): two parallel anchors feeding the two ends of a max
/// constraint. Ill-posed, but repairable by serializing a2 before vi
/// (which yields Fig. 3(c)).
struct Fig3bGraph {
  cg::ConstraintGraph g{"fig3b"};
  VertexId v0, a1, a2, vi, vj, sink;

  Fig3bGraph() {
    v0 = g.add_vertex("v0", cg::Delay::bounded(0));
    a1 = g.add_vertex("a1", cg::Delay::unbounded());
    a2 = g.add_vertex("a2", cg::Delay::unbounded());
    vi = g.add_vertex("vi", cg::Delay::bounded(1));
    vj = g.add_vertex("vj", cg::Delay::bounded(1));
    sink = g.add_vertex("vn", cg::Delay::bounded(0));
    g.add_sequencing_edge(v0, a1);
    g.add_sequencing_edge(v0, a2);
    g.add_sequencing_edge(a1, vi);
    g.add_sequencing_edge(a2, vj);
    g.add_sequencing_edge(vi, sink);
    g.add_sequencing_edge(vj, sink);
    g.add_max_constraint(vi, vj, 4);
  }
};

/// Parameters for the random well-formed constraint-graph generator.
struct RandomGraphParams {
  int vertex_count = 12;          // including source and sink
  double unbounded_fraction = 0.2;
  int max_delay = 4;
  double extra_edge_fraction = 0.5;  // extra forward edges beyond the spine
  int max_constraints = 2;           // max-timing constraints to attempt
  int max_constraint_slack = 6;      // u = longest-path distance + slack
};

/// Generates a polar, forward-acyclic constraint graph. Max constraints
/// are added between comparable vertices with enough slack to keep the
/// graph feasible most of the time; well-posedness is *not* guaranteed
/// (callers exercise check/make_wellposed).
cg::ConstraintGraph random_constraint_graph(std::mt19937& rng,
                                            const RandomGraphParams& params);

}  // namespace relsched::testing

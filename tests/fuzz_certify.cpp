// Seeded fuzz harness for the certifying pipeline (deterministic:
// fixed seeds, bounded iterations -- safe for CI under sanitizers).
//
//   1. Breadth: >= 10k random graphs; every failing verdict carries a
//      replayable witness, every schedule the pipeline accepts passes
//      the independent certifier.
//   2. Differential: warm resolves and explorer candidates produce
//      bit-identical products to a cold recompute, with certification
//      enabled and zero certificate failures on clean runs.
//   3. Fault matrix: each injected fault class is either caught by the
//      certifier (cold fallback, counter bumped) or provably harmless
//      -- in both cases the final products are bit-identical to a cold
//      reference.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "base/strings.hpp"
#include "certify/certify.hpp"
#include "engine/session.hpp"
#include "explore/explorer.hpp"
#include "sched/scheduler.hpp"
#include "testutil.hpp"
#include "wellposed/wellposed.hpp"

namespace relsched {
namespace {

using relsched::testing::Fig2Graph;
using relsched::testing::random_constraint_graph;
using relsched::testing::RandomGraphParams;

bool schedules_equal(const sched::RelativeSchedule& a,
                     const sched::RelativeSchedule& b) {
  if (a.vertex_count() != b.vertex_count()) return false;
  for (int v = 0; v < a.vertex_count(); ++v) {
    if (!(a.offsets(VertexId(v)) == b.offsets(VertexId(v)))) return false;
  }
  return true;
}

bool analyses_equal(const cg::ConstraintGraph& g,
                    const anchors::AnchorAnalysis& a,
                    const anchors::AnchorAnalysis& b) {
  if (a.anchors() != b.anchors()) return false;
  for (VertexId anchor : a.anchors()) {
    for (int v = 0; v < g.vertex_count(); ++v) {
      if (a.length(anchor, VertexId(v)) != b.length(anchor, VertexId(v))) {
        return false;
      }
    }
  }
  return true;
}

/// Constraint edges whose bound set_constraint_bound may edit.
std::vector<EdgeId> constraint_edges(const cg::ConstraintGraph& g) {
  std::vector<EdgeId> out;
  for (const cg::Edge& e : g.edges()) {
    if (e.kind != cg::EdgeKind::kSequencing) out.push_back(e.id);
  }
  return out;
}

/// A warm-path-friendly (non-structural) random bound edit: loosen max
/// constraints / tighten them back within a small window.
int perturbed_bound(const cg::ConstraintGraph& g, EdgeId e, std::mt19937& rng) {
  const int bound = std::abs(g.edge(e).fixed_weight);
  const int delta = static_cast<int>(rng() % 3);  // 0..2
  return bound + delta;
}

TEST(FuzzCertify, TenThousandGraphsWitnessAndCertify) {
  std::mt19937 rng(0xC0FFEE);
  RandomGraphParams params;
  params.vertex_count = 10;
  params.max_constraints = 3;
  int witnessed = 0;
  int certified = 0;
  for (int iter = 0; iter < 10000; ++iter) {
    cg::ConstraintGraph g = random_constraint_graph(rng, params);
    const auto r = wellposed::check(g);
    if (r.status != wellposed::Status::kWellPosed) {
      ASSERT_TRUE(r.diag.has_witness())
          << "iter " << iter << ": verdict '"
          << wellposed::to_string(r.status) << "' without a witness";
      const auto reason = certify::verify_witness(g, r.diag);
      ASSERT_EQ(reason, std::nullopt) << "iter " << iter << ": " << *reason;
      ++witnessed;
      continue;
    }
    const auto analysis = anchors::AnchorAnalysis::compute(g);
    sched::ScheduleOptions sopts;
    sopts.prechecks = false;
    const auto result = sched::schedule(g, analysis, sopts);
    if (!result.ok()) continue;
    const certify::Diag diag =
        certify::check_products(g, analysis, result.schedule);
    ASSERT_EQ(diag.code, certify::Code::kNone)
        << "iter " << iter << ": " << certify::render(diag, g);
    ++certified;
  }
  // The generator must exercise both sides heavily.
  EXPECT_GT(witnessed, 500);
  EXPECT_GT(certified, 300);
}

TEST(FuzzCertify, WarmResolvesMatchColdUnderCertification) {
  std::mt19937 rng(0x5EED);
  RandomGraphParams params;
  params.vertex_count = 12;
  engine::SessionOptions copts;
  copts.certify = true;
  int edits_checked = 0;
  for (int iter = 0; iter < 400; ++iter) {
    cg::ConstraintGraph g = random_constraint_graph(rng, params);
    if (wellposed::make_wellposed(g).status != wellposed::Status::kWellPosed) {
      continue;
    }
    engine::SynthesisSession session(g, copts);
    if (!session.resolve().ok()) continue;
    const auto edges = constraint_edges(session.graph());
    if (edges.empty()) continue;
    for (int edit = 0; edit < 8; ++edit) {
      const EdgeId e = edges[rng() % edges.size()];
      session.set_constraint_bound(e,
                                   perturbed_bound(session.graph(), e, rng));
      const engine::Products& warm = session.resolve();
      engine::SynthesisSession cold(session.graph(), copts);
      const engine::Products& ref = cold.resolve();
      ASSERT_EQ(warm.schedule.status, ref.schedule.status) << "iter " << iter;
      if (warm.ok()) {
        ASSERT_TRUE(schedules_equal(warm.schedule.schedule,
                                    ref.schedule.schedule))
            << "iter " << iter << " edit " << edit;
        ASSERT_TRUE(analyses_equal(session.graph(), warm.analysis,
                                   ref.analysis))
            << "iter " << iter << " edit " << edit;
      } else {
        // Failing verdicts must carry a witness replayable against the
        // session's graph (attached by the engine's certification).
        ASSERT_TRUE(warm.schedule.diag.has_witness())
            << warm.schedule.message;
        EXPECT_EQ(certify::verify_witness(session.graph(), warm.schedule.diag),
                  std::nullopt);
      }
      ++edits_checked;
    }
    // Clean runs must never trip the certifier.
    EXPECT_EQ(session.stats().certificate_failures, 0) << "iter " << iter;
    EXPECT_GT(session.stats().certified_resolves, 0);
  }
  EXPECT_GT(edits_checked, 200);
}

TEST(FuzzCertify, ExplorerCandidatesMatchColdUnderCertification) {
  std::mt19937 rng(0xE8A1);
  RandomGraphParams params;
  params.vertex_count = 12;
  engine::SessionOptions copts;
  copts.certify = true;
  int candidates_checked = 0;
  for (int iter = 0; iter < 25; ++iter) {
    cg::ConstraintGraph g = random_constraint_graph(rng, params);
    if (wellposed::make_wellposed(g).status != wellposed::Status::kWellPosed) {
      continue;
    }
    engine::SynthesisSession base(g, copts);
    if (!base.resolve().ok()) continue;
    const auto edges = constraint_edges(base.graph());
    if (edges.empty()) continue;

    std::vector<explore::Candidate> candidates;
    for (int c = 0; c < 6; ++c) {
      const EdgeId e = edges[rng() % edges.size()];
      explore::Candidate cand;
      cand.label = cat("c", c);
      cand.edits.push_back(explore::EditOp::set_bound(
          e, perturbed_bound(base.graph(), e, rng)));
      candidates.push_back(std::move(cand));
    }

    const cg::ConstraintGraph base_graph = base.graph();
    explore::Explorer explorer(std::move(base));
    const auto result = explorer.explore(candidates, explore::min_latency());
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      const auto& slot = result.candidates[c];
      // Cold reference: replay the candidate's edit on a fresh graph.
      cg::ConstraintGraph cand_graph = base_graph;
      cand_graph.set_constraint_bound(candidates[c].edits[0].edge,
                                      candidates[c].edits[0].cycles);
      engine::SynthesisSession cold(cand_graph, copts);
      const engine::Products& ref = cold.resolve();
      ASSERT_EQ(slot.feasible, ref.ok()) << "iter " << iter << " cand " << c;
      if (slot.feasible) {
        ASSERT_TRUE(schedules_equal(slot.products.schedule.schedule,
                                    ref.schedule.schedule));
      } else {
        // Satellite: the explorer surfaces the per-candidate witness.
        EXPECT_TRUE(slot.diag.has_witness()) << slot.error;
        EXPECT_EQ(certify::verify_witness(cand_graph, slot.diag),
                  std::nullopt);
      }
      EXPECT_EQ(slot.stats.certificate_failures, 0);
      ++candidates_checked;
    }
  }
  EXPECT_GT(candidates_checked, 30);
}

// ---- Fault injection --------------------------------------------------

struct FaultScenario {
  engine::FaultInjector::Kind kind;
  const char* name;
  /// Some fault classes are architecturally harmless (the corrupted
  /// state is re-derived before anything consumes it); those only
  /// assert bit-identity, not a catch.
  bool must_be_caught;
};

constexpr FaultScenario kFaultMatrix[] = {
    // Corrupted potentials are re-derived from the schedule after
    // every successful resolve and positive cycles always pass through
    // an edited seed, so this class is harmless by construction -- the
    // harness proves it stays that way.
    {engine::FaultInjector::Kind::kCorruptPotential, "corrupt-potential",
     false},
    {engine::FaultInjector::Kind::kFlipDirtyBit, "flip-dirty-bit", true},
    {engine::FaultInjector::Kind::kDropJournalEntry, "drop-journal-entry",
     true},
    {engine::FaultInjector::Kind::kTruncateAnchorRow, "truncate-anchor-row",
     true},
};

/// One directed injection: resolve Fig 2 warm across a bound edit with
/// `fault` armed; the result must be bit-identical to a cold resolve of
/// the edited graph. Returns true when the certifier caught the fault.
bool run_directed_fault(engine::FaultInjector fault) {
  Fig2Graph f;
  engine::SessionOptions copts;
  copts.certify = true;
  engine::SynthesisSession session(f.g, copts);
  EXPECT_TRUE(session.resolve().ok());

  // Tighten the min constraint v0 -> v3 from 3 to 6: offsets of v3 and
  // v4 must rise, so stale products are observably wrong.
  EdgeId min_edge = EdgeId::invalid();
  for (const cg::Edge& e : session.graph().edges()) {
    if (e.kind == cg::EdgeKind::kMinConstraint) min_edge = e.id;
  }
  EXPECT_TRUE(min_edge.is_valid());
  session.arm_fault(fault);
  session.set_constraint_bound(min_edge, 6);
  const engine::Products& got = session.resolve();

  engine::SynthesisSession ref(session.graph(), engine::SessionOptions{});
  const engine::Products& want = ref.resolve();
  EXPECT_EQ(got.schedule.status, want.schedule.status);
  EXPECT_TRUE(got.ok());
  EXPECT_TRUE(schedules_equal(got.schedule.schedule, want.schedule.schedule));
  EXPECT_TRUE(analyses_equal(session.graph(), got.analysis, want.analysis));
  const bool caught = session.stats().certificate_failures > 0;
  if (caught) {
    // The catch is recorded with the certifier's diagnostic.
    EXPECT_FALSE(got.certificate.ok());
  }
  return caught;
}

TEST(FaultInjection, DirectedEveryClassCaughtOrHarmless) {
  for (const FaultScenario& scenario : kFaultMatrix) {
    bool caught_any = false;
    for (std::uint64_t seed = 0; seed < 16; ++seed) {
      caught_any = run_directed_fault({scenario.kind, seed}) || caught_any;
    }
    if (scenario.must_be_caught) {
      EXPECT_TRUE(caught_any)
          << scenario.name << ": no seed produced a certifier catch";
    }
  }
}

TEST(FaultInjection, RandomGraphsStayBitIdenticalUnderFaults) {
  std::mt19937 rng(0xFA017);
  RandomGraphParams params;
  params.vertex_count = 12;
  engine::SessionOptions copts;
  copts.certify = true;
  int runs = 0;
  long long caught_total = 0;
  for (int iter = 0; iter < 250; ++iter) {
    cg::ConstraintGraph g = random_constraint_graph(rng, params);
    if (wellposed::make_wellposed(g).status != wellposed::Status::kWellPosed) {
      continue;
    }
    for (const FaultScenario& scenario : kFaultMatrix) {
      engine::SynthesisSession session(g, copts);
      if (!session.resolve().ok()) continue;
      const auto edges = constraint_edges(session.graph());
      if (edges.empty()) continue;
      const EdgeId e = edges[rng() % edges.size()];
      session.arm_fault({scenario.kind, rng()});
      session.set_constraint_bound(e,
                                   perturbed_bound(session.graph(), e, rng));
      const engine::Products& got = session.resolve();

      engine::SynthesisSession ref(session.graph(), engine::SessionOptions{});
      const engine::Products& want = ref.resolve();
      ASSERT_EQ(got.schedule.status, want.schedule.status)
          << scenario.name << " iter " << iter;
      if (got.ok()) {
        ASSERT_TRUE(schedules_equal(got.schedule.schedule,
                                    want.schedule.schedule))
            << scenario.name << " iter " << iter;
        ASSERT_TRUE(analyses_equal(session.graph(), got.analysis,
                                   want.analysis))
            << scenario.name << " iter " << iter;
      }
      caught_total += session.stats().certificate_failures;
      ++runs;
    }
  }
  EXPECT_GT(runs, 50);
  // Across the random matrix the certifier must fire at least once
  // (the directed test already proves each class individually).
  EXPECT_GT(caught_total, 0);
}

}  // namespace
}  // namespace relsched

// Property tests of control generation, parameterized over
// (style x anchor mode): for every benchmark design and for random
// well-posed graphs, the structurally simulated control network must
// assert each operation's enable at exactly the schedule's start time,
// for arbitrary anchor delay profiles.
#include <gtest/gtest.h>

#include <random>
#include <tuple>

#include "base/strings.hpp"
#include "ctrl/control.hpp"
#include "designs/designs.hpp"
#include "driver/synthesis.hpp"
#include "sched/scheduler.hpp"
#include "testutil.hpp"
#include "wellposed/wellposed.hpp"

namespace relsched::ctrl {
namespace {

using Param = std::tuple<ControlStyle, anchors::AnchorMode>;

class ControlEquivalence : public ::testing::TestWithParam<Param> {
 protected:
  /// Checks enable times against schedule start times on `g` for a few
  /// random profiles.
  void check_graph(const cg::ConstraintGraph& g, std::mt19937& rng) {
    const auto analysis = anchors::AnchorAnalysis::compute(g);
    const auto result = sched::schedule(g, analysis);
    if (!result.ok()) return;
    ControlOptions opts;
    opts.style = std::get<0>(GetParam());
    opts.mode = std::get<1>(GetParam());
    const auto unit = generate_control(g, analysis, result.schedule, opts);

    std::uniform_int_distribution<int> delay(0, 9);
    for (int p = 0; p < 5; ++p) {
      sched::DelayProfile profile;
      for (VertexId a : g.anchors()) {
        if (a != g.source()) profile.set(a, delay(rng));
      }
      const auto start = result.schedule.start_times(g, profile);
      std::vector<graph::Weight> done(
          static_cast<std::size_t>(g.vertex_count()), -1);
      for (VertexId a : g.anchors()) {
        done[a.index()] = start[a.index()] + profile.delay_of(g, a);
      }
      graph::Weight horizon = 4;
      for (const auto s : start) horizon = std::max(horizon, s + 4);
      const auto enables = simulate_control(unit, g, done, horizon);
      for (int vi = 0; vi < g.vertex_count(); ++vi) {
        EXPECT_EQ(enables[static_cast<std::size_t>(vi)],
                  start[static_cast<std::size_t>(vi)])
            << "vertex " << vi << " profile " << p;
      }
    }
  }
};

TEST_P(ControlEquivalence, RandomGraphsFireAtScheduledTimes) {
  std::mt19937 rng(4242);
  int checked = 0;
  for (int trial = 0; trial < 150; ++trial) {
    auto g = relsched::testing::random_constraint_graph(rng, {});
    if (!g.validate().empty()) continue;
    if (wellposed::make_wellposed(g).status != wellposed::Status::kWellPosed) {
      continue;
    }
    check_graph(g, rng);
    ++checked;
  }
  EXPECT_GT(checked, 10);
}

TEST_P(ControlEquivalence, BenchmarkSuiteFiresAtScheduledTimes) {
  std::mt19937 rng(7);
  for (const char* name : {"traffic", "length", "gcd"}) {
    seq::Design design = designs::build(name);
    const auto result = driver::synthesize(design);
    ASSERT_TRUE(result.ok()) << name;
    for (const auto& gs : result.graphs) {
      check_graph(gs.constraint_graph, rng);
    }
  }
}

TEST_P(ControlEquivalence, VerilogEmissionIsWellFormed) {
  const auto g = designs::fig10_graph();
  const auto analysis = anchors::AnchorAnalysis::compute(g);
  const auto result = sched::schedule(g, analysis);
  ASSERT_TRUE(result.ok());
  ControlOptions opts;
  opts.style = std::get<0>(GetParam());
  opts.mode = std::get<1>(GetParam());
  const auto unit = generate_control(g, analysis, result.schedule, opts);
  const std::string v = unit.to_verilog(g, "fig10");
  EXPECT_NE(v.find("module fig10"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  // Every enable output appears exactly once as an assign.
  for (const auto& enable : unit.enables) {
    const std::string needle =
        cat("assign en_", g.vertex(enable.vertex).name, " =");
    EXPECT_NE(v.find(needle), std::string::npos) << needle;
  }
  // Balanced structure: no dangling reg declarations without always
  // blocks (counted crudely).
  std::size_t regs = 0, always = 0, pos = 0;
  while ((pos = v.find("reg [", pos)) != std::string::npos) {
    ++regs;
    ++pos;
  }
  pos = 0;
  while ((pos = v.find("always @", pos)) != std::string::npos) {
    ++always;
    ++pos;
  }
  EXPECT_EQ(regs, always);
}

INSTANTIATE_TEST_SUITE_P(
    StylesAndModes, ControlEquivalence,
    ::testing::Combine(::testing::Values(ControlStyle::kCounter,
                                         ControlStyle::kShiftRegister),
                       ::testing::Values(anchors::AnchorMode::kFull,
                                         anchors::AnchorMode::kRelevant,
                                         anchors::AnchorMode::kIrredundant)),
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string name = std::get<0>(info.param) == ControlStyle::kCounter
                             ? "Counter"
                             : "ShiftRegister";
      switch (std::get<1>(info.param)) {
        case anchors::AnchorMode::kFull:
          name += "Full";
          break;
        case anchors::AnchorMode::kRelevant:
          name += "Relevant";
          break;
        case anchors::AnchorMode::kIrredundant:
          name += "Irredundant";
          break;
      }
      return name;
    });

}  // namespace
}  // namespace relsched::ctrl

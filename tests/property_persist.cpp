// Crash-recovery property: a session killed at ANY byte of its
// write-ahead log recovers -- snapshot, then the surviving WAL prefix,
// torn tail dropped -- to a state from which re-applying the lost edit
// suffix converges bit-identically with the uninterrupted run. 200+
// randomized kill points over random graphs and edit scripts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "cg/constraint_graph.hpp"
#include "engine/session.hpp"
#include "graph/algorithms.hpp"
#include "persist/serialize.hpp"
#include "persist/wal.hpp"
#include "testutil.hpp"
#include "wellposed/wellposed.hpp"

namespace relsched::engine {
namespace {

/// WAL header: magic(8) | u32 version | u64 base_revision. Kill points
/// land at or after this boundary (a kill inside the header is the
/// "snapshot only" recovery, covered by offset == kWalHeaderBytes).
constexpr std::size_t kWalHeaderBytes = 20;

std::string temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "relsched_prop_" + name;
  std::remove(persist::snapshot_path(dir).c_str());
  std::remove(persist::wal_path(dir).c_str());
  EXPECT_TRUE(persist::ensure_dir(dir).ok());
  return dir;
}

/// A random well-posed, schedulable graph (same recipe as the explorer
/// tests).
cg::ConstraintGraph recovery_graph(std::mt19937& rng) {
  testing::RandomGraphParams params;
  params.vertex_count = 16;
  params.max_constraints = 3;
  for (int trial = 0; trial < 200; ++trial) {
    auto g = testing::random_constraint_graph(rng, params);
    if (!g.validate().empty()) continue;
    if (wellposed::make_wellposed(g).status != wellposed::Status::kWellPosed) {
      continue;
    }
    SynthesisSession probe(g, {});
    if (probe.resolve().ok()) return g;
  }
  ADD_FAILURE() << "no schedulable random graph in 200 trials";
  return cg::ConstraintGraph("empty");
}

struct EditSpec {
  enum class Kind { kAddMax, kAddMin, kSetBound, kRemove };
  Kind kind = Kind::kSetBound;
  VertexId from = VertexId::invalid();
  VertexId to = VertexId::invalid();
  EdgeId edge = EdgeId::invalid();
  int cycles = 0;
};

void apply_edit(SynthesisSession& session, const EditSpec& e) {
  switch (e.kind) {
    case EditSpec::Kind::kAddMax:
      session.add_max_constraint(e.from, e.to, e.cycles);
      return;
    case EditSpec::Kind::kAddMin:
      session.add_min_constraint(e.from, e.to, e.cycles);
      return;
    case EditSpec::Kind::kSetBound:
      session.set_constraint_bound(e.edge, e.cycles);
      return;
    case EditSpec::Kind::kRemove:
      session.remove_constraint(e.edge);
      return;
  }
}

/// One random journaled edit applicable to `g` (a compact cut of the
/// generator property_engine.cpp uses); nullopt when none applies.
std::optional<EditSpec> pick_random_edit(const cg::ConstraintGraph& g,
                                         std::mt19937& rng) {
  const graph::Digraph forward = g.project_forward();
  EditSpec spec;
  switch (rng() % 4) {
    case 0: {  // max constraint between comparable vertices, with slack
      const VertexId from(static_cast<int>(
          rng() % static_cast<unsigned>(std::max(1, g.vertex_count() - 1))));
      const auto lp = graph::longest_paths_from(forward, from.value());
      if (lp.positive_cycle) return std::nullopt;
      std::vector<VertexId> reachable;
      for (int vi = 0; vi < g.vertex_count(); ++vi) {
        if (vi != from.value() &&
            lp.dist[static_cast<std::size_t>(vi)] != graph::kNegInf) {
          reachable.push_back(VertexId(vi));
        }
      }
      if (reachable.empty()) return std::nullopt;
      spec.kind = EditSpec::Kind::kAddMax;
      spec.from = from;
      spec.to = reachable[rng() % reachable.size()];
      spec.cycles = static_cast<int>(lp.dist[spec.to.index()]) +
                    static_cast<int>(rng() % 6);
      return spec;
    }
    case 1: {  // min constraint along the topological order (acyclic)
      const auto topo = graph::topological_order(forward);
      if (!topo.has_value() || topo->size() < 2) return std::nullopt;
      const std::size_t i = rng() % (topo->size() - 1);
      const std::size_t j = i + 1 + rng() % (topo->size() - 1 - i);
      spec.kind = EditSpec::Kind::kAddMin;
      spec.from = VertexId((*topo)[i]);
      spec.to = VertexId((*topo)[j]);
      spec.cycles = static_cast<int>(rng() % 5);
      return spec;
    }
    case 2: {  // re-weight a constraint edge by +-1
      std::vector<EdgeId> constraints;
      for (const cg::Edge& e : g.edges()) {
        if (e.kind != cg::EdgeKind::kSequencing) constraints.push_back(e.id);
      }
      if (constraints.empty()) return std::nullopt;
      spec.kind = EditSpec::Kind::kSetBound;
      spec.edge = constraints[rng() % constraints.size()];
      const int bound = std::abs(g.edge(spec.edge).fixed_weight);
      spec.cycles = std::max(0, bound + static_cast<int>(rng() % 3) - 1);
      return spec;
    }
    default: {  // remove a max constraint (always polarity-safe)
      std::vector<EdgeId> removable;
      for (const cg::Edge& e : g.edges()) {
        if (e.kind == cg::EdgeKind::kMaxConstraint) removable.push_back(e.id);
      }
      if (removable.empty()) return std::nullopt;
      spec.kind = EditSpec::Kind::kRemove;
      spec.edge = removable[rng() % removable.size()];
      return spec;
    }
  }
}

/// Bit-identical product comparison. Offsets only compare on success:
/// failure products carry an empty schedule on both sides.
void expect_products_match(const Products& a, const Products& b,
                           const cg::ConstraintGraph& g,
                           const std::string& context) {
  ASSERT_EQ(a.schedule.status, b.schedule.status) << context;
  EXPECT_EQ(a.schedule.message, b.schedule.message) << context;
  EXPECT_EQ(a.revision, b.revision) << context;
  if (!a.ok() || !b.ok()) return;
  for (int vi = 0; vi < g.vertex_count(); ++vi) {
    EXPECT_EQ(a.schedule.schedule.offsets(VertexId(vi)),
              b.schedule.schedule.offsets(VertexId(vi)))
        << context << ", v" << vi;
  }
}

persist::WalOptions always_sync() {
  persist::WalOptions o;
  o.sync = persist::WalOptions::Sync::kAlways;
  return o;
}

TEST(PersistProperty, RandomizedKillPointsRecoverBitIdentical) {
  constexpr int kScripts = 25;
  constexpr int kKillsPerScript = 8;  // 25 * 8 = 200 randomized kill points
  constexpr int kOpsPerScript = 10;
  int kill_points = 0;

  for (int script = 0; script < kScripts; ++script) {
    std::mt19937 rng(7100u + static_cast<unsigned>(script));
    const cg::ConstraintGraph g = recovery_graph(rng);
    if (g.vertex_count() == 0) return;  // generator already FAILed
    const std::string dir = temp_dir("kill" + std::to_string(script));

    // Uninterrupted reference and the journaled "victim", fed the same
    // edit script with a resolve after every edit (each resolve is a
    // durable commit point under Sync::kAlways).
    SynthesisSession reference(g, {});
    reference.resolve();
    SynthesisSession victim(g, {});
    victim.resolve();
    ASSERT_TRUE(
        victim.attach_wal(persist::wal_path(dir), always_sync()).ok());
    ASSERT_TRUE(victim.checkpoint(dir).ok());

    struct Step {
      EditSpec spec;
      std::uint64_t post_revision = 0;
    };
    std::vector<Step> steps;
    for (int op = 0; op < kOpsPerScript; ++op) {
      const auto spec = pick_random_edit(victim.graph(), rng);
      if (!spec.has_value()) continue;
      apply_edit(reference, *spec);
      apply_edit(victim, *spec);
      reference.resolve();
      victim.resolve();
      steps.push_back({*spec, victim.graph().revision()});
      // An occasional mid-script snapshot: later kills then recover
      // from that snapshot plus a shorter WAL suffix.
      if (rng() % 4 == 0) ASSERT_TRUE(victim.checkpoint(dir).ok());
    }
    expect_products_match(reference.products(), victim.products(), g,
                          "script " + std::to_string(script) + " pre-kill");

    std::string wal_bytes;
    ASSERT_TRUE(persist::read_file(persist::wal_path(dir), &wal_bytes).ok());
    ASSERT_GE(wal_bytes.size(), kWalHeaderBytes);

    for (int kill = 0; kill < kKillsPerScript; ++kill) {
      // Kill the process at a random byte of the log: everything past
      // `offset` was still in flight when the machine died.
      const std::size_t offset =
          kWalHeaderBytes +
          rng() % (wal_bytes.size() - kWalHeaderBytes + 1);
      ASSERT_TRUE(persist::atomic_write_file(persist::wal_path(dir),
                                             wal_bytes.substr(0, offset),
                                             false)
                      .ok());
      const std::string context = "script " + std::to_string(script) +
                                  ", kill at byte " + std::to_string(offset);

      SynthesisSession::RestoreReport report;
      auto restored = SynthesisSession::restore(dir, {}, &report);
      ASSERT_TRUE(restored.has_value())
          << context << ": " << report.error.render();
      const std::uint64_t recovered = restored->graph().revision();

      // Re-drive the edits the crash lost (the client replays its
      // still-unacknowledged suffix) and resolve.
      for (const Step& step : steps) {
        if (step.post_revision > recovered) {
          apply_edit(*restored, step.spec);
        }
      }
      restored->resolve();
      expect_products_match(reference.products(), restored->products(), g,
                            context);
      ++kill_points;
    }
  }
  EXPECT_GE(kill_points, 200);
}

}  // namespace
}  // namespace relsched::engine

// Property-based tests of the well-posedness machinery, parameterized
// over generator seeds:
//
//   W1: check() and the anchor-containment criterion of Theorem 2 agree
//       with a brute-force profile search on small graphs (an ill-posed
//       graph has *some* profile no schedule satisfies; a well-posed one
//       is satisfied by the minimum schedule for all profiles);
//   W2: make_wellposed yields graphs that re-check well-posed, is
//       idempotent, and only ever adds forward anchor->vertex edges;
//   W3: serial-compatibility -- original vertices and edges survive;
//   W4: minimal serialization -- every added edge has zero-length
//       maximal defining path (Theorem 7's witness), and removing any
//       single added edge leaves the graph ill-posed (no overshoot);
//   W5: Lemma 2 -- on well-posed graphs, vertices on a cycle have
//       identical anchor sets.
#include <gtest/gtest.h>

#include <random>

#include "anchors/anchor_analysis.hpp"
#include "sched/scheduler.hpp"
#include "testutil.hpp"
#include "wellposed/wellposed.hpp"

namespace relsched::wellposed {
namespace {

class WellposedProperties : public ::testing::TestWithParam<unsigned> {
 protected:
  template <typename Fn>
  void for_each_graph(Fn&& fn, int trials = 50) {
    std::mt19937 rng(GetParam());
    int produced = 0;
    for (int trial = 0; trial < trials; ++trial) {
      relsched::testing::RandomGraphParams params;
      params.vertex_count = 8 + static_cast<int>(rng() % 14);
      params.unbounded_fraction = 0.25;
      params.max_constraints = 1 + static_cast<int>(rng() % 3);
      params.max_constraint_slack = 4;
      auto g = relsched::testing::random_constraint_graph(rng, params);
      if (!g.validate().empty()) continue;
      if (!is_feasible(g)) continue;
      ++produced;
      fn(g, rng);
    }
    EXPECT_GT(produced, 10);
  }
};

TEST_P(WellposedProperties, W1_CheckMatchesProfileSearch) {
  for_each_graph([](cg::ConstraintGraph& g, std::mt19937& rng) {
    const auto verdict = check(g);
    if (verdict.status == Status::kWellPosed) {
      // The minimum schedule must satisfy every profile we can draw.
      const auto result = sched::schedule(g);
      if (!result.ok()) return;  // inconsistent is a separate concern
      std::uniform_int_distribution<int> delay(0, 25);
      for (int p = 0; p < 10; ++p) {
        sched::DelayProfile profile;
        for (VertexId a : g.anchors()) profile.set(a, delay(rng));
        EXPECT_EQ(sched::find_violation(g, result.schedule, profile),
                  std::nullopt);
      }
    } else if (verdict.status == Status::kIllPosed) {
      // Witness hunt: there must exist a profile for which even the
      // best-effort schedule (offsets = cone longest paths over full
      // anchor sets) violates a constraint. Blowing up one anchor's
      // delay at a time is exactly the paper's Lemma 1 argument.
      const auto analysis = anchors::AnchorAnalysis::compute(g);
      const auto schedule = sched::decomposed_schedule(g, analysis);
      bool witness = false;
      for (VertexId a : g.anchors()) {
        sched::DelayProfile profile;
        profile.set(a, 1000);
        if (sched::find_violation(g, schedule, profile).has_value()) {
          witness = true;
          break;
        }
      }
      EXPECT_TRUE(witness) << "ill-posed verdict without a delay witness";
    }
  });
}

TEST_P(WellposedProperties, W2_MakeWellposedIsSoundAndIdempotent) {
  for_each_graph([](cg::ConstraintGraph& g, std::mt19937&) {
    auto copy_edges = g.edge_count();
    const auto fix = make_wellposed(g);
    if (fix.status != Status::kWellPosed) return;
    EXPECT_EQ(check(g).status, Status::kWellPosed);
    EXPECT_EQ(g.edge_count(),
              copy_edges + static_cast<int>(fix.added_edges.size()));
    // All added edges are forward sequencing edges out of anchors.
    for (const auto& [from, to] : fix.added_edges) {
      EXPECT_TRUE(g.is_anchor(from));
      (void)to;
    }
    // Idempotence: a second pass adds nothing.
    const auto fix2 = make_wellposed(g);
    EXPECT_EQ(fix2.status, Status::kWellPosed);
    EXPECT_TRUE(fix2.added_edges.empty());
  });
}

TEST_P(WellposedProperties, W3_SerialCompatibility) {
  for_each_graph([](cg::ConstraintGraph& g, std::mt19937&) {
    // Snapshot the original structure.
    std::vector<std::tuple<int, int, cg::EdgeKind>> before;
    for (const auto& e : g.edges()) {
      before.emplace_back(e.from.value(), e.to.value(), e.kind);
    }
    const int vertices_before = g.vertex_count();
    const auto fix = make_wellposed(g);
    if (fix.status != Status::kWellPosed) return;
    EXPECT_EQ(g.vertex_count(), vertices_before);
    for (std::size_t i = 0; i < before.size(); ++i) {
      const auto& e = g.edge(EdgeId(static_cast<int>(i)));
      EXPECT_EQ(std::make_tuple(e.from.value(), e.to.value(), e.kind),
                before[i]);
    }
  });
}

TEST_P(WellposedProperties, W4_MinimalSerialization) {
  for_each_graph([](cg::ConstraintGraph& g, std::mt19937&) {
    // Work on a copy so we can rebuild with subsets of added edges.
    cg::ConstraintGraph original = g;
    const auto fix = make_wellposed(g);
    if (fix.status != Status::kWellPosed || fix.added_edges.empty()) return;

    // Theorem 7 witness: added edges contribute zero-length defining
    // paths, i.e. length(anchor, head) == 0 in the repaired graph? The
    // edge weight is delta(anchor) (0 in G0), so the direct path has
    // length 0; the *longest* path can exceed it. The minimality claim
    // we can check structurally: dropping any single added edge leaves
    // the graph ill-posed (no redundant serializations).
    for (std::size_t skip = 0; skip < fix.added_edges.size(); ++skip) {
      cg::ConstraintGraph reduced = original;
      for (std::size_t i = 0; i < fix.added_edges.size(); ++i) {
        if (i == skip) continue;
        reduced.add_sequencing_edge(fix.added_edges[i].first,
                                    fix.added_edges[i].second);
      }
      EXPECT_NE(check(reduced).status, Status::kWellPosed)
          << "added edge " << skip << " was redundant";
    }
  });
}

TEST_P(WellposedProperties, W5_CycleVerticesShareAnchorSets) {
  for_each_graph([](cg::ConstraintGraph& g, std::mt19937&) {
    if (make_wellposed(g).status != Status::kWellPosed) return;
    const auto sets = anchors::find_anchor_sets(g);
    // Lemma 2: along any cycle in the full graph the anchor sets are
    // identical. Cycles arise from backward edges; for each backward
    // edge (t, h), any vertex on a path h ->* t lies on a cycle with t
    // and h.
    const auto full = g.project_full();
    for (const auto& e : g.edges()) {
      if (cg::is_forward(e.kind)) continue;
      const auto from_head = graph::reachable_from(full, e.to.value());
      const auto to_tail = graph::reaching(full, e.from.value());
      for (int vi = 0; vi < g.vertex_count(); ++vi) {
        if (from_head[static_cast<std::size_t>(vi)] &&
            to_tail[static_cast<std::size_t>(vi)]) {
          EXPECT_EQ(sets[static_cast<std::size_t>(vi)], sets[e.to.index()])
              << "vertex " << vi << " on cycle of backward edge "
              << e.id.value();
        }
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, WellposedProperties,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u, 606u,
                                           707u, 808u));

}  // namespace
}  // namespace relsched::wellposed
